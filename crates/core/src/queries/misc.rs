//! Miscellaneous queries (§7.0.7): host access, network services,
//! printcaps, aliases, values, and table statistics.

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId};

use crate::ace::{render_ace, resolve_ace};
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

/// Registers the miscellaneous queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_server_host_access",
            shortname: "gsha",
            kind: Retrieve,
            access: QueryAcl,
            args: &["machine"],
            returns: &[
                "machine", "ace_type", "ace_name", "modtime", "modby", "modwith",
            ],
            handler: Handler::Read(get_server_host_access),
        },
        QueryHandle {
            name: "add_server_host_access",
            shortname: "asha",
            kind: Append,
            access: QueryAcl,
            args: &["machine", "ace_type", "ace_name"],
            returns: &[],
            handler: Handler::Write(add_server_host_access),
        },
        QueryHandle {
            name: "update_server_host_access",
            shortname: "usha",
            kind: Update,
            access: QueryAcl,
            args: &["machine", "ace_type", "ace_name"],
            returns: &[],
            handler: Handler::Write(update_server_host_access),
        },
        QueryHandle {
            name: "delete_server_host_access",
            shortname: "dsha",
            kind: Delete,
            access: QueryAcl,
            args: &["machine"],
            returns: &[],
            handler: Handler::Write(delete_server_host_access),
        },
        QueryHandle {
            name: "get_service",
            shortname: "gsvc",
            kind: Retrieve,
            access: Public,
            args: &["service"],
            returns: &[
                "service", "protocol", "port", "desc", "modtime", "modby", "modwith",
            ],
            handler: Handler::Read(get_service),
        },
        QueryHandle {
            name: "add_service",
            shortname: "asvc",
            kind: Append,
            access: QueryAcl,
            args: &["service", "protocol", "port", "description"],
            returns: &[],
            handler: Handler::Write(add_service),
        },
        QueryHandle {
            name: "delete_service",
            shortname: "dsvc",
            kind: Delete,
            access: QueryAcl,
            args: &["service"],
            returns: &[],
            handler: Handler::Write(delete_service),
        },
        QueryHandle {
            name: "get_printcap",
            shortname: "gpcp",
            kind: Retrieve,
            access: Public,
            args: &["printer"],
            returns: &[
                "printer",
                "spool_host",
                "spool_directory",
                "rprinter",
                "comments",
                "modtime",
                "modby",
                "modwith",
            ],
            handler: Handler::Read(get_printcap),
        },
        QueryHandle {
            name: "add_printcap",
            shortname: "apcp",
            kind: Append,
            access: QueryAcl,
            args: &[
                "printer",
                "spool_host",
                "spool_directory",
                "rprinter",
                "comments",
            ],
            returns: &[],
            handler: Handler::Write(add_printcap),
        },
        QueryHandle {
            name: "delete_printcap",
            shortname: "dpcp",
            kind: Delete,
            access: QueryAcl,
            args: &["printer"],
            returns: &[],
            handler: Handler::Write(delete_printcap),
        },
        QueryHandle {
            name: "get_alias",
            shortname: "gali",
            kind: Retrieve,
            access: Public,
            args: &["name", "type", "translation"],
            returns: &["name", "type", "translation"],
            handler: Handler::Read(get_alias),
        },
        QueryHandle {
            name: "add_alias",
            shortname: "aali",
            kind: Append,
            access: QueryAcl,
            args: &["name", "type", "translation"],
            returns: &[],
            handler: Handler::Write(add_alias),
        },
        QueryHandle {
            name: "delete_alias",
            shortname: "dali",
            kind: Delete,
            access: QueryAcl,
            args: &["name", "type", "translation"],
            returns: &[],
            handler: Handler::Write(delete_alias),
        },
        QueryHandle {
            name: "get_value",
            shortname: "gval",
            kind: Retrieve,
            access: Public,
            args: &["variable"],
            returns: &["value"],
            handler: Handler::Read(get_value),
        },
        QueryHandle {
            name: "add_value",
            shortname: "aval",
            kind: Append,
            access: QueryAcl,
            args: &["variable", "value"],
            returns: &[],
            handler: Handler::Write(add_value),
        },
        QueryHandle {
            name: "update_value",
            shortname: "uval",
            kind: Update,
            access: QueryAcl,
            args: &["variable", "value"],
            returns: &[],
            handler: Handler::Write(update_value),
        },
        QueryHandle {
            name: "delete_value",
            shortname: "dval",
            kind: Delete,
            access: QueryAcl,
            args: &["variable"],
            returns: &[],
            handler: Handler::Write(delete_value),
        },
        QueryHandle {
            name: "get_all_table_stats",
            shortname: "gats",
            kind: Retrieve,
            access: Public,
            args: &[],
            returns: &[
                "table",
                "retrieves",
                "appends",
                "updates",
                "deletes",
                "modtime",
                "generation",
            ],
            handler: Handler::Read(get_all_table_stats),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

fn get_server_host_access(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    // Machine-major: the host pattern resolves through the machine name
    // index (a point lookup for the common exact-host call, a prefix range
    // for "BITSY*"), then each machine probes the unique hostaccess index.
    let mut out = Vec::new();
    for mrow in state
        .db
        .select("machine", &Pred::name_match_ci("name", &a[0]))
    {
        let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
        let mach = state.db.cell("machine", mrow, "name").render();
        let t = state.db.table("hostaccess");
        for row in t.select(&Pred::Eq("mach_id", mach_id.into())) {
            let (ty, name) = render_ace(
                &state.db,
                t.cell(row, "acl_type").as_str(),
                t.cell(row, "acl_id").as_int(),
            );
            out.push(vec![
                mach.clone(),
                ty,
                name,
                t.cell(row, "modtime").render(),
                t.cell(row, "modby").render(),
                t.cell(row, "modwith").render(),
            ]);
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn add_server_host_access(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let ace = resolve_ace(&state.db, &a[1], &a[2])?;
    if state
        .db
        .table("hostaccess")
        .select_one(&Pred::Eq("mach_id", mach_id.into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "hostaccess",
        vec![
            mach_id.into(),
            ace.type_str().into(),
            ace.id().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn one_hostaccess(state: &MoiraState, machine: &str) -> MrResult<RowId> {
    let mrow = one_machine(state, machine)?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    state.db.select_exactly_one(
        "hostaccess",
        &Pred::Eq("mach_id", mach_id.into()),
        MrError::NoMatch,
    )
}

fn update_server_host_access(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_hostaccess(state, &a[0])?;
    let ace = resolve_ace(&state.db, &a[1], &a[2])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "hostaccess",
        row,
        &[
            ("acl_type", ace.type_str().into()),
            ("acl_id", ace.id().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_server_host_access(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_hostaccess(state, &a[0])?;
    state.db.delete("hostaccess", row)?;
    Ok(Vec::new())
}

fn get_service(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state
        .db
        .select("services", &Pred::name_match("name", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| {
            project(
                state,
                "services",
                id,
                &[
                    "name", "protocol", "port", "desc", "modtime", "modby", "modwith",
                ],
            )
        })
        .collect())
}

fn add_service(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    no_wildcards(&a[0])?;
    check_type_alias(state, "protocol", &a[1], MrError::Type)?;
    let port = parse_int(&a[2])?;
    if state
        .db
        .table("services")
        .select_one(&Pred::Eq("name", a[0].as_str().into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "services",
        vec![
            a[0].as_str().into(),
            a[1].to_ascii_uppercase().into(),
            port.into(),
            a[3].as_str().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_service(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = exactly_one(state, "services", "name", &a[0], MrError::Service)?;
    state.db.delete("services", row)?;
    Ok(Vec::new())
}

fn get_printcap(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state
        .db
        .select("printcap", &Pred::name_match("name", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| {
            let t = state.db.table("printcap");
            vec![
                t.cell(id, "name").render(),
                machine_name(state, t.cell(id, "mach_id").as_int()),
                t.cell(id, "dir").render(),
                t.cell(id, "rp").render(),
                t.cell(id, "comments").render(),
                t.cell(id, "modtime").render(),
                t.cell(id, "modby").render(),
                t.cell(id, "modwith").render(),
            ]
        })
        .collect())
}

fn add_printcap(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    no_wildcards(&a[0])?;
    if state
        .db
        .table("printcap")
        .select_one(&Pred::Eq("name", a[0].as_str().into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let mrow = one_machine(state, &a[1])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "printcap",
        vec![
            a[0].as_str().into(),
            mach_id.into(),
            a[2].as_str().into(),
            a[3].as_str().into(),
            a[4].as_str().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_printcap(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = exactly_one(state, "printcap", "name", &a[0], MrError::NoMatch)?;
    state.db.delete("printcap", row)?;
    Ok(Vec::new())
}

fn get_alias(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let pred = Pred::name_match("name", &a[0])
        .and(Pred::name_match_ci("type", &a[1]))
        .and(Pred::name_match("trans", &a[2]));
    let ids = state.db.select("alias", &pred);
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| project(state, "alias", id, &["name", "type", "trans"]))
        .collect())
}

fn add_alias(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    // "The type must be a known type as recorded under alias in the alias
    // database."
    check_type_alias(state, "alias", &a[1], MrError::Type)?;
    let exact = Pred::Eq("name", a[0].as_str().into())
        .and(Pred::Eq("type", a[1].to_ascii_uppercase().into()))
        .and(Pred::Eq("trans", a[2].as_str().into()));
    if !state.db.select("alias", &exact).is_empty() {
        return Err(MrError::Exists);
    }
    state.db.append(
        "alias",
        vec![
            a[0].as_str().into(),
            a[1].to_ascii_uppercase().into(),
            a[2].as_str().into(),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_alias(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let exact = Pred::Eq("name", a[0].as_str().into())
        .and(Pred::EqCi("type", a[1].clone()))
        .and(Pred::Eq("trans", a[2].as_str().into()));
    let row = state
        .db
        .select_exactly_one("alias", &exact, MrError::NoMatch)?;
    state.db.delete("alias", row)?;
    Ok(Vec::new())
}

fn get_value(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    match state.get_value(&a[0]) {
        Some(v) => Ok(vec![vec![v.to_string()]]),
        None => Err(MrError::NoMatch),
    }
}

fn add_value(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let value = parse_int(&a[1])?;
    if state.get_value(&a[0]).is_some() {
        return Err(MrError::Exists);
    }
    state.set_value(&a[0], value);
    Ok(Vec::new())
}

fn update_value(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let value = parse_int(&a[1])?;
    if state.get_value(&a[0]).is_none() {
        return Err(MrError::NoMatch);
    }
    state.set_value(&a[0], value);
    Ok(Vec::new())
}

fn delete_value(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = state
        .db
        .table("values")
        .select_one(&Pred::Eq("name", a[0].as_str().into()))
        .ok_or(MrError::NoMatch)?;
    state.db.delete("values", row)?;
    Ok(Vec::new())
}

fn get_all_table_stats(
    state: &MoiraState,
    _c: &Caller,
    _a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let mut out = Vec::new();
    for name in crate::schema::RELATIONS {
        let stats = state.db.table(name).stats();
        out.push(vec![
            name.to_string(),
            // "retrieves … unused now for performance reasons."
            "0".to_owned(),
            stats.appends.to_string(),
            stats.updates.to_string(),
            stats.deletes.to_string(),
            stats.modtime.to_string(),
            stats.generation.to_string(),
        ]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        add_test_machine(&mut s, "BITSY.MIT.EDU");
        (s, Registry::standard(), Caller::new("ops", "misc"))
    }

    #[test]
    fn hostaccess_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_access",
            &["BITSY.MIT.EDU", "LIST", "moira-admins"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_server_host_access",
                &["BITSY.MIT.EDU", "NONE", "NONE"]
            )
            .unwrap_err(),
            MrError::Exists
        );
        let ha = run(&mut s, &r, &ops, "get_server_host_access", &["BITSY*"]).unwrap();
        assert_eq!(ha[0][1], "LIST");
        assert_eq!(ha[0][2], "moira-admins");
        run(
            &mut s,
            &r,
            &ops,
            "update_server_host_access",
            &["BITSY.MIT.EDU", "NONE", "NONE"],
        )
        .unwrap();
        let ha = run(&mut s, &r, &ops, "get_server_host_access", &["*"]).unwrap();
        assert_eq!(ha[0][1], "NONE");
        run(
            &mut s,
            &r,
            &ops,
            "delete_server_host_access",
            &["BITSY.MIT.EDU"],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_server_host_access", &["*"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn services_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_service",
            &["smtp", "tcp", "25", "mail transfer"],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "add_service", &["smtp", "TCP", "25", ""]).unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(&mut s, &r, &ops, "add_service", &["x", "IPX", "1", ""]).unwrap_err(),
            MrError::Type
        );
        assert_eq!(
            run(&mut s, &r, &ops, "add_service", &["x", "udp", "porty", ""]).unwrap_err(),
            MrError::Integer
        );
        let svc = run(&mut s, &r, &ops, "get_service", &["smtp"]).unwrap();
        assert_eq!(svc[0][1], "TCP");
        assert_eq!(svc[0][2], "25");
        run(&mut s, &r, &ops, "delete_service", &["smtp"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "delete_service", &["smtp"]).unwrap_err(),
            MrError::Service
        );
    }

    #[test]
    fn printcap_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_printcap",
            &[
                "linus",
                "BITSY.MIT.EDU",
                "/usr/spool/printer/linus",
                "linus",
                "E40 lw",
            ],
        )
        .unwrap();
        let p = run(&mut s, &r, &ops, "get_printcap", &["lin*"]).unwrap();
        assert_eq!(p[0][1], "BITSY.MIT.EDU");
        assert_eq!(p[0][3], "linus");
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_printcap",
                &["linus", "BITSY.MIT.EDU", "d", "r", ""]
            )
            .unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_printcap",
                &["x", "GHOST", "d", "r", ""]
            )
            .unwrap_err(),
            MrError::Machine
        );
        run(&mut s, &r, &ops, "delete_printcap", &["linus"]).unwrap();
    }

    #[test]
    fn alias_lifecycle_allows_duplicate_names() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_alias", &["lp", "PRINTER", "linus"]).unwrap();
        run(&mut s, &r, &ops, "add_alias", &["lp", "PRINTER", "helios"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "add_alias", &["lp", "PRINTER", "linus"]).unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(&mut s, &r, &ops, "add_alias", &["x", "ROBOT", "y"]).unwrap_err(),
            MrError::Type
        );
        let hits = run(&mut s, &r, &ops, "get_alias", &["lp", "PRINTER", "*"]).unwrap();
        assert_eq!(hits.len(), 2);
        // Deleting needs all three to match exactly one.
        assert_eq!(
            run(&mut s, &r, &ops, "delete_alias", &["lp", "PRINTER", "nope"]).unwrap_err(),
            MrError::NoMatch
        );
        run(
            &mut s,
            &r,
            &ops,
            "delete_alias",
            &["lp", "PRINTER", "linus"],
        )
        .unwrap();
        let hits = run(&mut s, &r, &ops, "get_alias", &["lp", "PRINTER", "*"]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn values_lifecycle() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_value", &["max_pop", "500"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "add_value", &["max_pop", "600"]).unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(&mut s, &r, &ops, "get_value", &["max_pop"]).unwrap()[0][0],
            "500"
        );
        run(&mut s, &r, &ops, "update_value", &["max_pop", "600"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_value", &["max_pop"]).unwrap()[0][0],
            "600"
        );
        run(&mut s, &r, &ops, "delete_value", &["max_pop"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_value", &["max_pop"]).unwrap_err(),
            MrError::NoMatch
        );
        // The seeded dcm_enable is readable by anybody.
        let anon = Caller::anonymous("dcm");
        assert_eq!(
            run(&mut s, &r, &anon, "get_value", &["dcm_enable"]).unwrap()[0][0],
            "1"
        );
    }

    #[test]
    fn table_stats_reflect_activity() {
        let (mut s, r, ops) = setup();
        let before = run(&mut s, &r, &ops, "get_all_table_stats", &[]).unwrap();
        let machine_before: u64 = before
            .iter()
            .find(|t| t[0] == "machine")
            .map(|t| t[2].parse().unwrap())
            .unwrap();
        run(&mut s, &r, &ops, "add_machine", &["NEWBOX", "VAX"]).unwrap();
        let after = run(&mut s, &r, &ops, "get_all_table_stats", &[]).unwrap();
        let machine_after: u64 = after
            .iter()
            .find(|t| t[0] == "machine")
            .map(|t| t[2].parse().unwrap())
            .unwrap();
        assert_eq!(machine_after, machine_before + 1);
        assert_eq!(after.len(), crate::schema::RELATIONS.len());
        // The trailing generation column equals appends+updates+deletes.
        for row in &after {
            let (a, u, d): (u64, u64, u64) = (
                row[2].parse().unwrap(),
                row[3].parse().unwrap(),
                row[4].parse().unwrap(),
            );
            let generation: u64 = row[6].parse().unwrap();
            assert_eq!(generation, a + u + d, "table {}", row[0]);
        }
    }
}
