//! Server and server-host queries (§7.0.4) — the DCM's control surface.

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId, Value};

use crate::ace::{render_ace, resolve_ace};
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

/// Registers the server queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_server_info",
            shortname: "gsin",
            kind: Retrieve,
            access: Custom,
            args: &["service"],
            returns: &[
                "service",
                "interval",
                "target",
                "script",
                "dfgen",
                "dfcheck",
                "type",
                "enable",
                "inprogress",
                "harderror",
                "errmsg",
                "ace_type",
                "ace_name",
                "modtime",
                "modby",
                "modwith",
            ],
            handler: Handler::Read(get_server_info),
        },
        QueryHandle {
            name: "qualified_get_server",
            shortname: "qgsv",
            kind: Retrieve,
            access: QueryAcl,
            args: &["enable", "inprogress", "harderror"],
            returns: &["service"],
            handler: Handler::Read(qualified_get_server),
        },
        QueryHandle {
            name: "add_server_info",
            shortname: "asin",
            kind: Append,
            access: QueryAcl,
            args: &[
                "service", "interval", "target", "script", "type", "enable", "ace_type", "ace_name",
            ],
            returns: &[],
            handler: Handler::Write(add_server_info),
        },
        QueryHandle {
            name: "update_server_info",
            shortname: "usin",
            kind: Update,
            access: Custom,
            args: &[
                "service", "interval", "target", "script", "type", "enable", "ace_type", "ace_name",
            ],
            returns: &[],
            handler: Handler::Write(update_server_info),
        },
        QueryHandle {
            name: "reset_server_error",
            shortname: "rsve",
            kind: Update,
            access: Custom,
            args: &["service"],
            returns: &[],
            handler: Handler::Write(reset_server_error),
        },
        QueryHandle {
            name: "set_server_internal_flags",
            shortname: "ssif",
            kind: Update,
            access: QueryAcl,
            args: &[
                "service",
                "dfgen",
                "dfcheck",
                "inprogress",
                "harderror",
                "errmsg",
            ],
            returns: &[],
            handler: Handler::Write(set_server_internal_flags),
        },
        QueryHandle {
            name: "delete_server_info",
            shortname: "dsin",
            kind: Delete,
            access: QueryAcl,
            args: &["service"],
            returns: &[],
            handler: Handler::Write(delete_server_info),
        },
        QueryHandle {
            name: "get_server_host_info",
            shortname: "gshi",
            kind: Retrieve,
            access: Custom,
            args: &["service", "machine"],
            returns: &[
                "service",
                "machine",
                "enable",
                "override",
                "success",
                "inprogress",
                "hosterror",
                "errmsg",
                "lasttry",
                "lastsuccess",
                "value1",
                "value2",
                "value3",
                "modtime",
                "modby",
                "modwith",
            ],
            handler: Handler::Read(get_server_host_info),
        },
        QueryHandle {
            name: "qualified_get_server_host",
            shortname: "qgsh",
            kind: Retrieve,
            access: QueryAcl,
            args: &[
                "service",
                "enable",
                "override",
                "success",
                "inprogress",
                "hosterror",
            ],
            returns: &["service", "machine"],
            handler: Handler::Read(qualified_get_server_host),
        },
        QueryHandle {
            name: "add_server_host_info",
            shortname: "ashi",
            kind: Append,
            access: Custom,
            args: &["service", "machine", "enable", "value1", "value2", "value3"],
            returns: &[],
            handler: Handler::Write(add_server_host_info),
        },
        QueryHandle {
            name: "update_server_host_info",
            shortname: "ushi",
            kind: Update,
            access: Custom,
            args: &["service", "machine", "enable", "value1", "value2", "value3"],
            returns: &[],
            handler: Handler::Write(update_server_host_info),
        },
        QueryHandle {
            name: "reset_server_host_error",
            shortname: "rshe",
            kind: Update,
            access: Custom,
            args: &["service", "machine"],
            returns: &[],
            handler: Handler::Write(reset_server_host_error),
        },
        QueryHandle {
            name: "set_server_host_override",
            shortname: "ssho",
            kind: Update,
            access: Custom,
            args: &["service", "machine"],
            returns: &[],
            handler: Handler::Write(set_server_host_override),
        },
        QueryHandle {
            name: "set_server_host_internal",
            shortname: "sshi",
            kind: Update,
            access: QueryAcl,
            args: &[
                "service",
                "machine",
                "override",
                "success",
                "inprogress",
                "hosterror",
                "errmsg",
                "lasttry",
                "lastsuccess",
            ],
            returns: &[],
            handler: Handler::Write(set_server_host_internal),
        },
        QueryHandle {
            name: "delete_server_host_info",
            shortname: "dshi",
            kind: Delete,
            access: Custom,
            args: &["service", "machine"],
            returns: &[],
            handler: Handler::Write(delete_server_host_info),
        },
        QueryHandle {
            name: "get_server_locations",
            shortname: "gslo",
            kind: Retrieve,
            access: Public,
            args: &["service"],
            returns: &["service", "machine"],
            handler: Handler::Read(get_server_locations),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

fn caller_on_service_ace(state: &MoiraState, c: &Caller, row: RowId) -> bool {
    crate::ace::caller_on_row_ace(
        state,
        c.principal.as_deref(),
        "servers",
        row,
        "acl_type",
        "acl_id",
    )
}

/// ACE of the service named in a serverhost operation, resolved through the
/// servers table.
fn caller_on_named_service_ace(state: &MoiraState, c: &Caller, service: &str) -> bool {
    state
        .db
        .table("servers")
        .select_one(&Pred::EqCi("name", service.to_owned()))
        .is_some_and(|row| caller_on_service_ace(state, c, row))
}

fn render_server(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("servers");
    let (ace_type, ace_name) = render_ace(
        &state.db,
        t.cell(row, "acl_type").as_str(),
        t.cell(row, "acl_id").as_int(),
    );
    vec![
        t.cell(row, "name").render(),
        t.cell(row, "update_int").render(),
        t.cell(row, "target_file").render(),
        t.cell(row, "script").render(),
        t.cell(row, "dfgen").render(),
        t.cell(row, "dfcheck").render(),
        t.cell(row, "type").render(),
        t.cell(row, "enable").render(),
        t.cell(row, "inprogress").render(),
        t.cell(row, "harderror").render(),
        t.cell(row, "errmsg").render(),
        ace_type,
        ace_name,
        t.cell(row, "modtime").render(),
        t.cell(row, "modby").render(),
        t.cell(row, "modwith").render(),
    ]
}

fn get_server_info(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let name = a[0].to_ascii_uppercase();
    let ids = state
        .db
        .select("servers", &Pred::name_match_ci("name", &name));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    // "This query may be executed by someone on the service ace if only one
    // service is retrieved."
    let allowed = on_query_acl(state, c, "get_server_info")
        || (ids.len() == 1 && caller_on_service_ace(state, c, ids[0]));
    if !allowed {
        return Err(MrError::Perm);
    }
    Ok(ids.into_iter().map(|id| render_server(state, id)).collect())
}

fn qualified_get_server(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let enable = parse_tristate(&a[0])?;
    let inprogress = parse_tristate(&a[1])?;
    let harderror = parse_tristate(&a[2])?;
    let t = state.db.table("servers");
    let mut out = Vec::new();
    // Tristate qualifier over unindexed status flags: a genuine admin
    // dump over a tiny relation. lint:allow(plan-discipline)
    for (row, _) in t.iter() {
        let he = t.cell(row, "harderror").as_int() != 0;
        if matches_tristate(t.cell(row, "enable"), enable)
            && matches_tristate(t.cell(row, "inprogress"), inprogress)
            && harderror.is_none_or(|w| he == w)
        {
            out.push(vec![t.cell(row, "name").render()]);
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn add_server_info(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let name = a[0].to_ascii_uppercase();
    check_chars(&name)?;
    no_wildcards(&name)?;
    let interval = parse_int(&a[1])?;
    check_type_alias(state, "service", &a[4], MrError::Type)?;
    let enable = parse_bool(&a[5])?;
    let ace = resolve_ace(&state.db, &a[6], &a[7])?;
    if state
        .db
        .table("servers")
        .select_one(&Pred::Eq("name", name.clone().into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "servers",
        vec![
            name.into(),
            interval.into(),
            a[2].as_str().into(),
            a[3].as_str().into(),
            0.into(),
            0.into(),
            a[4].to_ascii_uppercase().into(),
            enable.into(),
            false.into(),
            0.into(),
            "".into(),
            ace.type_str().into(),
            ace.id().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_server_info(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_service(state, &a[0])?;
    if !caller_on_service_ace(state, c, row) && !on_query_acl(state, c, "update_server_info") {
        return Err(MrError::Perm);
    }
    let interval = parse_int(&a[1])?;
    check_type_alias(state, "service", &a[4], MrError::Type)?;
    let enable = parse_bool(&a[5])?;
    let ace = resolve_ace(&state.db, &a[6], &a[7])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "servers",
        row,
        &[
            ("update_int", interval.into()),
            ("target_file", a[2].as_str().into()),
            ("script", a[3].as_str().into()),
            ("type", a[4].to_ascii_uppercase().into()),
            ("enable", Value::Bool(enable)),
            ("acl_type", ace.type_str().into()),
            ("acl_id", ace.id().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn reset_server_error(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_service(state, &a[0])?;
    if !caller_on_service_ace(state, c, row) && !on_query_acl(state, c, "reset_server_error") {
        return Err(MrError::Perm);
    }
    let dfgen = state.db.cell("servers", row, "dfgen").as_int();
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "servers",
        row,
        &[
            ("harderror", 0.into()),
            ("errmsg", "".into()),
            ("dfcheck", dfgen.into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn set_server_internal_flags(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_service(state, &a[0])?;
    let dfgen = parse_int(&a[1])?;
    let dfcheck = parse_int(&a[2])?;
    let inprogress = parse_bool(&a[3])?;
    let harderror = parse_int(&a[4])?;
    // "The service modtime will NOT be set."
    state.db.update(
        "servers",
        row,
        &[
            ("dfgen", dfgen.into()),
            ("dfcheck", dfcheck.into()),
            ("inprogress", Value::Bool(inprogress)),
            ("harderror", harderror.into()),
            ("errmsg", a[5].as_str().into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_server_info(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_service(state, &a[0])?;
    let name = state.db.cell("servers", row, "name").render();
    if state.db.cell("servers", row, "inprogress").as_bool() {
        return Err(MrError::InUse);
    }
    if !state
        .db
        .select("serverhosts", &Pred::EqCi("service", name))
        .is_empty()
    {
        return Err(MrError::InUse);
    }
    state.db.delete("servers", row)?;
    Ok(Vec::new())
}

const HOST_FIELDS: &[&str] = &[
    "enable",
    "override",
    "success",
    "inprogress",
    "hosterror",
    "hosterrmsg",
    "ltt",
    "lts",
    "value1",
    "value2",
    "value3",
    "modtime",
    "modby",
    "modwith",
];

fn render_server_host(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("serverhosts");
    let mut out = vec![
        t.cell(row, "service").render(),
        machine_name(state, t.cell(row, "mach_id").as_int()),
    ];
    out.extend(HOST_FIELDS.iter().map(|c| t.cell(row, c).render()));
    out
}

fn get_server_host_info(
    state: &MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "get_server_host_info")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let svc_pat = a[0].to_ascii_uppercase();
    let mut out = Vec::new();
    for row in state
        .db
        .select("serverhosts", &Pred::name_match_ci("service", &svc_pat))
    {
        let mach = machine_name(state, state.db.cell("serverhosts", row, "mach_id").as_int());
        if moira_common::wildcard::matches_ci(&a[1], &mach) {
            out.push(render_server_host(state, row));
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn qualified_get_server_host(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let enable = parse_tristate(&a[1])?;
    let override_ = parse_tristate(&a[2])?;
    let success = parse_tristate(&a[3])?;
    let inprogress = parse_tristate(&a[4])?;
    let hosterror = parse_tristate(&a[5])?;
    let svc_pat = a[0].to_ascii_uppercase();
    let t = state.db.table("serverhosts");
    let mut out = Vec::new();
    for row in t.select(&Pred::name_match_ci("service", &svc_pat)) {
        let he = t.cell(row, "hosterror").as_int() != 0;
        if matches_tristate(t.cell(row, "enable"), enable)
            && matches_tristate(t.cell(row, "override"), override_)
            && matches_tristate(t.cell(row, "success"), success)
            && matches_tristate(t.cell(row, "inprogress"), inprogress)
            && hosterror.is_none_or(|w| he == w)
        {
            out.push(vec![
                t.cell(row, "service").render(),
                machine_name(state, t.cell(row, "mach_id").as_int()),
            ]);
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

/// Finds a serverhost row by exact service + machine.
fn one_server_host(state: &MoiraState, service: &str, machine: &str) -> MrResult<RowId> {
    let svc_row = one_service(state, service)?;
    let svc = state.db.cell("servers", svc_row, "name").render();
    let mach_row = one_machine(state, machine)?;
    let mach_id = state.db.cell("machine", mach_row, "mach_id").as_int();
    state.db.select_exactly_one(
        "serverhosts",
        &Pred::Eq("service", svc.into()).and(Pred::Eq("mach_id", mach_id.into())),
        MrError::Machine,
    )
}

fn add_server_host_info(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "add_server_host_info")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let svc_row = one_service(state, &a[0])?;
    let svc = state.db.cell("servers", svc_row, "name").render();
    let mach_row = one_machine(state, &a[1])?;
    let mach_id = state.db.cell("machine", mach_row, "mach_id").as_int();
    let enable = parse_bool(&a[2])?;
    let v1 = parse_int(&a[3])?;
    let v2 = parse_int(&a[4])?;
    let dup = !state
        .db
        .select(
            "serverhosts",
            &Pred::Eq("service", svc.clone().into()).and(Pred::Eq("mach_id", mach_id.into())),
        )
        .is_empty();
    if dup {
        return Err(MrError::Exists);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "serverhosts",
        vec![
            svc.into(),
            mach_id.into(),
            enable.into(),
            false.into(),
            false.into(),
            false.into(),
            0.into(),
            "".into(),
            0.into(),
            0.into(),
            v1.into(),
            v2.into(),
            a[5].as_str().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_server_host_info(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "update_server_host_info")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let row = one_server_host(state, &a[0], &a[1])?;
    // "This query may only be executed when the inprogress bit is not
    // currently set."
    if state.db.cell("serverhosts", row, "inprogress").as_bool() {
        return Err(MrError::InProgress);
    }
    let enable = parse_bool(&a[2])?;
    let v1 = parse_int(&a[3])?;
    let v2 = parse_int(&a[4])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "serverhosts",
        row,
        &[
            ("enable", Value::Bool(enable)),
            ("value1", v1.into()),
            ("value2", v2.into()),
            ("value3", a[5].as_str().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn reset_server_host_error(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "reset_server_host_error")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let row = one_server_host(state, &a[0], &a[1])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "serverhosts",
        row,
        &[
            ("hosterror", 0.into()),
            ("hosterrmsg", "".into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn set_server_host_override(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "set_server_host_override")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let row = one_server_host(state, &a[0], &a[1])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "serverhosts",
        row,
        &[
            ("override", true.into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    // "… and start a new DCM running."
    state.dcm_trigger = true;
    Ok(Vec::new())
}

fn set_server_host_internal(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_server_host(state, &a[0], &a[1])?;
    let override_ = parse_bool(&a[2])?;
    let success = parse_bool(&a[3])?;
    let inprogress = parse_bool(&a[4])?;
    let hosterror = parse_int(&a[5])?;
    let ltt = parse_int(&a[7])?;
    let lts = parse_int(&a[8])?;
    // Modtime is NOT set — this is the DCM writing its own bookkeeping.
    state.db.update(
        "serverhosts",
        row,
        &[
            ("override", Value::Bool(override_)),
            ("success", Value::Bool(success)),
            ("inprogress", Value::Bool(inprogress)),
            ("hosterror", hosterror.into()),
            ("hosterrmsg", a[6].as_str().into()),
            ("ltt", ltt.into()),
            ("lts", lts.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_server_host_info(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    if !on_query_acl(state, c, "delete_server_host_info")
        && !caller_on_named_service_ace(state, c, &a[0])
    {
        return Err(MrError::Perm);
    }
    let row = one_server_host(state, &a[0], &a[1])?;
    if state.db.cell("serverhosts", row, "inprogress").as_bool() {
        return Err(MrError::InUse);
    }
    state.db.delete("serverhosts", row)?;
    Ok(Vec::new())
}

fn get_server_locations(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let pat = a[0].to_ascii_uppercase();
    let t = state.db.table("serverhosts");
    let mut out = Vec::new();
    for row in t.select(&Pred::name_match_ci("service", &pat)) {
        out.push(vec![
            t.cell(row, "service").render(),
            machine_name(state, t.cell(row, "mach_id").as_int()),
        ]);
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        add_test_machine(&mut s, "KIWI.MIT.EDU");
        add_test_machine(&mut s, "SUOMI.MIT.EDU");
        (s, Registry::standard(), Caller::new("ops", "dcm_maint"))
    }

    #[test]
    fn server_crud() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "hesiod",
                "360",
                "/tmp/hesiod.out",
                "/u1/sms/bin/hesiod.sh",
                "REPLICAT",
                "1",
                "LIST",
                "moira-admins",
            ],
        )
        .unwrap();
        let info = run(&mut s, &r, &ops, "get_server_info", &["HESIOD"]).unwrap();
        assert_eq!(info[0][0], "HESIOD", "stored uppercase");
        assert_eq!(info[0][1], "360");
        assert_eq!(info[0][6], "REPLICAT");
        assert_eq!(info[0][12], "moira-admins");
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_server_info",
                &["HESIOD", "360", "t", "s", "UNIQUE", "1", "NONE", "NONE",]
            )
            .unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_server_info",
                &["X", "10", "t", "s", "WEIRD", "1", "NONE", "NONE",]
            )
            .unwrap_err(),
            MrError::Type
        );
        run(
            &mut s,
            &r,
            &ops,
            "update_server_info",
            &[
                "hesiod",
                "720",
                "/tmp/h2.out",
                "script2",
                "REPLICAT",
                "0",
                "NONE",
                "NONE",
            ],
        )
        .unwrap();
        let info = run(&mut s, &r, &ops, "get_server_info", &["HESIOD"]).unwrap();
        assert_eq!(info[0][1], "720");
        assert_eq!(info[0][7], "0");
        run(&mut s, &r, &ops, "delete_server_info", &["HESIOD"]).unwrap();
    }

    #[test]
    fn serverhost_crud_and_locations() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "HESIOD",
                "360",
                "/tmp/hesiod.out",
                "hes.sh",
                "REPLICAT",
                "1",
                "NONE",
                "NONE",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["HESIOD", "KIWI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["HESIOD", "SUOMI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_server_host_info",
                &["HESIOD", "KIWI.MIT.EDU", "1", "0", "0", "",]
            )
            .unwrap_err(),
            MrError::Exists
        );
        // Service with hosts cannot be deleted.
        assert_eq!(
            run(&mut s, &r, &ops, "delete_server_info", &["HESIOD"]).unwrap_err(),
            MrError::InUse
        );
        let locs = run(&mut s, &r, &ops, "get_server_locations", &["HESIOD"]).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0][1], "KIWI.MIT.EDU");
        // Anyone can ask where a service lives ("safe for this query's ACL
        // to be the list containing everybody").
        let anon = Caller::anonymous("sloc");
        assert!(run(&mut s, &r, &anon, "get_server_locations", &["*"]).is_ok());

        run(
            &mut s,
            &r,
            &ops,
            "update_server_host_info",
            &["HESIOD", "KIWI.MIT.EDU", "1", "7", "9", "cred-list"],
        )
        .unwrap();
        let hi = run(
            &mut s,
            &r,
            &ops,
            "get_server_host_info",
            &["HESIOD", "KIWI*"],
        )
        .unwrap();
        assert_eq!(hi[0][10], "7");
        assert_eq!(hi[0][12], "cred-list");
        run(
            &mut s,
            &r,
            &ops,
            "delete_server_host_info",
            &["HESIOD", "KIWI.MIT.EDU"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "delete_server_host_info",
            &["HESIOD", "SUOMI.MIT.EDU"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "delete_server_info", &["HESIOD"]).unwrap();
    }

    #[test]
    fn internal_flags_do_not_touch_modtime() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "NFS", "720", "/tmp/nfs", "nfs.sh", "UNIQUE", "1", "NONE", "NONE",
            ],
        )
        .unwrap();
        let before = run(&mut s, &r, &ops, "get_server_info", &["NFS"]).unwrap()[0][13].clone();
        s.db.clock().advance(1000);
        let root = Caller::root("dcm");
        run(
            &mut s,
            &r,
            &root,
            "set_server_internal_flags",
            &["NFS", "500", "600", "1", "0", ""],
        )
        .unwrap();
        let info = run(&mut s, &r, &ops, "get_server_info", &["NFS"]).unwrap();
        assert_eq!(info[0][4], "500");
        assert_eq!(info[0][5], "600");
        assert_eq!(info[0][8], "1");
        assert_eq!(info[0][13], before, "modtime untouched");
    }

    #[test]
    fn inprogress_guards_updates() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "ZEPHYR", "1440", "/tmp/z", "z.sh", "REPLICAT", "1", "NONE", "NONE",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["ZEPHYR", "KIWI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        let root = Caller::root("dcm");
        run(
            &mut s,
            &r,
            &root,
            "set_server_host_internal",
            &["ZEPHYR", "KIWI.MIT.EDU", "0", "0", "1", "0", "", "0", "0"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "update_server_host_info",
                &["ZEPHYR", "KIWI.MIT.EDU", "1", "0", "0", "",]
            )
            .unwrap_err(),
            MrError::InProgress
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "delete_server_host_info",
                &["ZEPHYR", "KIWI.MIT.EDU"]
            )
            .unwrap_err(),
            MrError::InUse
        );
    }

    #[test]
    fn override_triggers_dcm() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "MAIL", "1440", "/tmp/m", "m.sh", "UNIQUE", "1", "NONE", "NONE",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["MAIL", "KIWI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        assert!(!s.dcm_trigger);
        run(
            &mut s,
            &r,
            &ops,
            "set_server_host_override",
            &["MAIL", "KIWI.MIT.EDU"],
        )
        .unwrap();
        assert!(s.dcm_trigger);
        let hi = run(&mut s, &r, &ops, "get_server_host_info", &["MAIL", "*"]).unwrap();
        assert_eq!(hi[0][3], "1", "override set");
    }

    #[test]
    fn reset_error_flows() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &["POP", "30", "/tmp/p", "p.sh", "UNIQUE", "1", "NONE", "NONE"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["POP", "KIWI.MIT.EDU", "1", "0", "500", ""],
        )
        .unwrap();
        let root = Caller::root("dcm");
        run(
            &mut s,
            &r,
            &root,
            "set_server_internal_flags",
            &["POP", "100", "200", "0", "77", "boom"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &root,
            "set_server_host_internal",
            &[
                "POP",
                "KIWI.MIT.EDU",
                "0",
                "0",
                "0",
                "88",
                "host boom",
                "10",
                "5",
            ],
        )
        .unwrap();
        let q = run(
            &mut s,
            &r,
            &ops,
            "qualified_get_server",
            &["TRUE", "FALSE", "TRUE"],
        )
        .unwrap();
        assert!(q.iter().any(|t| t[0] == "POP"));
        run(&mut s, &r, &ops, "reset_server_error", &["POP"]).unwrap();
        let info = run(&mut s, &r, &ops, "get_server_info", &["POP"]).unwrap();
        assert_eq!(info[0][9], "0");
        assert_eq!(info[0][5], "100", "dfcheck snapped back to dfgen");
        run(
            &mut s,
            &r,
            &ops,
            "reset_server_host_error",
            &["POP", "KIWI.MIT.EDU"],
        )
        .unwrap();
        let hi = run(&mut s, &r, &ops, "get_server_host_info", &["POP", "*"]).unwrap();
        assert_eq!(hi[0][6], "0");
    }

    #[test]
    fn qualified_server_host() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "NFS", "720", "/tmp/n", "n.sh", "UNIQUE", "1", "NONE", "NONE",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["NFS", "KIWI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_host_info",
            &["NFS", "SUOMI.MIT.EDU", "0", "0", "0", ""],
        )
        .unwrap();
        let hits = run(
            &mut s,
            &r,
            &ops,
            "qualified_get_server_host",
            &[
                "NFS", "TRUE", "DONTCARE", "DONTCARE", "DONTCARE", "DONTCARE",
            ],
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], "KIWI.MIT.EDU");
    }

    #[test]
    fn service_ace_grants_host_management() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["zoper", "7700", "/bin/csh", "L", "F", "", "1", "x", "STAFF"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_server_info",
            &[
                "ZEPHYR", "1440", "/tmp/z", "z.sh", "REPLICAT", "1", "USER", "zoper",
            ],
        )
        .unwrap();
        let z = Caller::new("zoper", "dcm_maint");
        // The ACE holder can manage hosts of their service…
        run(
            &mut s,
            &r,
            &z,
            "add_server_host_info",
            &["ZEPHYR", "KIWI.MIT.EDU", "1", "0", "0", ""],
        )
        .unwrap();
        assert!(run(&mut s, &r, &z, "get_server_info", &["ZEPHYR"]).is_ok());
        // …but not create services.
        assert_eq!(
            run(
                &mut s,
                &r,
                &z,
                "add_server_info",
                &["OTHER", "10", "t", "s", "UNIQUE", "1", "NONE", "NONE",]
            )
            .unwrap_err(),
            MrError::Perm
        );
    }
}
