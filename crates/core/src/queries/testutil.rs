//! Test scaffolding shared by unit tests, integration tests, and benches.
//!
//! Not part of the production API, but compiled unconditionally so
//! downstream crates' test suites and the bench harness can reuse it.

use moira_db::Value;

use crate::ids::alloc_id;
use crate::registry::Registry;
use crate::seed::seed_capacls;
use crate::state::MoiraState;

/// Builds a freshly seeded state whose CAPACLS are populated for the
/// standard registry, with one admin user (member of `moira-admins`).
/// Returns the state and the admin list's `list_id`.
pub fn state_with_admin(admin_login: &str) -> (MoiraState, i64) {
    let mut s = MoiraState::new(moira_common::VClock::new());
    let registry = Registry::standard();
    seed_capacls(&mut s, &registry);
    let uid = add_test_user(&mut s, admin_login, 1);
    let admins = 2i64; // seeded list_id of moira-admins
    s.db.append("members", vec![admins.into(), "USER".into(), uid.into()])
        .expect("admin membership");
    (s, admins)
}

/// Inserts a minimal active user directly, returning their `users_id`.
pub fn add_test_user(state: &mut MoiraState, login: &str, users_id: i64) -> i64 {
    let now = state.now();
    let row: Vec<Value> = vec![
        login.into(),
        users_id.into(),
        (users_id + 6000).into(),
        "/bin/csh".into(),
        format!("{login}-last").into(),
        format!("{login}-first").into(),
        "X".into(),
        1.into(), // active
        "hashedid".into(),
        "1990".into(),
        now.into(),
        "test".into(),
        "test".into(),
        format!("{login}-first X {login}-last").into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        now.into(),
        "test".into(),
        "test".into(),
        "NONE".into(),
        0.into(),
        0.into(),
        "".into(),
        now.into(),
        "test".into(),
        "test".into(),
    ];
    state.db.append("users", row).expect("test user");
    users_id
}

/// Inserts a minimal list directly, returning its `list_id`.
pub fn add_test_list(state: &mut MoiraState, name: &str, public: bool) -> i64 {
    let list_id = alloc_id(state, "list_id").expect("list id");
    let now = state.now();
    state
        .db
        .append(
            "list",
            vec![
                name.into(),
                list_id.into(),
                true.into(),
                public.into(),
                false.into(),
                false.into(),
                false.into(),
                Value::Int(-1),
                "test list".into(),
                "NONE".into(),
                0.into(),
                now.into(),
                "test".into(),
                "test".into(),
            ],
        )
        .expect("test list");
    list_id
}

/// Inserts a machine directly, returning its `mach_id`.
pub fn add_test_machine(state: &mut MoiraState, name: &str) -> i64 {
    let mach_id = alloc_id(state, "mach_id").expect("mach id");
    let now = state.now();
    state
        .db
        .append(
            "machine",
            vec![
                name.to_ascii_uppercase().into(),
                mach_id.into(),
                "VAX".into(),
                now.into(),
                "test".into(),
                "test".into(),
            ],
        )
        .expect("test machine");
    mach_id
}
