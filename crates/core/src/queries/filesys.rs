//! Filesystem, NFS physical partition, and quota queries (§7.0.5).

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId, Value};

use crate::ace::{list_id_of, user_in_list, users_id_of};
use crate::ids::alloc_id;
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

const FS_RETURNS: &[&str] = &[
    "name",
    "fstype",
    "machine",
    "packname",
    "mountpoint",
    "access",
    "comments",
    "owner",
    "owners",
    "create",
    "lockertype",
    "modtime",
    "modby",
    "modwith",
];

const NFSPHYS_RETURNS: &[&str] = &[
    "machine",
    "dir",
    "device",
    "status",
    "allocated",
    "size",
    "modtime",
    "modby",
    "modwith",
];

/// Registers the filesystem queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_filesys_by_label",
            shortname: "gfsl",
            kind: Retrieve,
            access: Public,
            args: &["name"],
            returns: FS_RETURNS,
            handler: Handler::Read(get_filesys_by_label),
        },
        QueryHandle {
            name: "get_filesys_by_machine",
            shortname: "gfsm",
            kind: Retrieve,
            access: Public,
            args: &["machine"],
            returns: FS_RETURNS,
            handler: Handler::Read(get_filesys_by_machine),
        },
        QueryHandle {
            name: "get_filesys_by_nfsphys",
            shortname: "gfsn",
            kind: Retrieve,
            access: Public,
            args: &["machine", "partition"],
            returns: FS_RETURNS,
            handler: Handler::Read(get_filesys_by_nfsphys),
        },
        QueryHandle {
            name: "get_filesys_by_group",
            shortname: "gfsg",
            kind: Retrieve,
            access: Custom,
            args: &["list"],
            returns: FS_RETURNS,
            handler: Handler::Read(get_filesys_by_group),
        },
        QueryHandle {
            name: "add_filesys",
            shortname: "afil",
            kind: Append,
            access: QueryAcl,
            args: &[
                "name",
                "fstype",
                "machine",
                "packname",
                "mountpoint",
                "access",
                "comments",
                "owner",
                "owners",
                "create",
                "lockertype",
            ],
            returns: &[],
            handler: Handler::Write(add_filesys),
        },
        QueryHandle {
            name: "update_filesys",
            shortname: "ufil",
            kind: Update,
            access: QueryAcl,
            args: &[
                "name",
                "newname",
                "fstype",
                "machine",
                "packname",
                "mountpoint",
                "access",
                "comments",
                "owner",
                "owners",
                "create",
                "lockertype",
            ],
            returns: &[],
            handler: Handler::Write(update_filesys),
        },
        QueryHandle {
            name: "delete_filesys",
            shortname: "dfil",
            kind: Delete,
            access: QueryAcl,
            args: &["name"],
            returns: &[],
            handler: Handler::Write(delete_filesys),
        },
        QueryHandle {
            name: "get_all_nfsphys",
            shortname: "ganf",
            kind: Retrieve,
            access: Public,
            args: &[],
            returns: NFSPHYS_RETURNS,
            handler: Handler::Read(get_all_nfsphys),
        },
        QueryHandle {
            name: "get_nfsphys",
            shortname: "gnfp",
            kind: Retrieve,
            access: Public,
            args: &["machine", "dir"],
            returns: NFSPHYS_RETURNS,
            handler: Handler::Read(get_nfsphys),
        },
        QueryHandle {
            name: "add_nfsphys",
            shortname: "anfp",
            kind: Append,
            access: QueryAcl,
            args: &[
                "machine",
                "directory",
                "device",
                "status",
                "allocated",
                "size",
            ],
            returns: &[],
            handler: Handler::Write(add_nfsphys),
        },
        QueryHandle {
            name: "update_nfsphys",
            shortname: "unfp",
            kind: Update,
            access: QueryAcl,
            args: &[
                "machine",
                "directory",
                "device",
                "status",
                "allocated",
                "size",
            ],
            returns: &[],
            handler: Handler::Write(update_nfsphys),
        },
        QueryHandle {
            name: "adjust_nfsphys_allocation",
            shortname: "ajnf",
            kind: Update,
            access: QueryAcl,
            args: &["machine", "directory", "delta"],
            returns: &[],
            handler: Handler::Write(adjust_nfsphys_allocation),
        },
        QueryHandle {
            name: "delete_nfsphys",
            shortname: "dnfp",
            kind: Delete,
            access: QueryAcl,
            args: &["machine", "directory"],
            returns: &[],
            handler: Handler::Write(delete_nfsphys),
        },
        QueryHandle {
            name: "get_nfs_quota",
            shortname: "gnfq",
            kind: Retrieve,
            access: Custom,
            args: &["filesys", "login"],
            returns: &[
                "filesys",
                "login",
                "quota",
                "directory",
                "machine",
                "modtime",
                "modby",
                "modwith",
            ],
            handler: Handler::Read(get_nfs_quota),
        },
        QueryHandle {
            name: "get_nfs_quotas_by_partition",
            shortname: "gnqp",
            kind: Retrieve,
            access: Public,
            args: &["machine", "directory"],
            returns: &["filesys", "login", "quota", "directory", "machine"],
            handler: Handler::Read(get_nfs_quotas_by_partition),
        },
        QueryHandle {
            name: "add_nfs_quota",
            shortname: "anfq",
            kind: Append,
            access: QueryAcl,
            args: &["filesystem", "login", "quota"],
            returns: &[],
            handler: Handler::Write(add_nfs_quota),
        },
        QueryHandle {
            name: "update_nfs_quota",
            shortname: "unfq",
            kind: Update,
            access: QueryAcl,
            args: &["filesystem", "login", "quota"],
            returns: &[],
            handler: Handler::Write(update_nfs_quota),
        },
        QueryHandle {
            name: "delete_nfs_quota",
            shortname: "dnfq",
            kind: Delete,
            access: QueryAcl,
            args: &["filesystem", "login"],
            returns: &[],
            handler: Handler::Write(delete_nfs_quota),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

fn render_filesys(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("filesys");
    vec![
        t.cell(row, "label").render(),
        t.cell(row, "type").render(),
        machine_name(state, t.cell(row, "mach_id").as_int()),
        t.cell(row, "name").render(),
        t.cell(row, "mount").render(),
        t.cell(row, "access").render(),
        t.cell(row, "comments").render(),
        user_login(state, t.cell(row, "owner").as_int()),
        list_name(state, t.cell(row, "owners").as_int()),
        t.cell(row, "createflg").render(),
        t.cell(row, "lockertype").render(),
        t.cell(row, "modtime").render(),
        t.cell(row, "modby").render(),
        t.cell(row, "modwith").render(),
    ]
}

fn get_filesys_by_label(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let ids = state
        .db
        .select("filesys", &Pred::name_match("label", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| render_filesys(state, id))
        .collect())
}

fn get_filesys_by_machine(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let ids = state
        .db
        .select("filesys", &Pred::Eq("mach_id", mach_id.into()));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| render_filesys(state, id))
        .collect())
}

fn get_filesys_by_nfsphys(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let mut phys_ids = Vec::new();
    for prow in state
        .db
        .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
    {
        let dir = state.db.cell("nfsphys", prow, "dir").render();
        if moira_common::wildcard::matches(&a[1], &dir) {
            phys_ids.push(state.db.cell("nfsphys", prow, "nfsphys_id").as_int());
        }
    }
    if phys_ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    let mut out = Vec::new();
    for pid in phys_ids {
        for row in state.db.select("filesys", &Pred::Eq("phys_id", pid.into())) {
            out.push(render_filesys(state, row));
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn get_filesys_by_group(
    state: &MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let list_id = list_id_of(&state.db, &a[0])?;
    // "This query may be executed by a member of the target list."
    let allowed = on_query_acl(state, c, "get_filesys_by_group")
        || c.principal
            .as_deref()
            .and_then(|p| users_id_of(&state.db, p).ok())
            .is_some_and(|uid| user_in_list(&state.db, uid, list_id));
    if !allowed {
        return Err(MrError::Perm);
    }
    let ids = state
        .db
        .select("filesys", &Pred::Eq("owners", list_id.into()));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| render_filesys(state, id))
        .collect())
}

/// Validates the pack name against exported NFS partitions: it must lie
/// under an existing nfsphys directory on the same machine (`MR_NFS`
/// "Specified directory not exported"). Returns the `nfsphys_id`.
fn nfs_pack_check(state: &MoiraState, mach_id: i64, packname: &str) -> MrResult<i64> {
    for prow in state
        .db
        .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
    {
        let dir = state.db.cell("nfsphys", prow, "dir").render();
        if packname == dir || packname.starts_with(&format!("{}/", dir.trim_end_matches('/'))) {
            return Ok(state.db.cell("nfsphys", prow, "nfsphys_id").as_int());
        }
    }
    Err(MrError::Nfs)
}

struct FsArgs {
    fstype: String,
    mach_id: i64,
    phys_id: i64,
    owner: i64,
    owners: i64,
    create: bool,
}

#[allow(clippy::too_many_arguments)] // mirrors the add/update_filesys signatures
fn validate_fs_args(
    state: &MoiraState,
    fstype: &str,
    machine: &str,
    packname: &str,
    access: &str,
    owner: &str,
    owners: &str,
    create: &str,
    lockertype: &str,
) -> MrResult<FsArgs> {
    check_type_alias(state, "filesys", fstype, MrError::Fstype)?;
    check_type_alias(state, "lockertype", lockertype, MrError::Type)?;
    let mrow = one_machine(state, machine)?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let owner = users_id_of(&state.db, owner)?;
    let owners = list_id_of(&state.db, owners)?;
    let create = parse_bool(create)?;
    let fstype = fstype.to_ascii_uppercase();
    let phys_id = if fstype == "NFS" {
        if access != "r" && access != "w" {
            return Err(MrError::FilesysAccess);
        }
        nfs_pack_check(state, mach_id, packname)?
    } else {
        0
    };
    Ok(FsArgs {
        fstype,
        mach_id,
        phys_id,
        owner,
        owners,
        create,
    })
}

fn add_filesys(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    no_wildcards(&a[0])?;
    if state
        .db
        .table("filesys")
        .select_one(&Pred::Eq("label", a[0].as_str().into()))
        .is_some()
    {
        return Err(MrError::FilesysExists);
    }
    let v = validate_fs_args(
        state, &a[1], &a[2], &a[3], &a[5], &a[7], &a[8], &a[9], &a[10],
    )?;
    let filsys_id = alloc_id(state, "filsys_id")?;
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "filesys",
        vec![
            a[0].as_str().into(),
            0.into(),
            filsys_id.into(),
            v.phys_id.into(),
            v.fstype.into(),
            v.mach_id.into(),
            a[3].as_str().into(),
            a[4].as_str().into(),
            a[5].as_str().into(),
            a[6].as_str().into(),
            v.owner.into(),
            v.owners.into(),
            v.create.into(),
            a[10].to_ascii_uppercase().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_filesys(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_filesys(state, &a[0])?;
    check_chars(&a[1])?;
    no_wildcards(&a[1])?;
    let current = state.db.cell("filesys", row, "label").as_str().to_owned();
    if a[1] != current
        && state
            .db
            .table("filesys")
            .select_one(&Pred::Eq("label", a[1].as_str().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let v = validate_fs_args(
        state, &a[2], &a[3], &a[4], &a[6], &a[8], &a[9], &a[10], &a[11],
    )?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "filesys",
        row,
        &[
            ("label", a[1].as_str().into()),
            ("type", v.fstype.into()),
            ("mach_id", v.mach_id.into()),
            ("phys_id", v.phys_id.into()),
            ("name", a[4].as_str().into()),
            ("mount", a[5].as_str().into()),
            ("access", a[6].as_str().into()),
            ("comments", a[7].as_str().into()),
            ("owner", v.owner.into()),
            ("owners", v.owners.into()),
            ("createflg", Value::Bool(v.create)),
            ("lockertype", a[11].to_ascii_uppercase().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_filesys(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_filesys(state, &a[0])?;
    let filsys_id = state.db.cell("filesys", row, "filsys_id").as_int();
    // "Any quotas assigned to that filesystem will be deleted, and the
    // allocation count on the nfs physical partition will be decremented."
    let mut reclaimed = 0i64;
    for qrow in state
        .db
        .select("nfsquota", &Pred::Eq("filsys_id", filsys_id.into()))
    {
        reclaimed += state.db.cell("nfsquota", qrow, "quota").as_int();
    }
    state
        .db
        .delete_where("nfsquota", &Pred::Eq("filsys_id", filsys_id.into()));
    let phys_id = state.db.cell("filesys", row, "phys_id").as_int();
    if reclaimed > 0 {
        if let Some(prow) = state
            .db
            .table("nfsphys")
            .select_one(&Pred::Eq("nfsphys_id", phys_id.into()))
        {
            let allocated = state.db.cell("nfsphys", prow, "allocated").as_int();
            state.db.update(
                "nfsphys",
                prow,
                &[("allocated", (allocated - reclaimed).into())],
            )?;
        }
    }
    state.db.delete("filesys", row)?;
    Ok(Vec::new())
}

fn render_nfsphys(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("nfsphys");
    vec![
        machine_name(state, t.cell(row, "mach_id").as_int()),
        t.cell(row, "dir").render(),
        t.cell(row, "device").render(),
        t.cell(row, "status").render(),
        t.cell(row, "allocated").render(),
        t.cell(row, "size").render(),
        t.cell(row, "modtime").render(),
        t.cell(row, "modby").render(),
        t.cell(row, "modwith").render(),
    ]
}

fn get_all_nfsphys(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("nfsphys", &Pred::True);
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| render_nfsphys(state, id))
        .collect())
}

fn get_nfsphys(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let mut out = Vec::new();
    for row in state
        .db
        .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
    {
        let dir = state.db.cell("nfsphys", row, "dir").render();
        if moira_common::wildcard::matches(&a[1], &dir) {
            out.push(render_nfsphys(state, row));
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

/// Finds an nfsphys row by machine + exact directory.
fn one_nfsphys(state: &MoiraState, machine: &str, dir: &str) -> MrResult<RowId> {
    let mrow = one_machine(state, machine)?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    state.db.select_exactly_one(
        "nfsphys",
        &Pred::Eq("mach_id", mach_id.into()).and(Pred::Eq("dir", dir.into())),
        MrError::Nfsphys,
    )
}

fn add_nfsphys(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let status = parse_int(&a[3])?;
    let allocated = parse_int(&a[4])?;
    let size = parse_int(&a[5])?;
    let dup = !state
        .db
        .select(
            "nfsphys",
            &Pred::Eq("mach_id", mach_id.into()).and(Pred::Eq("dir", a[1].as_str().into())),
        )
        .is_empty();
    if dup {
        return Err(MrError::Exists);
    }
    let nfsphys_id = alloc_id(state, "nfsphys_id")?;
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "nfsphys",
        vec![
            nfsphys_id.into(),
            mach_id.into(),
            a[1].as_str().into(),
            a[2].as_str().into(),
            status.into(),
            allocated.into(),
            size.into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_nfsphys(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_nfsphys(state, &a[0], &a[1])?;
    let status = parse_int(&a[3])?;
    let allocated = parse_int(&a[4])?;
    let size = parse_int(&a[5])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "nfsphys",
        row,
        &[
            ("device", a[2].as_str().into()),
            ("status", status.into()),
            ("allocated", allocated.into()),
            ("size", size.into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn adjust_nfsphys_allocation(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_nfsphys(state, &a[0], &a[1])?;
    let delta = parse_int(&a[2])?;
    let allocated = state.db.cell("nfsphys", row, "allocated").as_int();
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "nfsphys",
        row,
        &[
            ("allocated", (allocated + delta).into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_nfsphys(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_nfsphys(state, &a[0], &a[1])?;
    let phys_id = state.db.cell("nfsphys", row, "nfsphys_id").as_int();
    if !state
        .db
        .select("filesys", &Pred::Eq("phys_id", phys_id.into()))
        .is_empty()
    {
        return Err(MrError::InUse);
    }
    state.db.delete("nfsphys", row)?;
    Ok(Vec::new())
}

fn quota_tuple(state: &MoiraState, qrow: RowId, with_mod: bool) -> Vec<String> {
    let t = state.db.table("nfsquota");
    let filsys_id = t.cell(qrow, "filsys_id").as_int();
    let (label, dir, machine) = state
        .db
        .table("filesys")
        .select_one(&Pred::Eq("filsys_id", filsys_id.into()))
        .map(|fr| {
            let ft = state.db.table("filesys");
            (
                ft.cell(fr, "label").render(),
                ft.cell(fr, "name").render(),
                machine_name(state, ft.cell(fr, "mach_id").as_int()),
            )
        })
        .unwrap_or_else(|| (format!("#{filsys_id}"), String::new(), String::new()));
    let mut out = vec![
        label,
        user_login(state, t.cell(qrow, "users_id").as_int()),
        t.cell(qrow, "quota").render(),
        dir,
        machine,
    ];
    if with_mod {
        out.push(t.cell(qrow, "modtime").render());
        out.push(t.cell(qrow, "modby").render());
        out.push(t.cell(qrow, "modwith").render());
    }
    out
}

fn get_nfs_quota(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let users_id = users_id_of(&state.db, &a[1])?;
    // Owner of the target filesystem or the query ACL; a user may also see
    // their own quotas.
    let allowed = on_query_acl(state, c, "get_nfs_quota")
        || c.principal.as_deref() == Some(a[1].as_str())
        || c.principal
            .as_deref()
            .and_then(|p| users_id_of(&state.db, p).ok())
            .is_some_and(|caller_id| {
                state
                    .db
                    .select("filesys", &Pred::name_match("label", &a[0]))
                    .iter()
                    .all(|&fr| state.db.cell("filesys", fr, "owner").as_int() == caller_id)
            });
    if !allowed {
        return Err(MrError::Perm);
    }
    let mut out = Vec::new();
    for frow in state
        .db
        .select("filesys", &Pred::name_match("label", &a[0]))
    {
        let filsys_id = state.db.cell("filesys", frow, "filsys_id").as_int();
        for qrow in state.db.select(
            "nfsquota",
            &Pred::Eq("filsys_id", filsys_id.into()).and(Pred::Eq("users_id", users_id.into())),
        ) {
            out.push(quota_tuple(state, qrow, true));
        }
    }
    if out.is_empty() {
        return Err(MrError::NoQuota);
    }
    Ok(out)
}

fn get_nfs_quotas_by_partition(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let mrow = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
    let mut out = Vec::new();
    for prow in state
        .db
        .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
    {
        let dir = state.db.cell("nfsphys", prow, "dir").render();
        if !moira_common::wildcard::matches(&a[1], &dir) {
            continue;
        }
        let phys_id = state.db.cell("nfsphys", prow, "nfsphys_id").as_int();
        for qrow in state
            .db
            .select("nfsquota", &Pred::Eq("phys_id", phys_id.into()))
        {
            out.push(quota_tuple(state, qrow, false));
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn charge_allocation(state: &mut MoiraState, phys_id: i64, delta: i64) -> MrResult<()> {
    if let Some(prow) = state
        .db
        .table("nfsphys")
        .select_one(&Pred::Eq("nfsphys_id", phys_id.into()))
    {
        let allocated = state.db.cell("nfsphys", prow, "allocated").as_int();
        state.db.update(
            "nfsphys",
            prow,
            &[("allocated", (allocated + delta).into())],
        )?;
    }
    Ok(())
}

fn add_nfs_quota(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let frow = one_filesys(state, &a[0])?;
    let users_id = users_id_of(&state.db, &a[1])?;
    let quota = parse_int(&a[2])?;
    if quota < 0 {
        return Err(MrError::Integer);
    }
    let filsys_id = state.db.cell("filesys", frow, "filsys_id").as_int();
    let phys_id = state.db.cell("filesys", frow, "phys_id").as_int();
    let dup = !state
        .db
        .select(
            "nfsquota",
            &Pred::Eq("filsys_id", filsys_id.into()).and(Pred::Eq("users_id", users_id.into())),
        )
        .is_empty();
    if dup {
        return Err(MrError::Exists);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "nfsquota",
        vec![
            users_id.into(),
            filsys_id.into(),
            phys_id.into(),
            quota.into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    charge_allocation(state, phys_id, quota)?;
    Ok(Vec::new())
}

fn find_quota(state: &MoiraState, filesys: &str, login: &str) -> MrResult<(RowId, i64, i64)> {
    let frow = one_filesys(state, filesys)?;
    let users_id = users_id_of(&state.db, login)?;
    let filsys_id = state.db.cell("filesys", frow, "filsys_id").as_int();
    let qrow = state.db.select_exactly_one(
        "nfsquota",
        &Pred::Eq("filsys_id", filsys_id.into()).and(Pred::Eq("users_id", users_id.into())),
        MrError::NoQuota,
    )?;
    let phys_id = state.db.cell("nfsquota", qrow, "phys_id").as_int();
    let old = state.db.cell("nfsquota", qrow, "quota").as_int();
    Ok((qrow, phys_id, old))
}

fn update_nfs_quota(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let quota = parse_int(&a[2])?;
    if quota < 0 {
        return Err(MrError::Integer);
    }
    let (qrow, phys_id, old) = find_quota(state, &a[0], &a[1])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "nfsquota",
        qrow,
        &[
            ("quota", quota.into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    charge_allocation(state, phys_id, quota - old)?;
    Ok(Vec::new())
}

fn delete_nfs_quota(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let (qrow, phys_id, old) = find_quota(state, &a[0], &a[1])?;
    state.db.delete("nfsquota", qrow)?;
    charge_allocation(state, phys_id, -old)?;
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        add_test_machine(&mut s, "CHARON");
        add_test_machine(&mut s, "HELEN");
        let r = Registry::standard();
        let ops = Caller::new("ops", "filsysmaint");
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["aab", "7000", "/bin/csh", "L", "F", "", "1", "x", "1990"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "aab-group",
                "1",
                "0",
                "0",
                "0",
                "1",
                "-1",
                "NONE",
                "NONE",
                "",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_nfsphys",
            &["CHARON", "/u1/lockers", "ra0c", "1", "0", "10000"],
        )
        .unwrap();
        (s, r, ops)
    }

    fn add_aab_filesys(s: &mut MoiraState, r: &Registry, ops: &Caller) {
        run(
            s,
            r,
            ops,
            "add_filesys",
            &[
                "aab",
                "NFS",
                "CHARON",
                "/u1/lockers/aab",
                "/mit/aab",
                "w",
                "locker",
                "aab",
                "aab-group",
                "1",
                "HOMEDIR",
            ],
        )
        .unwrap();
    }

    #[test]
    fn filesys_crud() {
        let (mut s, r, ops) = setup();
        add_aab_filesys(&mut s, &r, &ops);
        let fs = run(&mut s, &r, &ops, "get_filesys_by_label", &["aab"]).unwrap();
        assert_eq!(fs[0][1], "NFS");
        assert_eq!(fs[0][2], "CHARON");
        assert_eq!(fs[0][7], "aab");
        assert_eq!(fs[0][8], "aab-group");
        // Duplicate label.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "aab",
                    "NFS",
                    "CHARON",
                    "/u1/lockers/aab",
                    "/mit/aab",
                    "w",
                    "",
                    "aab",
                    "aab-group",
                    "1",
                    "HOMEDIR",
                ]
            )
            .unwrap_err(),
            MrError::FilesysExists
        );
        // RVD filesystems skip the NFS checks.
        run(
            &mut s,
            &r,
            &ops,
            "add_filesys",
            &[
                "ade",
                "RVD",
                "HELEN",
                "ade",
                "/mnt/ade",
                "r",
                "rvd pack",
                "aab",
                "aab-group",
                "0",
                "SYSTEM",
            ],
        )
        .unwrap();
        let by_mach = run(&mut s, &r, &ops, "get_filesys_by_machine", &["HELEN"]).unwrap();
        assert_eq!(by_mach.len(), 1);
        assert_eq!(by_mach[0][0], "ade");
        run(&mut s, &r, &ops, "delete_filesys", &["ade"]).unwrap();
        run(&mut s, &r, &ops, "delete_filesys", &["aab"]).unwrap();
    }

    #[test]
    fn nfs_validation_errors() {
        let (mut s, r, ops) = setup();
        // Unexported directory.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad",
                    "NFS",
                    "CHARON",
                    "/u9/nope/bad",
                    "/mit/bad",
                    "w",
                    "",
                    "aab",
                    "aab-group",
                    "1",
                    "HOMEDIR",
                ]
            )
            .unwrap_err(),
            MrError::Nfs
        );
        // Bad access mode.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad",
                    "NFS",
                    "CHARON",
                    "/u1/lockers/bad",
                    "/mit/bad",
                    "x",
                    "",
                    "aab",
                    "aab-group",
                    "1",
                    "HOMEDIR",
                ]
            )
            .unwrap_err(),
            MrError::FilesysAccess
        );
        // Bad fstype / lockertype / owner / owners.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad",
                    "AFS",
                    "CHARON",
                    "x",
                    "/mit/bad",
                    "w",
                    "",
                    "aab",
                    "aab-group",
                    "1",
                    "HOMEDIR",
                ]
            )
            .unwrap_err(),
            MrError::Fstype
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad",
                    "RVD",
                    "CHARON",
                    "x",
                    "/mit/bad",
                    "w",
                    "",
                    "aab",
                    "aab-group",
                    "1",
                    "CLOSET",
                ]
            )
            .unwrap_err(),
            MrError::Type
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad",
                    "RVD",
                    "CHARON",
                    "x",
                    "/mit/bad",
                    "w",
                    "",
                    "ghost",
                    "aab-group",
                    "1",
                    "SYSTEM",
                ]
            )
            .unwrap_err(),
            MrError::User
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_filesys",
                &[
                    "bad", "RVD", "CHARON", "x", "/mit/bad", "w", "", "aab", "ghosts", "1",
                    "SYSTEM",
                ]
            )
            .unwrap_err(),
            MrError::List
        );
    }

    #[test]
    fn nfsphys_crud_and_allocation() {
        let (mut s, r, ops) = setup();
        let all = run(&mut s, &r, &ops, "get_all_nfsphys", &[]).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0][1], "/u1/lockers");
        run(
            &mut s,
            &r,
            &ops,
            "adjust_nfsphys_allocation",
            &["CHARON", "/u1/lockers", "250"],
        )
        .unwrap();
        let p = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(p[0][4], "250");
        run(
            &mut s,
            &r,
            &ops,
            "adjust_nfsphys_allocation",
            &["CHARON", "/u1/lockers", "-250"],
        )
        .unwrap();
        // Cannot delete a partition holding filesystems.
        add_aab_filesys(&mut s, &r, &ops);
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "delete_nfsphys",
                &["CHARON", "/u1/lockers"]
            )
            .unwrap_err(),
            MrError::InUse
        );
        run(&mut s, &r, &ops, "delete_filesys", &["aab"]).unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "delete_nfsphys",
            &["CHARON", "/u1/lockers"],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_all_nfsphys", &[]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn quota_lifecycle_charges_allocation() {
        let (mut s, r, ops) = setup();
        add_aab_filesys(&mut s, &r, &ops);
        run(&mut s, &r, &ops, "add_nfs_quota", &["aab", "aab", "300"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "add_nfs_quota", &["aab", "aab", "300"]).unwrap_err(),
            MrError::Exists
        );
        let p = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(p[0][4], "300");
        let q = run(&mut s, &r, &ops, "get_nfs_quota", &["aab", "aab"]).unwrap();
        assert_eq!(q[0][2], "300");
        assert_eq!(q[0][4], "CHARON");
        run(&mut s, &r, &ops, "update_nfs_quota", &["aab", "aab", "500"]).unwrap();
        let p = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(p[0][4], "500");
        let by_part = run(
            &mut s,
            &r,
            &ops,
            "get_nfs_quotas_by_partition",
            &["CHARON", "/u1/*"],
        )
        .unwrap();
        assert_eq!(by_part.len(), 1);
        assert_eq!(by_part[0][2], "500");
        run(&mut s, &r, &ops, "delete_nfs_quota", &["aab", "aab"]).unwrap();
        let p = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(p[0][4], "0");
        assert_eq!(
            run(&mut s, &r, &ops, "get_nfs_quota", &["aab", "aab"]).unwrap_err(),
            MrError::NoQuota
        );
    }

    #[test]
    fn delete_filesys_reclaims_quota_allocation() {
        let (mut s, r, ops) = setup();
        add_aab_filesys(&mut s, &r, &ops);
        run(&mut s, &r, &ops, "add_nfs_quota", &["aab", "aab", "300"]).unwrap();
        run(&mut s, &r, &ops, "delete_filesys", &["aab"]).unwrap();
        let p = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(p[0][4], "0", "allocation reclaimed");
    }

    #[test]
    fn group_query_access() {
        let (mut s, r, ops) = setup();
        add_aab_filesys(&mut s, &r, &ops);
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["aab-group", "USER", "aab"],
        )
        .unwrap();
        let member = Caller::new("aab", "attach");
        let fs = run(&mut s, &r, &member, "get_filesys_by_group", &["aab-group"]).unwrap();
        assert_eq!(fs[0][0], "aab");
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["rando", "7999", "/bin/csh", "L", "F", "", "1", "x", "1990"],
        )
        .unwrap();
        let rando = Caller::new("rando", "attach");
        assert_eq!(
            run(&mut s, &r, &rando, "get_filesys_by_group", &["aab-group"]).unwrap_err(),
            MrError::Perm
        );
    }

    #[test]
    fn filesys_by_nfsphys() {
        let (mut s, r, ops) = setup();
        add_aab_filesys(&mut s, &r, &ops);
        let fs = run(
            &mut s,
            &r,
            &ops,
            "get_filesys_by_nfsphys",
            &["CHARON", "/u1/*"],
        )
        .unwrap();
        assert_eq!(fs[0][0], "aab");
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "get_filesys_by_nfsphys",
                &["CHARON", "/u2/*"]
            )
            .unwrap_err(),
            MrError::NoMatch
        );
    }
}
