//! The built-in special queries (§7.0.8): `_help`, `_list_queries`,
//! `_list_users`.
//!
//! `_help` and `_list_queries` introspect the registry itself, so their
//! bodies live in [`crate::registry::Registry::execute`]; the handles here
//! exist so they appear in the catalog (and in `_list_queries` output) like
//! any other query.

use moira_common::errors::{MrError, MrResult};

use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

/// Registers the special queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "_help",
            shortname: "help",
            kind: Special,
            access: Public,
            args: &["query"],
            returns: &["help_message"],
            handler: Handler::Read(intercepted),
        },
        QueryHandle {
            name: "_list_queries",
            shortname: "lqry",
            kind: Special,
            access: Public,
            args: &[],
            returns: &["long_query_name", "short_query_name"],
            handler: Handler::Read(intercepted),
        },
        QueryHandle {
            name: "_list_users",
            shortname: "lusr",
            kind: Special,
            access: Public,
            args: &[],
            returns: &[
                "kerberos_principal",
                "host_address",
                "port_number",
                "connect_time",
                "client_number",
            ],
            handler: Handler::Read(list_users),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

/// Placeholder for registry-intercepted queries; never invoked.
fn intercepted(_s: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Err(MrError::Internal)
}

fn list_users(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Ok(state
        .clients
        .iter()
        .map(|c| {
            vec![
                c.principal.clone().unwrap_or_else(|| "???".to_owned()),
                c.host.clone(),
                c.port.to_string(),
                c.connect_time.to_string(),
                c.client_number.to_string(),
            ]
        })
        .collect())
}

/// Renders the `_help` message for one handle: the short name and the lists
/// of arguments and return values.
pub fn help_message(handle: &QueryHandle) -> String {
    format!(
        "{}, {} ({}) -> ({})",
        handle.name,
        handle.shortname,
        handle.args.join(", "),
        handle.returns.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ClientInfo;

    #[test]
    fn help_renders_signature() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let anon = Caller::anonymous("t");
        let rows = r
            .execute(&mut s, &anon, "_help", &["get_user_by_login".into()])
            .unwrap();
        assert!(rows[0][0].contains("gubl"));
        assert!(rows[0][0].contains("login"));
        assert_eq!(
            r.execute(&mut s, &anon, "_help", &["bogus".into()])
                .unwrap_err(),
            MrError::NoHandle
        );
    }

    #[test]
    fn list_queries_covers_catalog() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let rows = r
            .execute(&mut s, &Caller::anonymous("t"), "_list_queries", &[])
            .unwrap();
        assert_eq!(rows.len(), r.len());
        assert!(rows.iter().any(|t| t[0] == "add_user" && t[1] == "ausr"));
    }

    #[test]
    fn list_users_reports_clients() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        s.clients.push(ClientInfo {
            principal: Some("babette".into()),
            host: "18.72.0.30".into(),
            port: 1044,
            connect_time: 100,
            client_number: 1,
        });
        let rows = r
            .execute(&mut s, &Caller::anonymous("t"), "_list_users", &[])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "babette");
        assert_eq!(rows[0][2], "1044");
    }
}
