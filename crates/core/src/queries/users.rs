//! Users, finger, and registration queries (§7.0.1).

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId, Value};

use crate::ids::alloc_id;
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::schema::{user_status, MAX_LOGIN_LEN, UNIQUE_LOGIN, UNIQUE_UID};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

/// Summary fields for the `get_all_*logins` queries.
const SUMMARY: &[&str] = &["login", "uid", "shell", "last", "first", "middle"];

/// Full account fields for the `get_user_by_*` queries.
const FULL: &[&str] = &[
    "login", "uid", "shell", "last", "first", "middle", "status", "mit_id", "mit_year", "modtime",
    "modby", "modwith",
];

/// Finger fields for `get_finger_by_login`.
const FINGER: &[&str] = &[
    "login",
    "fullname",
    "nickname",
    "home_addr",
    "home_phone",
    "office_addr",
    "office_phone",
    "mit_dept",
    "mit_affil",
    "fmodtime",
    "fmodby",
    "fmodwith",
];

/// Registers the user queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_all_logins",
            shortname: "galo",
            kind: Retrieve,
            access: QueryAcl,
            args: &[],
            returns: SUMMARY,
            handler: Handler::Read(get_all_logins),
        },
        QueryHandle {
            name: "get_all_active_logins",
            shortname: "gaal",
            kind: Retrieve,
            access: QueryAcl,
            args: &[],
            returns: SUMMARY,
            handler: Handler::Read(get_all_active_logins),
        },
        QueryHandle {
            name: "get_user_by_login",
            shortname: "gubl",
            kind: Retrieve,
            access: QueryAclOrSelf(0),
            args: &["login"],
            returns: FULL,
            handler: Handler::Read(get_user_by_login),
        },
        QueryHandle {
            name: "get_user_by_uid",
            shortname: "gubu",
            kind: Retrieve,
            access: Custom,
            args: &["uid"],
            returns: FULL,
            handler: Handler::Read(get_user_by_uid),
        },
        QueryHandle {
            name: "get_user_by_name",
            shortname: "gubn",
            kind: Retrieve,
            access: QueryAcl,
            args: &["first", "last"],
            returns: FULL,
            handler: Handler::Read(get_user_by_name),
        },
        QueryHandle {
            name: "get_user_by_class",
            shortname: "gubc",
            kind: Retrieve,
            access: QueryAcl,
            args: &["class"],
            returns: FULL,
            handler: Handler::Read(get_user_by_class),
        },
        QueryHandle {
            name: "get_user_by_mitid",
            shortname: "gubm",
            kind: Retrieve,
            access: QueryAcl,
            args: &["mitid"],
            returns: FULL,
            handler: Handler::Read(get_user_by_mitid),
        },
        QueryHandle {
            name: "add_user",
            shortname: "ausr",
            kind: Append,
            access: QueryAcl,
            args: &[
                "login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class",
            ],
            returns: &[],
            handler: Handler::Write(add_user),
        },
        QueryHandle {
            name: "register_user",
            shortname: "rusr",
            kind: Update,
            access: QueryAcl,
            args: &["uid", "login", "fstype"],
            returns: &[],
            handler: Handler::Write(register_user),
        },
        QueryHandle {
            name: "update_user",
            shortname: "uusr",
            kind: Update,
            access: QueryAcl,
            args: &[
                "login", "newlogin", "uid", "shell", "last", "first", "middle", "state", "mitid",
                "class",
            ],
            returns: &[],
            handler: Handler::Write(update_user),
        },
        QueryHandle {
            name: "update_user_shell",
            shortname: "uush",
            kind: Update,
            access: QueryAclOrSelf(0),
            args: &["login", "shell"],
            returns: &[],
            handler: Handler::Write(update_user_shell),
        },
        QueryHandle {
            name: "update_user_status",
            shortname: "uust",
            kind: Update,
            access: QueryAcl,
            args: &["login", "status"],
            returns: &[],
            handler: Handler::Write(update_user_status),
        },
        QueryHandle {
            name: "delete_user",
            shortname: "dusr",
            kind: Delete,
            access: QueryAcl,
            args: &["login"],
            returns: &[],
            handler: Handler::Write(delete_user),
        },
        QueryHandle {
            name: "delete_user_by_uid",
            shortname: "dubu",
            kind: Delete,
            access: QueryAcl,
            args: &["uid"],
            returns: &[],
            handler: Handler::Write(delete_user_by_uid),
        },
        QueryHandle {
            name: "get_finger_by_login",
            shortname: "gfbl",
            kind: Retrieve,
            access: QueryAclOrSelf(0),
            args: &["login"],
            returns: FINGER,
            handler: Handler::Read(get_finger_by_login),
        },
        QueryHandle {
            name: "update_finger_by_login",
            shortname: "ufbl",
            kind: Update,
            access: QueryAclOrSelf(0),
            args: &[
                "login",
                "fullname",
                "nickname",
                "home_addr",
                "home_phone",
                "office_addr",
                "office_phone",
                "department",
                "affiliation",
            ],
            returns: &[],
            handler: Handler::Write(update_finger_by_login),
        },
    ];
    for q in qs {
        r.register(QueryHandle { ..*q });
    }
}

fn get_all_logins(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("users", &Pred::True);
    Ok(ids
        .into_iter()
        .map(|id| project(state, "users", id, SUMMARY))
        .collect())
}

fn get_all_active_logins(
    state: &MoiraState,
    _c: &Caller,
    _a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    // "every account for which the status field is non-zero".
    let ids = state
        .db
        .select("users", &Pred::Not(Box::new(Pred::Eq("status", 0.into()))));
    Ok(ids
        .into_iter()
        .map(|id| project(state, "users", id, SUMMARY))
        .collect())
}

fn retrieve_users(state: &MoiraState, pred: &Pred) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("users", pred);
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| project(state, "users", id, FULL))
        .collect())
}

fn get_user_by_login(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    retrieve_users(state, &Pred::name_match("login", &a[0]))
}

fn get_user_by_uid(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let uid = parse_int(&a[0])?;
    let rows = retrieve_users(state, &Pred::Eq("uid", uid.into()))?;
    // "If the person executing the query is not on the query ACL, then the
    // query only succeeds if the only retrieved information is about the
    // user making the request."
    if !on_query_acl(state, c, "get_user_by_uid") {
        let me = c.principal.as_deref().unwrap_or("");
        if rows.iter().any(|row| row[0] != me) {
            return Err(MrError::Perm);
        }
    }
    Ok(rows)
}

fn get_user_by_name(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    retrieve_users(
        state,
        &Pred::name_match("first", &a[0]).and(Pred::name_match("last", &a[1])),
    )
}

fn get_user_by_class(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    retrieve_users(state, &Pred::name_match("mit_year", &a[0]))
}

fn get_user_by_mitid(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    retrieve_users(state, &Pred::name_match("mit_id", &a[0]))
}

fn add_user(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let (mut login, uid_arg, shell, last, first, middle, status, mitid, class) = (
        a[0].clone(),
        &a[1],
        &a[2],
        &a[3],
        &a[4],
        &a[5],
        &a[6],
        &a[7],
        &a[8],
    );
    let uid = if uid_arg == "UNIQUE_UID" || parse_int(uid_arg).ok() == Some(UNIQUE_UID) {
        alloc_id(state, "uid")?
    } else {
        parse_int(uid_arg)?
    };
    if login == UNIQUE_LOGIN {
        login = format!("#{uid}");
    } else {
        check_chars(&login)?;
        no_wildcards(&login)?;
        if login.is_empty() || login.len() > MAX_LOGIN_LEN {
            return Err(MrError::ArgTooLong);
        }
    }
    let status = parse_int(status)?;
    check_type_alias(state, "class", class, MrError::BadClass)?;
    if state
        .db
        .table("users")
        .select_one(&Pred::Eq("login", login.clone().into()))
        .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let users_id = alloc_id(state, "users_id")?;
    let (now, who, with) = mod_fields(state, c);
    let fullname = format!("{first} {middle} {last}");
    let row: Vec<Value> = vec![
        login.into(),
        users_id.into(),
        uid.into(),
        shell.as_str().into(),
        last.as_str().into(),
        first.as_str().into(),
        middle.as_str().into(),
        status.into(),
        mitid.as_str().into(),
        class.as_str().into(),
        now.into(),
        who.clone().into(),
        with.clone().into(),
        fullname.into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        now.into(),
        who.clone().into(),
        with.clone().into(),
        "NONE".into(),
        0.into(),
        0.into(),
        "".into(),
        now.into(),
        who.into(),
        with.into(),
    ];
    state.db.append("users", row)?;
    Ok(Vec::new())
}

/// Picks the least-loaded enabled POP server (`value1` = boxes assigned,
/// `value2` = capacity), returning its `mach_id`.
fn least_loaded_pop(state: &MoiraState) -> MrResult<(RowId, i64)> {
    let sh = state.db.table("serverhosts");
    let mut best: Option<(RowId, i64, i64)> = None;
    for row in sh.select(&Pred::EqCi("service", "POP".to_owned())) {
        if !sh.cell(row, "enable").as_bool() {
            continue;
        }
        let used = sh.cell(row, "value1").as_int();
        let cap = sh.cell(row, "value2").as_int();
        if cap > 0 && used >= cap {
            continue;
        }
        if best.is_none_or(|(_, b, _)| used < b) {
            best = Some((row, used, sh.cell(row, "mach_id").as_int()));
        }
    }
    best.map(|(row, _, mach)| (row, mach))
        .ok_or(MrError::Machine)
}

/// Picks the least-loaded NFS partition matching `fstype` bits with room
/// for `quota` more units.
fn least_loaded_nfsphys(state: &MoiraState, fstype: i64, quota: i64) -> MrResult<RowId> {
    let np = state.db.table("nfsphys");
    let mut best: Option<(RowId, f64)> = None;
    for row in np.select(&Pred::True) {
        if np.cell(row, "status").as_int() & fstype == 0 {
            continue;
        }
        let allocated = np.cell(row, "allocated").as_int();
        let size = np.cell(row, "size").as_int();
        if size <= 0 || allocated + quota > size {
            continue;
        }
        let load = allocated as f64 / size as f64;
        if best.is_none_or(|(_, b)| load < b) {
            best = Some((row, load));
        }
    }
    best.map(|(row, _)| row).ok_or(MrError::NoFilesys)
}

fn register_user(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let uid = parse_int(&a[0])?;
    let login = a[1].clone();
    let fstype = parse_int(&a[2])?;
    check_chars(&login)?;
    no_wildcards(&login)?;
    if login.is_empty() || login.len() > MAX_LOGIN_LEN {
        return Err(MrError::ArgTooLong);
    }
    let user_row =
        state
            .db
            .select_exactly_one("users", &Pred::Eq("uid", uid.into()), MrError::NoMatch)?;
    if state.db.cell("users", user_row, "status").as_int() != user_status::REGISTERABLE {
        return Err(MrError::NotRegisterable);
    }
    if state
        .db
        .table("users")
        .select_one(&Pred::Eq("login", login.clone().into()))
        .is_some()
    {
        return Err(MrError::InUse);
    }
    let users_id = state.db.cell("users", user_row, "users_id").as_int();
    let quota = state
        .get_value("def_quota")
        .unwrap_or(crate::seed::DEFAULT_QUOTA);

    // Pobox: least-loaded POP server.
    let (pop_row, pop_mach) = least_loaded_pop(state)?;
    let pop_used = state.db.cell("serverhosts", pop_row, "value1").as_int();
    state
        .db
        .update("serverhosts", pop_row, &[("value1", (pop_used + 1).into())])?;

    // Home filesystem on the least-loaded matching partition.
    let phys_row = least_loaded_nfsphys(state, fstype, quota)?;
    let phys_id = state.db.cell("nfsphys", phys_row, "nfsphys_id").as_int();
    let phys_mach = state.db.cell("nfsphys", phys_row, "mach_id").as_int();
    let phys_dir = state
        .db
        .cell("nfsphys", phys_row, "dir")
        .as_str()
        .to_owned();
    let allocated = state.db.cell("nfsphys", phys_row, "allocated").as_int();
    state.db.update(
        "nfsphys",
        phys_row,
        &[("allocated", (allocated + quota).into())],
    )?;

    let (now, who, with) = mod_fields(state, c);

    // Group list: owned by the user, unique GID, the user as first member.
    let list_id = alloc_id(state, "list_id")?;
    let gid = alloc_id(state, "gid")?;
    state.db.append(
        "list",
        vec![
            login.clone().into(),
            list_id.into(),
            true.into(),
            false.into(),
            false.into(),
            false.into(),
            true.into(),
            gid.into(),
            format!("{login} group").into(),
            "USER".into(),
            users_id.into(),
            now.into(),
            who.clone().into(),
            with.clone().into(),
        ],
    )?;
    state.db.append(
        "members",
        vec![list_id.into(), "USER".into(), users_id.into()],
    )?;

    // Filesystem + quota.
    let filsys_id = alloc_id(state, "filsys_id")?;
    let machine = machine_name(state, phys_mach);
    state.db.append(
        "filesys",
        vec![
            login.clone().into(),
            0.into(),
            filsys_id.into(),
            phys_id.into(),
            "NFS".into(),
            phys_mach.into(),
            format!("{}/{login}", phys_dir.trim_end_matches('/')).into(),
            format!("/mit/{login}").into(),
            "w".into(),
            format!("home directory on {machine}").into(),
            users_id.into(),
            list_id.into(),
            true.into(),
            "HOMEDIR".into(),
            now.into(),
            who.clone().into(),
            with.clone().into(),
        ],
    )?;
    state.db.append(
        "nfsquota",
        vec![
            users_id.into(),
            filsys_id.into(),
            phys_id.into(),
            quota.into(),
            now.into(),
            who.clone().into(),
            with.clone().into(),
        ],
    )?;

    // Finally flip the user record: login name, POP pobox, half-registered.
    let pop_name = machine_name(state, pop_mach);
    state.db.update(
        "users",
        user_row,
        &[
            ("login", login.into()),
            ("status", user_status::HALF_REGISTERED.into()),
            ("potype", "POP".into()),
            ("pop_id", pop_mach.into()),
            ("saved_pop", pop_name.into()),
            ("pmodtime", now.into()),
            ("pmodby", who.clone().into()),
            ("pmodwith", with.clone().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn update_user(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    let newlogin = &a[1];
    check_chars(newlogin)?;
    no_wildcards(newlogin)?;
    if newlogin.is_empty() || newlogin.len() > MAX_LOGIN_LEN {
        return Err(MrError::ArgTooLong);
    }
    let uid = parse_int(&a[2])?;
    let status = parse_int(&a[7])?;
    check_type_alias(state, "class", &a[9], MrError::BadClass)?;
    let current = state.db.cell("users", row, "login").as_str().to_owned();
    if newlogin != &current
        && state
            .db
            .table("users")
            .select_one(&Pred::Eq("login", newlogin.as_str().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "users",
        row,
        &[
            ("login", newlogin.as_str().into()),
            ("uid", uid.into()),
            ("shell", a[3].as_str().into()),
            ("last", a[4].as_str().into()),
            ("first", a[5].as_str().into()),
            ("middle", a[6].as_str().into()),
            ("status", status.into()),
            ("mit_id", a[8].as_str().into()),
            ("mit_year", a[9].as_str().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn update_user_shell(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "users",
        row,
        &[
            ("shell", a[1].as_str().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn update_user_status(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    let status = parse_int(&a[1])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "users",
        row,
        &[
            ("status", status.into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

/// The referential checks of `delete_user`: "only … allowed if the user is
/// not a member of any lists, has any quotas assigned, or is the owner of
/// an object."
fn check_user_unreferenced(state: &MoiraState, users_id: i64) -> MrResult<()> {
    let member_of = !state
        .db
        .select(
            "members",
            &Pred::Eq("member_id", users_id.into()).and(Pred::Eq("member_type", "USER".into())),
        )
        .is_empty();
    let has_quota = !state
        .db
        .select("nfsquota", &Pred::Eq("users_id", users_id.into()))
        .is_empty();
    let owns_filesys = !state
        .db
        .select("filesys", &Pred::Eq("owner", users_id.into()))
        .is_empty();
    let is_ace = !state
        .db
        .select(
            "list",
            &Pred::Eq("acl_type", "USER".into()).and(Pred::Eq("acl_id", users_id.into())),
        )
        .is_empty()
        || !state
            .db
            .select(
                "servers",
                &Pred::Eq("acl_type", "USER".into()).and(Pred::Eq("acl_id", users_id.into())),
            )
            .is_empty()
        || !state
            .db
            .select(
                "hostaccess",
                &Pred::Eq("acl_type", "USER".into()).and(Pred::Eq("acl_id", users_id.into())),
            )
            .is_empty();
    if member_of || has_quota || owns_filesys || is_ace {
        Err(MrError::InUse)
    } else {
        Ok(())
    }
}

fn delete_user_row(state: &mut MoiraState, row: RowId) -> MrResult<Vec<Vec<String>>> {
    if state.db.cell("users", row, "status").as_int() != user_status::REGISTERABLE {
        return Err(MrError::InUse);
    }
    let users_id = state.db.cell("users", row, "users_id").as_int();
    check_user_unreferenced(state, users_id)?;
    // Finger and pobox information live in the same record and die with it.
    state.db.delete("users", row)?;
    Ok(Vec::new())
}

fn delete_user(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    delete_user_row(state, row)
}

fn delete_user_by_uid(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let uid = parse_int(&a[0])?;
    let row = state
        .db
        .select_exactly_one("users", &Pred::Eq("uid", uid.into()), MrError::User)?;
    delete_user_row(state, row)
}

fn get_finger_by_login(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    Ok(vec![project(state, "users", row, FINGER)])
}

fn update_finger_by_login(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_user(state, &a[0])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "users",
        row,
        &[
            ("fullname", a[1].as_str().into()),
            ("nickname", a[2].as_str().into()),
            ("home_addr", a[3].as_str().into()),
            ("home_phone", a[4].as_str().into()),
            ("office_addr", a[5].as_str().into()),
            ("office_phone", a[6].as_str().into()),
            ("mit_dept", a[7].as_str().into()),
            ("mit_affil", a[8].as_str().into()),
            ("fmodtime", now.into()),
            ("fmodby", who.into()),
            ("fmodwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

/// Shared by the pobox module: the ACE checks there need user row lookup.
pub(crate) fn user_row_and_id(state: &MoiraState, login: &str) -> MrResult<(RowId, i64)> {
    let row = one_user(state, login)?;
    Ok((row, state.db.cell("users", row, "users_id").as_int()))
}

/// Used by `register_user` test and the userreg server: has this uid a
/// registerable record?
pub fn find_registerable_by_name(state: &MoiraState, first: &str, last: &str) -> Option<RowId> {
    state
        .db
        .table("users")
        .select(&Pred::Eq("first", first.into()).and(Pred::Eq("last", last.into())))
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (s, _) = state_with_admin("ops");
        (s, Registry::standard(), Caller::new("ops", "usermaint"))
    }

    #[test]
    fn add_and_get_user() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "Fowler", "Harmon", "C", "1", "xMITIDx", "1990",
            ],
        )
        .unwrap();
        let rows = run(&mut s, &r, &ops, "get_user_by_login", &["babette"]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], "6530");
        assert_eq!(rows[0][6], "1");
        // Finger initialized with the full name.
        let finger = run(&mut s, &r, &ops, "get_finger_by_login", &["babette"]).unwrap();
        assert_eq!(finger[0][1], "Harmon C Fowler");
        // Pobox starts NONE.
        let pobox = run(&mut s, &r, &ops, "get_pobox", &["babette"]).unwrap();
        assert_eq!(pobox[0][1], "NONE");
    }

    #[test]
    fn add_user_unique_sentinels() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "#",
                "UNIQUE_UID",
                "/bin/csh",
                "One",
                "Test",
                "",
                "0",
                "id1",
                "1990",
            ],
        )
        .unwrap();
        let rows = run(&mut s, &r, &ops, "get_user_by_name", &["Test", "One"]).unwrap();
        let login = &rows[0][0];
        let uid = &rows[0][1];
        assert_eq!(login, &format!("#{uid}"));
    }

    #[test]
    fn add_user_validation() {
        let (mut s, r, ops) = setup();
        let base = [
            "babette", "6530", "/bin/csh", "F", "H", "C", "1", "id", "1990",
        ];
        run(&mut s, &r, &ops, "add_user", &base).unwrap();
        // Duplicate login.
        assert_eq!(
            run(&mut s, &r, &ops, "add_user", &base).unwrap_err(),
            MrError::NotUnique
        );
        // Bad class.
        let mut bad = base;
        bad[0] = "other";
        bad[8] = "NOCLASS";
        assert_eq!(
            run(&mut s, &r, &ops, "add_user", &bad).unwrap_err(),
            MrError::BadClass
        );
        // Bad uid.
        let mut bad = base;
        bad[0] = "other";
        bad[1] = "sixty";
        assert_eq!(
            run(&mut s, &r, &ops, "add_user", &bad).unwrap_err(),
            MrError::Integer
        );
        // Over-long login.
        let mut bad = base;
        bad[0] = "waytoolongloginname";
        assert_eq!(
            run(&mut s, &r, &ops, "add_user", &bad).unwrap_err(),
            MrError::ArgTooLong
        );
        // Bad characters.
        let mut bad = base;
        bad[0] = "a:b";
        assert_eq!(
            run(&mut s, &r, &ops, "add_user", &bad).unwrap_err(),
            MrError::BadChar
        );
    }

    #[test]
    fn wildcard_lookup_and_no_match() {
        let (mut s, r, ops) = setup();
        for (l, u) in [("alpha", "7001"), ("altair", "7002"), ("beta", "7003")] {
            run(
                &mut s,
                &r,
                &ops,
                "add_user",
                &[l, u, "/bin/sh", "L", "F", "", "1", "x", "G"],
            )
            .unwrap();
        }
        let rows = run(&mut s, &r, &ops, "get_user_by_login", &["al*"]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            run(&mut s, &r, &ops, "get_user_by_login", &["zz*"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn self_access_rules() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "F", "H", "C", "1", "id", "1990",
            ],
        )
        .unwrap();
        let me = Caller::new("babette", "chsh");
        // Self lookup allowed, other's denied.
        assert!(run(&mut s, &r, &me, "get_user_by_login", &["babette"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &me, "get_user_by_login", &["ops"]).unwrap_err(),
            MrError::Perm
        );
        // Self by uid allowed, other's denied.
        assert!(run(&mut s, &r, &me, "get_user_by_uid", &["6530"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &me, "get_user_by_uid", &["6001"]).unwrap_err(),
            MrError::Perm
        );
        // Shell change on self allowed.
        run(
            &mut s,
            &r,
            &me,
            "update_user_shell",
            &["babette", "/bin/sh"],
        )
        .unwrap();
        let rows = run(&mut s, &r, &ops, "get_user_by_login", &["babette"]).unwrap();
        assert_eq!(rows[0][2], "/bin/sh");
        // Shell change on someone else denied.
        assert_eq!(
            run(&mut s, &r, &me, "update_user_shell", &["ops", "/bin/sh"]).unwrap_err(),
            MrError::Perm
        );
    }

    #[test]
    fn update_user_renames_safely() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["aaa", "7100", "/bin/csh", "L", "F", "", "1", "x", "G"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["bbb", "7101", "/bin/csh", "L", "F", "", "1", "x", "G"],
        )
        .unwrap();
        // Rename collision.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "update_user",
                &["aaa", "bbb", "7100", "/bin/csh", "L", "F", "", "1", "x", "G",]
            )
            .unwrap_err(),
            MrError::NotUnique
        );
        // Self-rename (same name) fine.
        run(
            &mut s,
            &r,
            &ops,
            "update_user",
            &[
                "aaa",
                "aaa",
                "7100",
                "/bin/tcsh",
                "L",
                "F",
                "",
                "1",
                "x",
                "G",
            ],
        )
        .unwrap();
        // Real rename fine; old name gone.
        run(
            &mut s,
            &r,
            &ops,
            "update_user",
            &[
                "aaa",
                "ccc",
                "7100",
                "/bin/tcsh",
                "L",
                "F",
                "",
                "1",
                "x",
                "G",
            ],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_user_by_login", &["aaa"]).unwrap_err(),
            MrError::NoMatch
        );
        assert!(run(&mut s, &r, &ops, "get_user_by_login", &["ccc"]).is_ok());
    }

    #[test]
    fn delete_user_constraints() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["victim", "7200", "/bin/csh", "L", "F", "", "1", "x", "G"],
        )
        .unwrap();
        // Active user cannot be deleted.
        assert_eq!(
            run(&mut s, &r, &ops, "delete_user", &["victim"]).unwrap_err(),
            MrError::InUse
        );
        run(&mut s, &r, &ops, "update_user_status", &["victim", "0"]).unwrap();
        run(&mut s, &r, &ops, "delete_user", &["victim"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_user_by_login", &["victim"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn delete_user_blocked_by_membership() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["member", "7300", "/bin/csh", "L", "F", "", "0", "x", "G"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "somelist", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", "d",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["somelist", "USER", "member"],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "delete_user", &["member"]).unwrap_err(),
            MrError::InUse
        );
        run(
            &mut s,
            &r,
            &ops,
            "delete_member_from_list",
            &["somelist", "USER", "member"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "delete_user", &["member"]).unwrap();
    }

    #[test]
    fn finger_update() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "F", "H", "C", "1", "id", "1990",
            ],
        )
        .unwrap();
        let me = Caller::new("babette", "chfn");
        run(
            &mut s,
            &r,
            &me,
            "update_finger_by_login",
            &[
                "babette",
                "Harmon C Fowler",
                "Harm",
                "12 Oak St",
                "555-1212",
                "E40-342",
                "x3-1234",
                "EECS",
                "undergraduate",
            ],
        )
        .unwrap();
        let f = run(&mut s, &r, &ops, "get_finger_by_login", &["babette"]).unwrap();
        assert_eq!(f[0][2], "Harm");
        assert_eq!(f[0][8], "undergraduate");
    }

    #[test]
    fn register_user_full_flow() {
        let (mut s, r, ops) = setup();
        // Infrastructure: a POP server and an NFS partition.
        let pop_mach = add_test_machine(&mut s, "E40-PO");
        let nfs_mach = add_test_machine(&mut s, "CHARON");
        s.db.append(
            "serverhosts",
            vec![
                "POP".into(),
                pop_mach.into(),
                true.into(),
                false.into(),
                false.into(),
                false.into(),
                0.into(),
                "".into(),
                0.into(),
                0.into(),
                0.into(),
                500.into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        s.db.append(
            "nfsphys",
            vec![
                1.into(),
                nfs_mach.into(),
                "/u1/lockers".into(),
                "ra0c".into(),
                1.into(), // student bit
                0.into(),
                100_000.into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        // A registerable student record (status 0, no login).
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "#",
                "8000",
                "/bin/csh",
                "Zimmermann",
                "Martin",
                "",
                "0",
                "hashedid",
                "1990",
            ],
        )
        .unwrap();
        run(&mut s, &r, &ops, "register_user", &["8000", "kazimi", "1"]).unwrap();

        let rows = run(&mut s, &r, &ops, "get_user_by_login", &["kazimi"]).unwrap();
        assert_eq!(rows[0][6], "2", "half-registered");
        // Pobox assigned on the POP server.
        let pobox = run(&mut s, &r, &ops, "get_pobox", &["kazimi"]).unwrap();
        assert_eq!(pobox[0][1], "POP");
        assert_eq!(pobox[0][2], "E40-PO");
        // Group list exists with a GID and the user as member.
        let li = run(&mut s, &r, &ops, "get_list_info", &["kazimi"]).unwrap();
        assert_eq!(li[0][5], "1", "group flag");
        // Filesystem + quota created, allocation charged.
        let fs = run(&mut s, &r, &ops, "get_filesys_by_label", &["kazimi"]).unwrap();
        assert_eq!(fs[0][1], "NFS");
        assert_eq!(fs[0][3], "/u1/lockers/kazimi");
        assert_eq!(fs[0][4], "/mit/kazimi");
        let phys = run(&mut s, &r, &ops, "get_nfsphys", &["CHARON", "*"]).unwrap();
        assert_eq!(phys[0][4], "300", "def_quota allocated");
        // Pop server load counted.
        let sh = run(&mut s, &r, &ops, "get_server_host_info", &["POP", "*"]).unwrap();
        assert_eq!(sh[0][10], "1");
        // Registering the same uid again fails (status moved on).
        assert_eq!(
            run(&mut s, &r, &ops, "register_user", &["8000", "kazimi2", "1"]).unwrap_err(),
            MrError::NotRegisterable
        );
    }

    #[test]
    fn register_user_login_collision() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["taken", "8100", "/bin/csh", "L", "F", "", "1", "x", "G"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["#", "8101", "/bin/csh", "L2", "F2", "", "0", "x", "1990"],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "register_user", &["8101", "taken", "1"]).unwrap_err(),
            MrError::InUse
        );
    }

    #[test]
    fn get_by_class_and_mitid() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "grad1", "8200", "/bin/csh", "L", "F", "", "1", "cryptid1", "G",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "ug1", "8201", "/bin/csh", "L", "F", "", "1", "cryptid2", "1990",
            ],
        )
        .unwrap();
        let grads = run(&mut s, &r, &ops, "get_user_by_class", &["G"]).unwrap();
        assert!(grads.iter().any(|r| r[0] == "grad1"));
        assert!(!grads.iter().any(|r| r[0] == "ug1"));
        let byid = run(&mut s, &r, &ops, "get_user_by_mitid", &["cryptid2"]).unwrap();
        assert_eq!(byid[0][0], "ug1");
    }

    #[test]
    fn active_logins_subset() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["active1", "8300", "/bin/csh", "L", "F", "", "1", "x", "G"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["inact1", "8301", "/bin/csh", "L", "F", "", "0", "x", "G"],
        )
        .unwrap();
        let all = run(&mut s, &r, &ops, "get_all_logins", &[]).unwrap();
        let active = run(&mut s, &r, &ops, "get_all_active_logins", &[]).unwrap();
        assert!(all.len() > active.len());
        assert!(active.iter().any(|row| row[0] == "active1"));
        assert!(!active.iter().any(|row| row[0] == "inact1"));
    }
}
