//! The predefined query catalog of §7, one module per sub-section.

pub mod filesys;
pub mod helpers;
pub mod lists;
pub mod machines;
pub mod misc;
pub mod pobox;
pub mod servers;
pub mod special;
pub mod stats;
pub mod testutil;
pub mod users;
pub mod zephyr;

use crate::registry::Registry;

/// Registers the complete standard catalog.
pub fn register_all(registry: &mut Registry) {
    users::register(registry);
    pobox::register(registry);
    machines::register(registry);
    lists::register(registry);
    servers::register(registry);
    filesys::register(registry);
    zephyr::register(registry);
    misc::register(registry);
    special::register(registry);
    stats::register(registry);
}
