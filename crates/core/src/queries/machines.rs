//! Machine, cluster, and service-cluster queries (§7.0.2).

use moira_common::errors::{MrError, MrResult};
use moira_common::strutil::canonicalize_hostname;
use moira_db::Pred;

use crate::ids::alloc_id;
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

const MACHINE_FIELDS: &[&str] = &["name", "type", "modtime", "modby", "modwith"];
const CLUSTER_FIELDS: &[&str] = &["name", "desc", "location", "modtime", "modby", "modwith"];

/// Registers the machine and cluster queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_machine",
            shortname: "gmac",
            kind: Retrieve,
            access: Public,
            args: &["name"],
            returns: MACHINE_FIELDS,
            handler: Handler::Read(get_machine),
        },
        QueryHandle {
            name: "add_machine",
            shortname: "amac",
            kind: Append,
            access: QueryAcl,
            args: &["name", "type"],
            returns: &[],
            handler: Handler::Write(add_machine),
        },
        QueryHandle {
            name: "update_machine",
            shortname: "umac",
            kind: Update,
            access: QueryAcl,
            args: &["name", "newname", "type"],
            returns: &[],
            handler: Handler::Write(update_machine),
        },
        QueryHandle {
            name: "delete_machine",
            shortname: "dmac",
            kind: Delete,
            access: QueryAcl,
            args: &["name"],
            returns: &[],
            handler: Handler::Write(delete_machine),
        },
        QueryHandle {
            name: "get_cluster",
            shortname: "gclu",
            kind: Retrieve,
            access: Public,
            args: &["name"],
            returns: CLUSTER_FIELDS,
            handler: Handler::Read(get_cluster),
        },
        QueryHandle {
            name: "add_cluster",
            shortname: "aclu",
            kind: Append,
            access: QueryAcl,
            args: &["name", "description", "location"],
            returns: &[],
            handler: Handler::Write(add_cluster),
        },
        QueryHandle {
            name: "update_cluster",
            shortname: "uclu",
            kind: Update,
            access: QueryAcl,
            args: &["name", "newname", "description", "location"],
            returns: &[],
            handler: Handler::Write(update_cluster),
        },
        QueryHandle {
            name: "delete_cluster",
            shortname: "dclu",
            kind: Delete,
            access: QueryAcl,
            args: &["name"],
            returns: &[],
            handler: Handler::Write(delete_cluster),
        },
        QueryHandle {
            name: "get_machine_to_cluster_map",
            shortname: "gmcm",
            kind: Retrieve,
            access: Public,
            args: &["machine", "cluster"],
            returns: &["machine", "cluster"],
            handler: Handler::Read(get_machine_to_cluster_map),
        },
        QueryHandle {
            name: "add_machine_to_cluster",
            shortname: "amtc",
            kind: Append,
            access: QueryAcl,
            args: &["machine", "cluster"],
            returns: &[],
            handler: Handler::Write(add_machine_to_cluster),
        },
        QueryHandle {
            name: "delete_machine_from_cluster",
            shortname: "dmfc",
            kind: Delete,
            access: QueryAcl,
            args: &["machine", "cluster"],
            returns: &[],
            handler: Handler::Write(delete_machine_from_cluster),
        },
        QueryHandle {
            name: "get_cluster_data",
            shortname: "gcld",
            kind: Retrieve,
            access: Public,
            args: &["cluster", "label"],
            returns: &["cluster", "label", "data"],
            handler: Handler::Read(get_cluster_data),
        },
        QueryHandle {
            name: "add_cluster_data",
            shortname: "acld",
            kind: Append,
            access: QueryAcl,
            args: &["cluster", "label", "data"],
            returns: &[],
            handler: Handler::Write(add_cluster_data),
        },
        QueryHandle {
            name: "delete_cluster_data",
            shortname: "dcld",
            kind: Delete,
            access: QueryAcl,
            args: &["cluster", "label", "data"],
            returns: &[],
            handler: Handler::Write(delete_cluster_data),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

fn get_machine(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state
        .db
        .select("machine", &Pred::name_match_ci("name", a[0].trim()));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| project(state, "machine", id, MACHINE_FIELDS))
        .collect())
}

fn add_machine(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let name = canonicalize_hostname(&a[0]);
    check_chars(&name)?;
    no_wildcards(&name)?;
    if name.is_empty() {
        return Err(MrError::BadChar);
    }
    check_type_alias(state, "mach_type", &a[1], MrError::Type)?;
    if state
        .db
        .table("machine")
        .select_one(&Pred::Eq("name", name.clone().into()))
        .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let mach_id = alloc_id(state, "mach_id")?;
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "machine",
        vec![
            name.into(),
            mach_id.into(),
            a[1].to_ascii_uppercase().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_machine(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_machine(state, &a[0])?;
    let newname = canonicalize_hostname(&a[1]);
    check_chars(&newname)?;
    no_wildcards(&newname)?;
    check_type_alias(state, "mach_type", &a[2], MrError::Type)?;
    let current = state.db.cell("machine", row, "name").as_str().to_owned();
    if newname != current
        && state
            .db
            .table("machine")
            .select_one(&Pred::Eq("name", newname.clone().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "machine",
        row,
        &[
            ("name", newname.into()),
            ("type", a[2].to_ascii_uppercase().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_machine(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_machine(state, &a[0])?;
    let mach_id = state.db.cell("machine", row, "mach_id").as_int();
    // "A machine that is in use (post office, file system, printer spooling
    // host, server_host_access, or DCM service update) cannot be deleted."
    let referenced = !state
        .db
        .select(
            "users",
            &Pred::Eq("pop_id", mach_id.into()).and(Pred::Eq("potype", "POP".into())),
        )
        .is_empty()
        || !state
            .db
            .select("filesys", &Pred::Eq("mach_id", mach_id.into()))
            .is_empty()
        || !state
            .db
            .select("printcap", &Pred::Eq("mach_id", mach_id.into()))
            .is_empty()
        || !state
            .db
            .select("hostaccess", &Pred::Eq("mach_id", mach_id.into()))
            .is_empty()
        || !state
            .db
            .select("serverhosts", &Pred::Eq("mach_id", mach_id.into()))
            .is_empty()
        || !state
            .db
            .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
            .is_empty();
    if referenced {
        return Err(MrError::InUse);
    }
    state
        .db
        .delete_where("mcmap", &Pred::Eq("mach_id", mach_id.into()));
    state.db.delete("machine", row)?;
    Ok(Vec::new())
}

fn get_cluster(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("cluster", &Pred::name_match("name", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids
        .into_iter()
        .map(|id| project(state, "cluster", id, CLUSTER_FIELDS))
        .collect())
}

fn add_cluster(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    no_wildcards(&a[0])?;
    if a[0].is_empty() {
        return Err(MrError::BadChar);
    }
    if state
        .db
        .table("cluster")
        .select_one(&Pred::Eq("name", a[0].as_str().into()))
        .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let clu_id = alloc_id(state, "clu_id")?;
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "cluster",
        vec![
            a[0].as_str().into(),
            clu_id.into(),
            a[1].as_str().into(),
            a[2].as_str().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_cluster(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_cluster(state, &a[0])?;
    check_chars(&a[1])?;
    no_wildcards(&a[1])?;
    let current = state.db.cell("cluster", row, "name").as_str().to_owned();
    if a[1] != current
        && state
            .db
            .table("cluster")
            .select_one(&Pred::Eq("name", a[1].as_str().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "cluster",
        row,
        &[
            ("name", a[1].as_str().into()),
            ("desc", a[2].as_str().into()),
            ("location", a[3].as_str().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_cluster(state: &mut MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_cluster(state, &a[0])?;
    let clu_id = state.db.cell("cluster", row, "clu_id").as_int();
    if !state
        .db
        .select("mcmap", &Pred::Eq("clu_id", clu_id.into()))
        .is_empty()
    {
        return Err(MrError::InUse);
    }
    // "Any service cluster information assigned to the cluster will be
    // deleted."
    state
        .db
        .delete_where("svc", &Pred::Eq("clu_id", clu_id.into()));
    state.db.delete("cluster", row)?;
    Ok(Vec::new())
}

fn get_machine_to_cluster_map(
    state: &MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    // Machine-major: the name pattern resolves through the machine index
    // (point or prefix range), and each machine's memberships come from the
    // indexed mcmap bucket — no pass over the full map.
    let mut out = Vec::new();
    for mrow in state
        .db
        .select("machine", &Pred::name_match_ci("name", &a[0]))
    {
        let mach_id = state.db.cell("machine", mrow, "mach_id").as_int();
        let mname = state.db.cell("machine", mrow, "name").render();
        for row in state
            .db
            .select("mcmap", &Pred::Eq("mach_id", mach_id.into()))
        {
            let clu_id = state.db.cell("mcmap", row, "clu_id").as_int();
            let cname = state
                .db
                .table("cluster")
                .select_one(&Pred::Eq("clu_id", clu_id.into()))
                .map(|r| state.db.cell("cluster", r, "name").render())
                .unwrap_or_default();
            if moira_common::wildcard::matches(&a[1], &cname) {
                out.push(vec![mname.clone(), cname]);
            }
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn mach_and_cluster_ids(state: &MoiraState, machine: &str, cluster: &str) -> MrResult<(i64, i64)> {
    let mrow = one_machine(state, machine)?;
    let crow = one_cluster(state, cluster)?;
    Ok((
        state.db.cell("machine", mrow, "mach_id").as_int(),
        state.db.cell("cluster", crow, "clu_id").as_int(),
    ))
}

fn touch_machine(state: &mut MoiraState, c: &Caller, mach_id: i64) -> MrResult<()> {
    let row = state.db.select_exactly_one(
        "machine",
        &Pred::Eq("mach_id", mach_id.into()),
        MrError::Machine,
    )?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "machine",
        row,
        &[
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(())
}

fn add_machine_to_cluster(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let (mach_id, clu_id) = mach_and_cluster_ids(state, &a[0], &a[1])?;
    let dup = !state
        .db
        .select(
            "mcmap",
            &Pred::Eq("mach_id", mach_id.into()).and(Pred::Eq("clu_id", clu_id.into())),
        )
        .is_empty();
    if dup {
        return Err(MrError::Exists);
    }
    state
        .db
        .append("mcmap", vec![mach_id.into(), clu_id.into()])?;
    touch_machine(state, c, mach_id)?;
    Ok(Vec::new())
}

fn delete_machine_from_cluster(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let (mach_id, clu_id) = mach_and_cluster_ids(state, &a[0], &a[1])?;
    let gone = state.db.delete_where(
        "mcmap",
        &Pred::Eq("mach_id", mach_id.into()).and(Pred::Eq("clu_id", clu_id.into())),
    );
    if gone == 0 {
        return Err(MrError::NoMatch);
    }
    touch_machine(state, c, mach_id)?;
    Ok(Vec::new())
}

fn get_cluster_data(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    // Cluster-major: the cluster pattern resolves through the cluster name
    // index, and each cluster's data rows come from the indexed svc bucket.
    let mut out = Vec::new();
    for crow in state.db.select("cluster", &Pred::name_match("name", &a[0])) {
        let clu_id = state.db.cell("cluster", crow, "clu_id").as_int();
        let cname = state.db.cell("cluster", crow, "name").render();
        for row in state.db.select("svc", &Pred::Eq("clu_id", clu_id.into())) {
            let label = state.db.cell("svc", row, "serv_label").render();
            if moira_common::wildcard::matches(&a[1], &label) {
                let data = state.db.cell("svc", row, "serv_cluster").render();
                out.push(vec![cname.clone(), label, data]);
            }
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn add_cluster_data(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_cluster(state, &a[0])?;
    let clu_id = state.db.cell("cluster", row, "clu_id").as_int();
    check_type_alias(state, "slabel", &a[1], MrError::Type)?;
    state.db.append(
        "svc",
        vec![clu_id.into(), a[1].as_str().into(), a[2].as_str().into()],
    )?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "cluster",
        row,
        &[
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_cluster_data(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_cluster(state, &a[0])?;
    let clu_id = state.db.cell("cluster", row, "clu_id").as_int();
    let pred = Pred::Eq("clu_id", clu_id.into())
        .and(Pred::Eq("serv_label", a[1].as_str().into()))
        .and(Pred::Eq("serv_cluster", a[2].as_str().into()));
    let matches = state.db.select("svc", &pred);
    if matches.len() != 1 {
        return Err(MrError::NotUnique);
    }
    state.db.delete("svc", matches[0])?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "cluster",
        row,
        &[
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

/// Resolves the union of cluster data for a machine, following the paper's
/// pseudo-cluster rule: a machine in several clusters sees the union of
/// their data. Used by the Hesiod cluster.db generator.
pub fn cluster_data_for_machine(state: &MoiraState, mach_id: i64) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for mrow in state
        .db
        .select("mcmap", &Pred::Eq("mach_id", mach_id.into()))
    {
        let clu_id = state.db.cell("mcmap", mrow, "clu_id").as_int();
        for srow in state.db.select("svc", &Pred::Eq("clu_id", clu_id.into())) {
            out.push((
                state.db.cell("svc", srow, "serv_label").render(),
                state.db.cell("svc", srow, "serv_cluster").render(),
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::state_with_admin;
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (s, _) = state_with_admin("ops");
        (s, Registry::standard(), Caller::new("ops", "machmaint"))
    }

    #[test]
    fn machine_crud_uppercases() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_machine", &["kiwi.mit.edu", "vax"]).unwrap();
        let m = run(&mut s, &r, &ops, "get_machine", &["KIWI.*"]).unwrap();
        assert_eq!(m[0][0], "KIWI.MIT.EDU");
        assert_eq!(m[0][1], "VAX");
        // Case-insensitive exact lookup too.
        assert!(run(&mut s, &r, &ops, "get_machine", &["kiwi.mit.edu"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &ops, "add_machine", &["KIWI.MIT.EDU", "RT"]).unwrap_err(),
            MrError::NotUnique
        );
        assert_eq!(
            run(&mut s, &r, &ops, "add_machine", &["X", "TOASTER"]).unwrap_err(),
            MrError::Type
        );
        run(
            &mut s,
            &r,
            &ops,
            "update_machine",
            &["KIWI.MIT.EDU", "suomi.mit.edu", "RT"],
        )
        .unwrap();
        let m = run(&mut s, &r, &ops, "get_machine", &["SUOMI.MIT.EDU"]).unwrap();
        assert_eq!(m[0][1], "RT");
        run(&mut s, &r, &ops, "delete_machine", &["SUOMI.MIT.EDU"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_machine", &["SUOMI.MIT.EDU"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn machine_in_use_cannot_be_deleted() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_machine", &["PRINTHOST", "VAX"]).unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_printcap",
            &[
                "lw1",
                "PRINTHOST",
                "/usr/spool/printer/lw1",
                "lw1",
                "test printer",
            ],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "delete_machine", &["PRINTHOST"]).unwrap_err(),
            MrError::InUse
        );
        run(&mut s, &r, &ops, "delete_printcap", &["lw1"]).unwrap();
        run(&mut s, &r, &ops, "delete_machine", &["PRINTHOST"]).unwrap();
    }

    #[test]
    fn cluster_crud_and_membership() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_machine", &["TOTO", "RT"]).unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_cluster",
            &["bldge40-rt", "E40 RTs", "E40"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_machine_to_cluster",
            &["TOTO", "bldge40-rt"],
        )
        .unwrap();
        let map = run(&mut s, &r, &ops, "get_machine_to_cluster_map", &["*", "*"]).unwrap();
        assert_eq!(map, vec![vec!["TOTO".to_owned(), "bldge40-rt".to_owned()]]);
        // Duplicate membership rejected.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_machine_to_cluster",
                &["TOTO", "bldge40-rt"]
            )
            .unwrap_err(),
            MrError::Exists
        );
        // Cluster with members cannot be deleted.
        assert_eq!(
            run(&mut s, &r, &ops, "delete_cluster", &["bldge40-rt"]).unwrap_err(),
            MrError::InUse
        );
        run(
            &mut s,
            &r,
            &ops,
            "delete_machine_from_cluster",
            &["TOTO", "bldge40-rt"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "delete_machine_from_cluster",
                &["TOTO", "bldge40-rt"]
            )
            .unwrap_err(),
            MrError::NoMatch
        );
        run(&mut s, &r, &ops, "delete_cluster", &["bldge40-rt"]).unwrap();
    }

    #[test]
    fn cluster_names_case_sensitive() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_cluster", &["Alpha", "", ""]).unwrap();
        run(&mut s, &r, &ops, "add_cluster", &["alpha", "", ""]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_cluster", &["Alpha"])
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn cluster_data_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_cluster",
            &["bldgw20-vs", "W20 VSs", "W20"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_cluster_data",
            &["bldgw20-vs", "zephyr", "neskaya.mit.edu"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_cluster_data",
            &["bldgw20-vs", "lpr", "w20"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_cluster_data",
                &["bldgw20-vs", "bogus", "x"]
            )
            .unwrap_err(),
            MrError::Type
        );
        let all = run(&mut s, &r, &ops, "get_cluster_data", &["bldgw20-vs", "*"]).unwrap();
        assert_eq!(all.len(), 2);
        let one = run(&mut s, &r, &ops, "get_cluster_data", &["*", "lpr"]).unwrap();
        assert_eq!(one[0][2], "w20");
        run(
            &mut s,
            &r,
            &ops,
            "delete_cluster_data",
            &["bldgw20-vs", "lpr", "w20"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "delete_cluster_data",
                &["bldgw20-vs", "lpr", "w20"]
            )
            .unwrap_err(),
            MrError::NotUnique
        );
    }

    #[test]
    fn union_for_multi_cluster_machines() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_machine", &["SCARECROW", "RT"]).unwrap();
        run(&mut s, &r, &ops, "add_cluster", &["c1", "", ""]).unwrap();
        run(&mut s, &r, &ops, "add_cluster", &["c2", "", ""]).unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_cluster_data",
            &["c1", "zephyr", "z1"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "add_cluster_data", &["c2", "lpr", "p2"]).unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_machine_to_cluster",
            &["SCARECROW", "c1"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_machine_to_cluster",
            &["SCARECROW", "c2"],
        )
        .unwrap();
        let mrow = one_machine(&s, "SCARECROW").unwrap();
        let mach_id = s.db.cell("machine", mrow, "mach_id").as_int();
        let data = cluster_data_for_machine(&s, mach_id);
        assert_eq!(data.len(), 2);
        assert!(data.contains(&("zephyr".to_owned(), "z1".to_owned())));
        assert!(data.contains(&("lpr".to_owned(), "p2".to_owned())));
    }

    #[test]
    fn anyone_may_read_machines() {
        let (mut s, r, ops) = setup();
        run(&mut s, &r, &ops, "add_machine", &["PUBLIC", "VAX"]).unwrap();
        let anon = Caller::anonymous("probe");
        assert!(run(&mut s, &r, &anon, "get_machine", &["PUBLIC"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &anon, "add_machine", &["EVIL", "VAX"]).unwrap_err(),
            MrError::Perm
        );
    }
}
