//! Post office box queries (§7.0.1, pobox subset).

use moira_common::errors::{MrError, MrResult};
use moira_db::Pred;

use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;
use super::users::user_row_and_id;

/// Registers the pobox queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_pobox",
            shortname: "gpob",
            kind: Retrieve,
            access: QueryAclOrSelf(0),
            args: &["login"],
            returns: &["login", "type", "box", "modtime", "modby", "modwith"],
            handler: Handler::Read(get_pobox),
        },
        QueryHandle {
            name: "get_all_poboxes",
            shortname: "gapo",
            kind: Retrieve,
            access: QueryAcl,
            args: &[],
            returns: &["login", "type", "box"],
            handler: Handler::Read(get_all_poboxes),
        },
        QueryHandle {
            name: "get_poboxes_pop",
            shortname: "gpop",
            kind: Retrieve,
            access: QueryAcl,
            args: &[],
            returns: &["login", "type", "machine"],
            handler: Handler::Read(get_poboxes_pop),
        },
        QueryHandle {
            name: "get_poboxes_smtp",
            shortname: "gpos",
            kind: Retrieve,
            access: QueryAcl,
            args: &[],
            returns: &["login", "type", "box"],
            handler: Handler::Read(get_poboxes_smtp),
        },
        QueryHandle {
            name: "set_pobox",
            shortname: "spob",
            kind: Update,
            access: QueryAclOrSelf(0),
            args: &["login", "type", "box"],
            returns: &[],
            handler: Handler::Write(set_pobox),
        },
        QueryHandle {
            name: "set_pobox_pop",
            shortname: "spop",
            kind: Update,
            access: QueryAclOrSelf(0),
            args: &["login"],
            returns: &[],
            handler: Handler::Write(set_pobox_pop),
        },
        QueryHandle {
            name: "delete_pobox",
            shortname: "dpob",
            kind: Update,
            access: QueryAclOrSelf(0),
            args: &["login"],
            returns: &[],
            handler: Handler::Write(delete_pobox),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

/// Renders the `box` field: POP → machine name, SMTP → stored string,
/// NONE → `NONE`.
fn render_box(state: &MoiraState, row: moira_db::RowId) -> (String, String) {
    let t = state.db.table("users");
    let potype = t.cell(row, "potype").as_str().to_owned();
    let boxval = match potype.as_str() {
        "POP" => machine_name(state, t.cell(row, "pop_id").as_int()),
        "SMTP" => string_of(state, t.cell(row, "box_id").as_int()),
        _ => "NONE".to_owned(),
    };
    (potype, boxval)
}

fn get_pobox(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let (row, _) = user_row_and_id(state, &a[0])?;
    let login = state.db.cell("users", row, "login").render();
    let (potype, boxval) = render_box(state, row);
    let rest = project(state, "users", row, &["pmodtime", "pmodby", "pmodwith"]);
    Ok(vec![vec![
        login,
        potype,
        boxval,
        rest[0].clone(),
        rest[1].clone(),
        rest[2].clone(),
    ]])
}

fn poboxes_where(state: &MoiraState, want: Option<&str>) -> Vec<Vec<String>> {
    state
        .db
        .table("users")
        // Dump of every pobox by type — no index on potype, and the
        // query is an enumeration by design. lint:allow(plan-discipline)
        .iter()
        .filter(|(_, r)| {
            let t = r[state.db.table("users").col("potype")].as_str();
            match want {
                Some(w) => t == w,
                None => t != "NONE",
            }
        })
        .map(|(id, _)| {
            let login = state.db.cell("users", id, "login").render();
            let (potype, boxval) = render_box(state, id);
            vec![login, potype, boxval]
        })
        .collect()
}

fn get_all_poboxes(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Ok(poboxes_where(state, None))
}

fn get_poboxes_pop(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Ok(poboxes_where(state, Some("POP")))
}

fn get_poboxes_smtp(state: &MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
    Ok(poboxes_where(state, Some("SMTP")))
}

fn stamp_pobox(
    state: &mut MoiraState,
    c: &Caller,
    row: moira_db::RowId,
    changes: &mut Vec<(&'static str, moira_db::Value)>,
) -> MrResult<()> {
    let (now, who, with) = mod_fields(state, c);
    changes.push(("pmodtime", now.into()));
    changes.push(("pmodby", who.into()));
    changes.push(("pmodwith", with.into()));
    state.db.update("users", row, changes)?;
    Ok(())
}

fn set_pobox(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let (row, _) = user_row_and_id(state, &a[0])?;
    let potype = a[1].to_ascii_uppercase();
    check_type_alias(state, "pobox", &potype, MrError::Type)?;
    let mut changes: Vec<(&'static str, moira_db::Value)> = vec![("potype", potype.clone().into())];
    match potype.as_str() {
        "POP" => {
            let mach_row = state
                .db
                .table("machine")
                .select_one(&Pred::EqCi("name", a[2].clone()))
                .ok_or(MrError::Machine)?;
            let mach_id = state.db.cell("machine", mach_row, "mach_id").as_int();
            let mach_name = state.db.cell("machine", mach_row, "name").render();
            changes.push(("pop_id", mach_id.into()));
            changes.push(("saved_pop", mach_name.into()));
        }
        "SMTP" => {
            let sid = intern_string(state, &a[2])?;
            changes.push(("box_id", sid.into()));
        }
        "NONE" => {}
        _ => return Err(MrError::Type),
    }
    stamp_pobox(state, c, row, &mut changes)?;
    Ok(Vec::new())
}

fn set_pobox_pop(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let (row, _) = user_row_and_id(state, &a[0])?;
    let t = state.db.table("users");
    if t.cell(row, "potype").as_str() == "POP" {
        return Ok(Vec::new());
    }
    let saved = t.cell(row, "saved_pop").as_str().to_owned();
    if saved.is_empty() {
        // "If there was no previous post office assignment, the query will
        // fail with MR_MACHINE since it will be unable to choose a post
        // office machine."
        return Err(MrError::Machine);
    }
    let mach_row = state
        .db
        .table("machine")
        .select_one(&Pred::EqCi("name", saved))
        .ok_or(MrError::Machine)?;
    let mach_id = state.db.cell("machine", mach_row, "mach_id").as_int();
    let mut changes: Vec<(&'static str, moira_db::Value)> =
        vec![("potype", "POP".into()), ("pop_id", mach_id.into())];
    stamp_pobox(state, c, row, &mut changes)?;
    Ok(Vec::new())
}

fn delete_pobox(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let (row, _) = user_row_and_id(state, &a[0])?;
    let mut changes: Vec<(&'static str, moira_db::Value)> = vec![("potype", "NONE".into())];
    stamp_pobox(state, c, row, &mut changes)?;
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        add_test_machine(&mut s, "ATHENA-PO-1.MIT.EDU");
        add_test_machine(&mut s, "ATHENA-PO-2.MIT.EDU");
        let r = Registry::standard();
        let ops = Caller::new("ops", "chpobox");
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "F", "H", "C", "1", "id", "1990",
            ],
        )
        .unwrap();
        (s, r, ops)
    }

    #[test]
    fn set_pop_pobox() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "set_pobox",
            &["babette", "POP", "athena-po-2.mit.edu"],
        )
        .unwrap();
        let p = run(&mut s, &r, &ops, "get_pobox", &["babette"]).unwrap();
        assert_eq!(p[0][1], "POP");
        assert_eq!(p[0][2], "ATHENA-PO-2.MIT.EDU");
    }

    #[test]
    fn pop_requires_known_machine() {
        let (mut s, r, ops) = setup();
        // The paper's own example typo: e40-p0 is not a machine.
        assert_eq!(
            run(&mut s, &r, &ops, "set_pobox", &["babette", "POP", "e40-p0"]).unwrap_err(),
            MrError::Machine
        );
    }

    #[test]
    fn smtp_pobox_stores_string() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "set_pobox",
            &["babette", "SMTP", "babette@media-lab.mit.edu"],
        )
        .unwrap();
        let p = run(&mut s, &r, &ops, "get_pobox", &["babette"]).unwrap();
        assert_eq!(p[0][1], "SMTP");
        assert_eq!(p[0][2], "babette@media-lab.mit.edu");
    }

    #[test]
    fn invalid_type_rejected() {
        let (mut s, r, ops) = setup();
        assert_eq!(
            run(&mut s, &r, &ops, "set_pobox", &["babette", "UUCP", "x"]).unwrap_err(),
            MrError::Type
        );
    }

    #[test]
    fn delete_and_restore_pop() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "set_pobox",
            &["babette", "POP", "ATHENA-PO-1.MIT.EDU"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "delete_pobox", &["babette"]).unwrap();
        let p = run(&mut s, &r, &ops, "get_pobox", &["babette"]).unwrap();
        assert_eq!(p[0][1], "NONE");
        // set_pobox_pop restores the remembered machine.
        run(&mut s, &r, &ops, "set_pobox_pop", &["babette"]).unwrap();
        let p = run(&mut s, &r, &ops, "get_pobox", &["babette"]).unwrap();
        assert_eq!(p[0][2], "ATHENA-PO-1.MIT.EDU");
    }

    #[test]
    fn set_pobox_pop_without_history_fails() {
        let (mut s, r, ops) = setup();
        assert_eq!(
            run(&mut s, &r, &ops, "set_pobox_pop", &["babette"]).unwrap_err(),
            MrError::Machine
        );
    }

    #[test]
    fn pobox_listings() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &[
                "smtpu", "6531", "/bin/csh", "F", "H", "C", "1", "id2", "1990",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "set_pobox",
            &["babette", "POP", "ATHENA-PO-1.MIT.EDU"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "set_pobox", &["smtpu", "SMTP", "x@y.edu"]).unwrap();
        let all = run(&mut s, &r, &ops, "get_all_poboxes", &[]).unwrap();
        assert_eq!(all.len(), 2);
        let pops = run(&mut s, &r, &ops, "get_poboxes_pop", &[]).unwrap();
        assert_eq!(pops.len(), 1);
        assert_eq!(pops[0][0], "babette");
        let smtps = run(&mut s, &r, &ops, "get_poboxes_smtp", &[]).unwrap();
        assert_eq!(smtps.len(), 1);
        assert_eq!(smtps[0][2], "x@y.edu");
    }

    #[test]
    fn owner_may_manage_own_pobox() {
        let (mut s, r, _) = setup();
        let me = Caller::new("babette", "chpobox");
        run(
            &mut s,
            &r,
            &me,
            "set_pobox",
            &["babette", "POP", "ATHENA-PO-1.MIT.EDU"],
        )
        .unwrap();
        assert!(run(&mut s, &r, &me, "get_pobox", &["babette"]).is_ok());
        // But not someone else's.
        assert_eq!(
            run(&mut s, &r, &me, "set_pobox", &["ops", "NONE", ""]).unwrap_err(),
            MrError::Perm
        );
    }
}
