//! Shared helpers for query handlers: argument parsing, type-alias
//! validation, "exactly one" lookups, and tuple projection.

use moira_common::errors::{MrError, MrResult};
use moira_common::strutil;
use moira_common::wildcard;
use moira_db::{Pred, RowId, Value};

use crate::state::{Caller, MoiraState};

/// Parses an integer argument (`MR_INTEGER` on failure).
pub fn parse_int(s: &str) -> MrResult<i64> {
    s.trim().parse::<i64>().map_err(|_| MrError::Integer)
}

/// Parses a boolean argument: "0 is false, non-zero is true" (§7).
pub fn parse_bool(s: &str) -> MrResult<bool> {
    Ok(parse_int(s)? != 0)
}

/// Parses a TRUE / FALSE / DONTCARE qualifier (`MR_TYPE` otherwise).
pub fn parse_tristate(s: &str) -> MrResult<Option<bool>> {
    match s.trim().to_ascii_uppercase().as_str() {
        "TRUE" => Ok(Some(true)),
        "FALSE" => Ok(Some(false)),
        "DONTCARE" => Ok(None),
        _ => Err(MrError::Type),
    }
}

/// Rejects names containing forbidden characters (`MR_BAD_CHAR`).
pub fn check_chars(s: &str) -> MrResult<()> {
    if strutil::has_bad_chars(s) {
        Err(MrError::BadChar)
    } else {
        Ok(())
    }
}

/// Rejects wildcard metacharacters in an exact-name argument.
pub fn no_wildcards(s: &str) -> MrResult<()> {
    if wildcard::has_wildcards(s) {
        Err(MrError::Wildcard)
    } else {
        Ok(())
    }
}

/// Validates a value against the alias type registry: there must be an
/// `(type_name, TYPE, value)` row (§6 ALIAS). Returns `err` otherwise.
pub fn check_type_alias(
    state: &MoiraState,
    type_name: &str,
    value: &str,
    err: MrError,
) -> MrResult<()> {
    let found = !state
        .db
        .table("alias")
        .select(
            &Pred::Eq("name", type_name.into())
                .and(Pred::Eq("type", "TYPE".into()))
                .and(Pred::EqCi("trans", value.to_owned())),
        )
        .is_empty();
    if found {
        Ok(())
    } else {
        Err(err)
    }
}

/// `(now, modby, modwith)` for stamping records.
pub fn mod_fields(state: &MoiraState, caller: &Caller) -> (i64, String, String) {
    (
        state.now(),
        caller.who().to_owned(),
        caller.client_name.clone(),
    )
}

/// Finds exactly one row by a possibly-wildcarded name; `not_found` when
/// nothing matches, `MR_NOT_UNIQUE` when several do (§7's pervasive "must
/// match exactly one" rule).
pub fn exactly_one(
    state: &MoiraState,
    table: &str,
    col: &'static str,
    name: &str,
    not_found: MrError,
) -> MrResult<RowId> {
    state
        .db
        .select_exactly_one(table, &Pred::name_match(col, name), not_found)
}

/// Like [`exactly_one`] for case-insensitive, uppercase-stored names
/// (machines, services).
pub fn exactly_one_ci(
    state: &MoiraState,
    table: &str,
    col: &'static str,
    name: &str,
    not_found: MrError,
) -> MrResult<RowId> {
    state
        .db
        .select_exactly_one(table, &Pred::name_match_ci(col, name), not_found)
}

/// Exactly one user by login.
pub fn one_user(state: &MoiraState, login: &str) -> MrResult<RowId> {
    exactly_one(state, "users", "login", login, MrError::User)
}

/// Exactly one machine by (canonicalized) name.
pub fn one_machine(state: &MoiraState, name: &str) -> MrResult<RowId> {
    exactly_one_ci(state, "machine", "name", name, MrError::Machine)
}

/// Exactly one cluster by name (case sensitive, §7.0.2).
pub fn one_cluster(state: &MoiraState, name: &str) -> MrResult<RowId> {
    exactly_one(state, "cluster", "name", name, MrError::Cluster)
}

/// Exactly one list by name.
pub fn one_list(state: &MoiraState, name: &str) -> MrResult<RowId> {
    exactly_one(state, "list", "name", name, MrError::List)
}

/// Exactly one service by (uppercased) name.
pub fn one_service(state: &MoiraState, name: &str) -> MrResult<RowId> {
    exactly_one_ci(state, "servers", "name", name, MrError::Service)
}

/// Exactly one filesystem by label.
pub fn one_filesys(state: &MoiraState, label: &str) -> MrResult<RowId> {
    exactly_one(state, "filesys", "label", label, MrError::Filesys)
}

/// Projects named columns of a row into protocol strings.
pub fn project(state: &MoiraState, table: &str, id: RowId, cols: &[&str]) -> Vec<String> {
    let t = state.db.table(table);
    cols.iter().map(|c| t.cell(id, c).render()).collect()
}

/// The machine name for a `mach_id` (dangling ids render as `#id`).
pub fn machine_name(state: &MoiraState, mach_id: i64) -> String {
    state
        .db
        .table("machine")
        .select_one(&Pred::Eq("mach_id", mach_id.into()))
        .map(|r| state.db.cell("machine", r, "name").as_str().to_owned())
        .unwrap_or_else(|| format!("#{mach_id}"))
}

/// The login for a `users_id`.
pub fn user_login(state: &MoiraState, users_id: i64) -> String {
    state
        .db
        .table("users")
        .select_one(&Pred::Eq("users_id", users_id.into()))
        .map(|r| state.db.cell("users", r, "login").as_str().to_owned())
        .unwrap_or_else(|| format!("#{users_id}"))
}

/// The list name for a `list_id`.
pub fn list_name(state: &MoiraState, list_id: i64) -> String {
    state
        .db
        .table("list")
        .select_one(&Pred::Eq("list_id", list_id.into()))
        .map(|r| state.db.cell("list", r, "name").as_str().to_owned())
        .unwrap_or_else(|| format!("#{list_id}"))
}

/// The string for a `string_id` (STRINGS relation).
pub fn string_of(state: &MoiraState, string_id: i64) -> String {
    state
        .db
        .table("strings")
        .select_one(&Pred::Eq("string_id", string_id.into()))
        .map(|r| state.db.cell("strings", r, "string").as_str().to_owned())
        .unwrap_or_else(|| format!("#{string_id}"))
}

/// Finds or creates a STRINGS entry, returning its id — "an optimization
/// for dealing with arbitrary addresses in poboxes or as list members"
/// (§6).
pub fn intern_string(state: &mut MoiraState, s: &str) -> MrResult<i64> {
    if let Some(row) = state
        .db
        .table("strings")
        .select_one(&Pred::Eq("string", s.into()))
    {
        return Ok(state.db.cell("strings", row, "string_id").as_int());
    }
    let id = crate::ids::alloc_id(state, "string_id")?;
    state.db.append("strings", vec![id.into(), s.into()])?;
    Ok(id)
}

/// True if the caller holds the named query capability (wraps the access
/// module for handler-internal checks). Shared state suffices: access
/// decisions mutate nothing beyond the interior-mutable cache.
pub fn on_query_acl(state: &MoiraState, caller: &Caller, query: &str) -> bool {
    crate::access::caller_has_capability(state, caller, query)
}

/// Renders a boolean cell for qualified queries' tristate matching.
pub fn matches_tristate(cell: &Value, want: Option<bool>) -> bool {
    match want {
        None => true,
        Some(w) => cell.as_bool() == w,
    }
}
