//! List and membership queries (§7.0.3).
//!
//! Lists are Moira's general grouping mechanism — mailing lists, unix
//! groups, and ACLs are all lists — so this module carries the richest
//! access-control rules in the catalog: ACE-based administration, public
//! self-service membership, and hidden lists.

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId, Value};

use crate::ace::{list_id_of, resolve_ace, user_in_list, users_id_of, Ace};
use crate::ids::alloc_id;
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::schema::UNIQUE_GID;
use crate::state::{Caller, MoiraState};

use super::helpers::*;

const LIST_INFO: &[&str] = &[
    "list",
    "active",
    "public",
    "hidden",
    "maillist",
    "group",
    "gid",
    "ace_type",
    "ace_name",
    "description",
    "modtime",
    "modby",
    "modwith",
];

/// Registers the list queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_list_info",
            shortname: "glin",
            kind: Retrieve,
            access: Custom,
            args: &["list"],
            returns: LIST_INFO,
            handler: Handler::Read(get_list_info),
        },
        QueryHandle {
            name: "expand_list_names",
            shortname: "exln",
            kind: Retrieve,
            access: Custom,
            args: &["list"],
            returns: &["list"],
            handler: Handler::Read(expand_list_names),
        },
        QueryHandle {
            name: "add_list",
            shortname: "alis",
            kind: Append,
            access: QueryAcl,
            args: &[
                "list",
                "active",
                "public",
                "hidden",
                "maillist",
                "group",
                "gid",
                "ace_type",
                "ace_name",
                "description",
            ],
            returns: &[],
            handler: Handler::Write(add_list),
        },
        QueryHandle {
            name: "update_list",
            shortname: "ulis",
            kind: Update,
            access: Custom,
            args: &[
                "list",
                "newname",
                "active",
                "public",
                "hidden",
                "maillist",
                "group",
                "gid",
                "ace_type",
                "ace_name",
                "description",
            ],
            returns: &[],
            handler: Handler::Write(update_list),
        },
        QueryHandle {
            name: "delete_list",
            shortname: "dlis",
            kind: Delete,
            access: Custom,
            args: &["list"],
            returns: &[],
            handler: Handler::Write(delete_list),
        },
        QueryHandle {
            name: "add_member_to_list",
            shortname: "amtl",
            kind: Append,
            access: Custom,
            args: &["list", "type", "member"],
            returns: &[],
            handler: Handler::Write(add_member_to_list),
        },
        QueryHandle {
            name: "delete_member_from_list",
            shortname: "dmfl",
            kind: Delete,
            access: Custom,
            args: &["list", "type", "member"],
            returns: &[],
            handler: Handler::Write(delete_member_from_list),
        },
        QueryHandle {
            name: "get_ace_use",
            shortname: "gaus",
            kind: Retrieve,
            access: Custom,
            args: &["ace_type", "ace_name"],
            returns: &["object_type", "object_name"],
            handler: Handler::Read(get_ace_use),
        },
        QueryHandle {
            name: "qualified_get_lists",
            shortname: "qgli",
            kind: Retrieve,
            access: Custom,
            args: &["active", "public", "hidden", "maillist", "group"],
            returns: &["list"],
            handler: Handler::Read(qualified_get_lists),
        },
        QueryHandle {
            name: "get_members_of_list",
            shortname: "gmol",
            kind: Retrieve,
            access: Custom,
            args: &["list"],
            returns: &["type", "value"],
            handler: Handler::Read(get_members_of_list),
        },
        QueryHandle {
            name: "get_lists_of_member",
            shortname: "glom",
            kind: Retrieve,
            access: Custom,
            args: &["type", "value"],
            returns: &["list", "active", "public", "hidden", "maillist", "group"],
            handler: Handler::Read(get_lists_of_member),
        },
        QueryHandle {
            name: "count_members_of_list",
            shortname: "cmol",
            kind: Retrieve,
            access: Custom,
            args: &["list"],
            returns: &["count"],
            handler: Handler::Read(count_members_of_list),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

/// Renders one list row into the `get_list_info` tuple.
fn render_list_info(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("list");
    let (ace_type, ace_name) = crate::ace::render_ace(
        &state.db,
        t.cell(row, "acl_type").as_str(),
        t.cell(row, "acl_id").as_int(),
    );
    vec![
        t.cell(row, "name").render(),
        t.cell(row, "active").render(),
        t.cell(row, "public").render(),
        t.cell(row, "hidden").render(),
        t.cell(row, "maillist").render(),
        t.cell(row, "grouplist").render(),
        t.cell(row, "gid").render(),
        ace_type,
        ace_name,
        t.cell(row, "desc").render(),
        t.cell(row, "modtime").render(),
        t.cell(row, "modby").render(),
        t.cell(row, "modwith").render(),
    ]
}

/// True if the caller is on the ACE of list `row`.
fn caller_on_list_ace(state: &MoiraState, c: &Caller, row: RowId) -> bool {
    crate::ace::caller_on_row_ace(
        state,
        c.principal.as_deref(),
        "list",
        row,
        "acl_type",
        "acl_id",
    )
}

fn get_list_info(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let on_acl = on_query_acl(state, c, "get_list_info");
    if !on_acl {
        // Wildcards only for privileged callers.
        no_wildcards(&a[0]).map_err(|_| MrError::Perm)?;
    }
    let ids = state.db.select("list", &Pred::name_match("name", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    let mut out = Vec::new();
    for id in ids {
        let hidden = state.db.cell("list", id, "hidden").as_bool();
        if hidden && !on_acl && !caller_on_list_ace(state, c, id) {
            return Err(MrError::Perm);
        }
        out.push(render_list_info(state, id));
    }
    Ok(out)
}

fn expand_list_names(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let on_acl = on_query_acl(state, c, "expand_list_names");
    let ids = state.db.select("list", &Pred::name_match("name", &a[0]));
    let mut out = Vec::new();
    for id in ids {
        let hidden = state.db.cell("list", id, "hidden").as_bool();
        if hidden && !on_acl && !caller_on_list_ace(state, c, id) {
            continue;
        }
        out.push(vec![state.db.cell("list", id, "name").render()]);
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn parse_gid(state: &mut MoiraState, group: bool, gid_arg: &str) -> MrResult<i64> {
    let gid = if gid_arg == "UNIQUE_GID" {
        UNIQUE_GID
    } else {
        parse_int(gid_arg)?
    };
    if gid == UNIQUE_GID && group {
        alloc_id(state, "gid")
    } else {
        Ok(gid)
    }
}

fn add_list(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let name = &a[0];
    check_chars(name)?;
    no_wildcards(name)?;
    if name.is_empty() {
        return Err(MrError::BadChar);
    }
    if state
        .db
        .table("list")
        .select_one(&Pred::Eq("name", name.as_str().into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let active = parse_bool(&a[1])?;
    let public = parse_bool(&a[2])?;
    let hidden = parse_bool(&a[3])?;
    let maillist = parse_bool(&a[4])?;
    let group = parse_bool(&a[5])?;
    let gid = parse_gid(state, group, &a[6])?;
    let list_id = alloc_id(state, "list_id")?;
    // "The access list may be the list that is being created
    // (self-referential)."
    let ace = if a[7].eq_ignore_ascii_case("LIST") && &a[8] == name {
        Ace::List(list_id)
    } else {
        resolve_ace(&state.db, &a[7], &a[8])?
    };
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "list",
        vec![
            name.as_str().into(),
            list_id.into(),
            active.into(),
            public.into(),
            hidden.into(),
            maillist.into(),
            group.into(),
            gid.into(),
            a[9].as_str().into(),
            ace.type_str().into(),
            ace.id().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_list(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !caller_on_list_ace(state, c, row) && !on_query_acl(state, c, "update_list") {
        return Err(MrError::Perm);
    }
    let newname = &a[1];
    check_chars(newname)?;
    no_wildcards(newname)?;
    let current = state.db.cell("list", row, "name").as_str().to_owned();
    if newname != &current
        && state
            .db
            .table("list")
            .select_one(&Pred::Eq("name", newname.as_str().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let group = parse_bool(&a[6])?;
    let gid = parse_gid(state, group, &a[7])?;
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let ace = if a[8].eq_ignore_ascii_case("LIST") && (&a[9] == newname || a[9] == current) {
        Ace::List(list_id)
    } else {
        resolve_ace(&state.db, &a[8], &a[9])?
    };
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "list",
        row,
        &[
            ("name", newname.as_str().into()),
            ("active", Value::Bool(parse_bool(&a[2])?)),
            ("public", Value::Bool(parse_bool(&a[3])?)),
            ("hidden", Value::Bool(parse_bool(&a[4])?)),
            ("maillist", Value::Bool(parse_bool(&a[5])?)),
            ("grouplist", Value::Bool(group)),
            ("gid", gid.into()),
            ("acl_type", ace.type_str().into()),
            ("acl_id", ace.id().into()),
            ("desc", a[10].as_str().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

/// Is this list referenced anywhere (member of another list, ACE of an
/// object, owner of a filesystem, capability holder)?
fn list_referenced(state: &MoiraState, list_id: i64) -> bool {
    let ace_pred = Pred::Eq("acl_type", "LIST".into()).and(Pred::Eq("acl_id", list_id.into()));
    !state
        .db
        .select(
            "members",
            &Pred::Eq("member_type", "LIST".into()).and(Pred::Eq("member_id", list_id.into())),
        )
        .is_empty()
        || !state.db.select("list", &ace_pred).is_empty()
        || !state.db.select("servers", &ace_pred).is_empty()
        || !state.db.select("hostaccess", &ace_pred).is_empty()
        || !state
            .db
            .select("filesys", &Pred::Eq("owners", list_id.into()))
            .is_empty()
        || !state
            .db
            .select("capacls", &Pred::Eq("list_id", list_id.into()))
            .is_empty()
        || ["xmt", "sub", "iws", "iui"].iter().any(|p| {
            let type_col: &'static str = match *p {
                "xmt" => "xmt_type",
                "sub" => "sub_type",
                "iws" => "iws_type",
                _ => "iui_type",
            };
            let id_col: &'static str = match *p {
                "xmt" => "xmt_id",
                "sub" => "sub_id",
                "iws" => "iws_id",
                _ => "iui_id",
            };
            !state
                .db
                .select(
                    "zephyr",
                    &Pred::Eq(type_col, "LIST".into()).and(Pred::Eq(id_col, list_id.into())),
                )
                .is_empty()
        })
}

fn delete_list(state: &mut MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !caller_on_list_ace(state, c, row) && !on_query_acl(state, c, "delete_list") {
        return Err(MrError::Perm);
    }
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let has_members = !state
        .db
        .select("members", &Pred::Eq("list_id", list_id.into()))
        .is_empty();
    // A self-referential ACE does not count as a reference.
    let self_ace = state.db.cell("list", row, "acl_type").as_str() == "LIST"
        && state.db.cell("list", row, "acl_id").as_int() == list_id;
    if has_members || (list_referenced(state, list_id) && !self_ace) {
        return Err(MrError::InUse);
    }
    if self_ace && list_referenced_excluding_self(state, list_id) {
        return Err(MrError::InUse);
    }
    state.db.delete("list", row)?;
    Ok(Vec::new())
}

fn list_referenced_excluding_self(state: &MoiraState, list_id: i64) -> bool {
    let ace_pred = Pred::Eq("acl_type", "LIST".into()).and(Pred::Eq("acl_id", list_id.into()));
    let self_row = state
        .db
        .table("list")
        .select_one(&Pred::Eq("list_id", list_id.into()));
    state
        .db
        .select("list", &ace_pred)
        .into_iter()
        .any(|r| Some(r) != self_row)
        || !state.db.select("servers", &ace_pred).is_empty()
        || !state.db.select("hostaccess", &ace_pred).is_empty()
        || !state
            .db
            .select("filesys", &Pred::Eq("owners", list_id.into()))
            .is_empty()
        || !state
            .db
            .select("capacls", &Pred::Eq("list_id", list_id.into()))
            .is_empty()
        || !state
            .db
            .select(
                "members",
                &Pred::Eq("member_type", "LIST".into()).and(Pred::Eq("member_id", list_id.into())),
            )
            .is_empty()
}

/// Resolves `(member_type, member_name)` to a member id, creating STRINGS
/// entries on demand.
fn resolve_member(state: &mut MoiraState, mtype: &str, member: &str) -> MrResult<(String, i64)> {
    match mtype.to_ascii_uppercase().as_str() {
        "USER" => Ok((
            "USER".into(),
            users_id_of(&state.db, member).map_err(|_| MrError::NoMatch)?,
        )),
        "LIST" => Ok((
            "LIST".into(),
            list_id_of(&state.db, member).map_err(|_| MrError::NoMatch)?,
        )),
        "STRING" => Ok(("STRING".into(), intern_string(state, member)?)),
        _ => Err(MrError::Type),
    }
}

/// The add/delete-member access rule: self-service on public lists, the
/// list's ACE, or the query ACL.
fn may_edit_members(
    state: &mut MoiraState,
    c: &Caller,
    row: RowId,
    mtype: &str,
    member: &str,
    query: &str,
) -> bool {
    let public = state.db.cell("list", row, "public").as_bool();
    if public && mtype.eq_ignore_ascii_case("USER") && c.principal.as_deref() == Some(member) {
        return true;
    }
    caller_on_list_ace(state, c, row) || on_query_acl(state, c, query)
}

fn touch_list(state: &mut MoiraState, c: &Caller, row: RowId) -> MrResult<()> {
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "list",
        row,
        &[
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(())
}

fn add_member_to_list(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !may_edit_members(state, c, row, &a[1], &a[2], "add_member_to_list") {
        return Err(MrError::Perm);
    }
    let (mtype, mid) = resolve_member(state, &a[1], &a[2])?;
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let dup = !state
        .db
        .select(
            "members",
            &Pred::Eq("list_id", list_id.into())
                .and(Pred::Eq("member_type", mtype.as_str().into()))
                .and(Pred::Eq("member_id", mid.into())),
        )
        .is_empty();
    if dup {
        return Err(MrError::Exists);
    }
    state
        .db
        .append("members", vec![list_id.into(), mtype.into(), mid.into()])?;
    touch_list(state, c, row)?;
    Ok(Vec::new())
}

fn delete_member_from_list(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !may_edit_members(state, c, row, &a[1], &a[2], "delete_member_from_list") {
        return Err(MrError::Perm);
    }
    let (mtype, mid) = resolve_member(state, &a[1], &a[2])?;
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let gone = state.db.delete_where(
        "members",
        &Pred::Eq("list_id", list_id.into())
            .and(Pred::Eq("member_type", mtype.as_str().into()))
            .and(Pred::Eq("member_id", mid.into())),
    );
    if gone == 0 {
        return Err(MrError::NoMatch);
    }
    touch_list(state, c, row)?;
    Ok(Vec::new())
}

/// What `get_ace_use` is being asked about.
enum AceTarget {
    User { users_id: i64, recursive: bool },
    List { list_id: i64, recursive: bool },
}

impl AceTarget {
    fn matches(&self, db: &moira_db::Database, ace_type: &str, ace_id: i64) -> bool {
        match (self, ace_type) {
            (AceTarget::User { users_id, .. }, "USER") => ace_id == *users_id,
            (
                AceTarget::User {
                    users_id,
                    recursive: true,
                },
                "LIST",
            ) => user_in_list(db, *users_id, ace_id),
            (AceTarget::List { list_id, recursive }, "LIST") => {
                ace_id == *list_id || (*recursive && list_in_list(db, *list_id, ace_id))
            }
            _ => false,
        }
    }
}

/// True if `inner` is a direct or transitive member (as a LIST member) of
/// `outer`.
fn list_in_list(db: &moira_db::Database, inner: i64, outer: i64) -> bool {
    fn walk(
        db: &moira_db::Database,
        inner: i64,
        outer: i64,
        depth: usize,
        seen: &mut Vec<i64>,
    ) -> bool {
        if depth > 32 || seen.contains(&outer) {
            return false;
        }
        seen.push(outer);
        for row in db.select("members", &Pred::Eq("list_id", outer.into())) {
            let t = db.table("members");
            if t.cell(row, "member_type").as_str() != "LIST" {
                continue;
            }
            let mid = t.cell(row, "member_id").as_int();
            if mid == inner || walk(db, inner, mid, depth + 1, seen) {
                return true;
            }
        }
        false
    }
    walk(db, inner, outer, 0, &mut Vec::new())
}

fn get_ace_use(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let recursive = a[0].to_ascii_uppercase().starts_with('R');
    let target = match a[0].to_ascii_uppercase().as_str() {
        "USER" | "RUSER" => AceTarget::User {
            users_id: users_id_of(&state.db, &a[1]).map_err(|_| MrError::NoMatch)?,
            recursive,
        },
        "LIST" | "RLIST" => AceTarget::List {
            list_id: list_id_of(&state.db, &a[1]).map_err(|_| MrError::NoMatch)?,
            recursive,
        },
        _ => return Err(MrError::Type),
    };
    // Access: a user asking about themselves, someone on the ACE of the
    // list asking about that list, or the query ACL.
    let allowed = on_query_acl(state, c, "get_ace_use")
        || match &target {
            AceTarget::User { .. } => c.principal.as_deref() == Some(a[1].as_str()),
            AceTarget::List { list_id, .. } => {
                let row = state
                    .db
                    .table("list")
                    .select_one(&Pred::Eq("list_id", (*list_id).into()));
                row.is_some_and(|r| caller_on_list_ace(state, c, r))
            }
        };
    if !allowed {
        return Err(MrError::Perm);
    }

    let mut out: Vec<Vec<String>> = Vec::new();
    let db = &state.db;
    for row in db.select("list", &Pred::True) {
        let t = db.table("list");
        if target.matches(
            db,
            t.cell(row, "acl_type").as_str(),
            t.cell(row, "acl_id").as_int(),
        ) {
            out.push(vec!["LIST".into(), t.cell(row, "name").render()]);
        }
    }
    for row in db.select("servers", &Pred::True) {
        let t = db.table("servers");
        if target.matches(
            db,
            t.cell(row, "acl_type").as_str(),
            t.cell(row, "acl_id").as_int(),
        ) {
            out.push(vec!["SERVICE".into(), t.cell(row, "name").render()]);
        }
    }
    for row in db.select("filesys", &Pred::True) {
        let t = db.table("filesys");
        let owner_matches = target.matches(db, "USER", t.cell(row, "owner").as_int());
        let owners_matches = target.matches(db, "LIST", t.cell(row, "owners").as_int());
        if owner_matches || owners_matches {
            out.push(vec!["FILESYS".into(), t.cell(row, "label").render()]);
        }
    }
    for row in db.select("capacls", &Pred::True) {
        let t = db.table("capacls");
        if target.matches(db, "LIST", t.cell(row, "list_id").as_int()) {
            out.push(vec!["QUERY".into(), t.cell(row, "capability").render()]);
        }
    }
    for row in db.select("hostaccess", &Pred::True) {
        let t = db.table("hostaccess");
        if target.matches(
            db,
            t.cell(row, "acl_type").as_str(),
            t.cell(row, "acl_id").as_int(),
        ) {
            out.push(vec![
                "HOSTACCESS".into(),
                machine_name(state, t.cell(row, "mach_id").as_int()),
            ]);
        }
    }
    for row in db.select("zephyr", &Pred::True) {
        let t = db.table("zephyr");
        let pairs = [
            ("xmt_type", "xmt_id"),
            ("sub_type", "sub_id"),
            ("iws_type", "iws_id"),
            ("iui_type", "iui_id"),
        ];
        if pairs
            .iter()
            .any(|(tc, ic)| target.matches(db, t.cell(row, tc).as_str(), t.cell(row, ic).as_int()))
        {
            out.push(vec!["ZEPHYR".into(), t.cell(row, "class").render()]);
        }
    }
    out.sort();
    out.dedup();
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn qualified_get_lists(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let active = parse_tristate(&a[0])?;
    let public = parse_tristate(&a[1])?;
    let hidden = parse_tristate(&a[2])?;
    let maillist = parse_tristate(&a[3])?;
    let group = parse_tristate(&a[4])?;
    // "Any user may execute this query with active TRUE and hidden FALSE."
    let benign = active == Some(true) && hidden == Some(false);
    if !benign && !on_query_acl(state, c, "qualified_get_lists") {
        return Err(MrError::Perm);
    }
    let t = state.db.table("list");
    let mut out = Vec::new();
    // Tristate qualifier over five unindexed flag columns: a genuine
    // dump, no index can narrow it. lint:allow(plan-discipline)
    for (row, _) in t.iter() {
        if matches_tristate(t.cell(row, "active"), active)
            && matches_tristate(t.cell(row, "public"), public)
            && matches_tristate(t.cell(row, "hidden"), hidden)
            && matches_tristate(t.cell(row, "maillist"), maillist)
            && matches_tristate(t.cell(row, "grouplist"), group)
        {
            out.push(vec![t.cell(row, "name").render()]);
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn may_see_members(state: &MoiraState, c: &Caller, row: RowId, query: &str) -> bool {
    let hidden = state.db.cell("list", row, "hidden").as_bool();
    !hidden || caller_on_list_ace(state, c, row) || on_query_acl(state, c, query)
}

fn get_members_of_list(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !may_see_members(state, c, row, "get_members_of_list") {
        return Err(MrError::Perm);
    }
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let mut out = Vec::new();
    for mrow in state
        .db
        .select("members", &Pred::Eq("list_id", list_id.into()))
    {
        let t = state.db.table("members");
        let mtype = t.cell(mrow, "member_type").as_str().to_owned();
        let mid = t.cell(mrow, "member_id").as_int();
        let value = match mtype.as_str() {
            "USER" => user_login(state, mid),
            "LIST" => list_name(state, mid),
            _ => string_of(state, mid),
        };
        out.push(vec![mtype, value]);
    }
    out.sort();
    Ok(out)
}

fn get_lists_of_member(state: &MoiraState, c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let upper = a[0].to_ascii_uppercase();
    let recursive = upper.starts_with('R');
    let base_type = upper.trim_start_matches('R').to_owned();
    let (mtype, mid) = match base_type.as_str() {
        "USER" => (
            "USER",
            users_id_of(&state.db, &a[1]).map_err(|_| MrError::NoMatch)?,
        ),
        "LIST" => (
            "LIST",
            list_id_of(&state.db, &a[1]).map_err(|_| MrError::NoMatch)?,
        ),
        "STRING" => (
            "STRING",
            state
                .db
                .table("strings")
                .select_one(&Pred::Eq("string", a[1].as_str().into()))
                .map(|r| state.db.cell("strings", r, "string_id").as_int())
                .ok_or(MrError::NoMatch)?,
        ),
        _ => return Err(MrError::Type),
    };
    let allowed = on_query_acl(state, c, "get_lists_of_member")
        || (mtype == "USER" && c.principal.as_deref() == Some(a[1].as_str()));
    if !allowed {
        return Err(MrError::Perm);
    }

    // Direct memberships, then (for R types) the transitive closure upward.
    let mut list_ids: Vec<i64> = state
        .db
        .select(
            "members",
            &Pred::Eq("member_type", mtype.into()).and(Pred::Eq("member_id", mid.into())),
        )
        .into_iter()
        .map(|r| state.db.cell("members", r, "list_id").as_int())
        .collect();
    if recursive {
        let mut frontier = list_ids.clone();
        while let Some(lid) = frontier.pop() {
            for r in state.db.select(
                "members",
                &Pred::Eq("member_type", "LIST".into()).and(Pred::Eq("member_id", lid.into())),
            ) {
                let parent = state.db.cell("members", r, "list_id").as_int();
                if !list_ids.contains(&parent) {
                    list_ids.push(parent);
                    frontier.push(parent);
                }
            }
        }
    }
    list_ids.sort_unstable();
    list_ids.dedup();
    let mut out = Vec::new();
    for lid in list_ids {
        if let Some(row) = state
            .db
            .table("list")
            .select_one(&Pred::Eq("list_id", lid.into()))
        {
            let t = state.db.table("list");
            out.push(vec![
                t.cell(row, "name").render(),
                t.cell(row, "active").render(),
                t.cell(row, "public").render(),
                t.cell(row, "hidden").render(),
                t.cell(row, "maillist").render(),
                t.cell(row, "grouplist").render(),
            ]);
        }
    }
    if out.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(out)
}

fn count_members_of_list(
    state: &MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = one_list(state, &a[0])?;
    if !may_see_members(state, c, row, "count_members_of_list") {
        return Err(MrError::Perm);
    }
    let list_id = state.db.cell("list", row, "list_id").as_int();
    let n = state
        .db
        .select("members", &Pred::Eq("list_id", list_id.into()))
        .len();
    Ok(vec![vec![n.to_string()]])
}

/// Expands a list to its transitive USER member ids plus STRING member ids
/// — the id-level variant of [`expand_members_recursive`] for bulk callers
/// that resolve names themselves.
pub fn expand_member_ids_recursive(state: &MoiraState, list_id: i64) -> (Vec<i64>, Vec<i64>) {
    let mut users = Vec::new();
    let mut strings = Vec::new();
    let mut seen = vec![list_id];
    let mut frontier = vec![list_id];
    while let Some(lid) = frontier.pop() {
        for row in state.db.select("members", &Pred::Eq("list_id", lid.into())) {
            let t = state.db.table("members");
            let mid = t.cell(row, "member_id").as_int();
            match t.cell(row, "member_type").as_str() {
                "USER" => users.push(mid),
                "STRING" => strings.push(mid),
                "LIST" if !seen.contains(&mid) => {
                    seen.push(mid);
                    frontier.push(mid);
                }
                _ => {}
            }
        }
    }
    users.sort_unstable();
    users.dedup();
    strings.sort_unstable();
    strings.dedup();
    (users, strings)
}

/// Expands a list to its transitive USER member logins plus STRING members,
/// as the Zephyr ACL and aliases generators need ("Recursive lists will be
/// expanded").
pub fn expand_members_recursive(state: &MoiraState, list_id: i64) -> (Vec<String>, Vec<String>) {
    let mut users = Vec::new();
    let mut strings = Vec::new();
    let mut seen = vec![list_id];
    let mut frontier = vec![list_id];
    while let Some(lid) = frontier.pop() {
        for row in state.db.select("members", &Pred::Eq("list_id", lid.into())) {
            let t = state.db.table("members");
            let mtype = t.cell(row, "member_type").as_str().to_owned();
            let mid = t.cell(row, "member_id").as_int();
            match mtype.as_str() {
                "USER" => users.push(user_login(state, mid)),
                "STRING" => strings.push(string_of(state, mid)),
                "LIST" if !seen.contains(&mid) => {
                    seen.push(mid);
                    frontier.push(mid);
                }
                _ => {}
            }
        }
    }
    users.sort();
    users.dedup();
    strings.sort();
    strings.dedup();
    (users, strings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::state_with_admin;
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "listmaint");
        for (login, uid) in [("babette", "6530"), ("paul", "6531"), ("smyser", "6532")] {
            run(
                &mut s,
                &r,
                &ops,
                "add_user",
                &[login, uid, "/bin/csh", "L", "F", "", "1", "x", "1990"],
            )
            .unwrap();
        }
        (s, r, ops)
    }

    #[test]
    fn list_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "video-users",
                "1",
                "1",
                "0",
                "1",
                "0",
                "-1",
                "USER",
                "paul",
                "Video Users",
            ],
        )
        .unwrap();
        let info = run(&mut s, &r, &ops, "get_list_info", &["video-users"]).unwrap();
        assert_eq!(info[0][4], "1", "maillist");
        assert_eq!(info[0][7], "USER");
        assert_eq!(info[0][8], "paul");
        // Duplicate.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_list",
                &[
                    "video-users",
                    "1",
                    "1",
                    "0",
                    "1",
                    "0",
                    "-1",
                    "NONE",
                    "NONE",
                    "",
                ]
            )
            .unwrap_err(),
            MrError::Exists
        );
        // Bad ACE.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_list",
                &["other", "1", "1", "0", "1", "0", "-1", "USER", "ghost", "",]
            )
            .unwrap_err(),
            MrError::Ace
        );
        run(&mut s, &r, &ops, "delete_list", &["video-users"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_list_info", &["video-users"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn unique_gid_assignment() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "grp1",
                "1",
                "0",
                "0",
                "0",
                "1",
                "UNIQUE_GID",
                "NONE",
                "NONE",
                "",
            ],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["grp2", "1", "0", "0", "0", "1", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        let g1 = run(&mut s, &r, &ops, "get_list_info", &["grp1"]).unwrap()[0][6]
            .parse::<i64>()
            .unwrap();
        let g2 = run(&mut s, &r, &ops, "get_list_info", &["grp2"]).unwrap()[0][6]
            .parse::<i64>()
            .unwrap();
        assert!(g1 >= 10_900);
        assert_eq!(g2, g1 + 1);
        // Non-group lists keep -1.
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["plain", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_list_info", &["plain"]).unwrap()[0][6],
            "-1"
        );
    }

    #[test]
    fn self_referential_ace() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "selfgov",
                "1",
                "0",
                "0",
                "0",
                "0",
                "-1",
                "LIST",
                "selfgov",
                "self-governing",
            ],
        )
        .unwrap();
        let info = run(&mut s, &r, &ops, "get_list_info", &["selfgov"]).unwrap();
        assert_eq!(info[0][7], "LIST");
        assert_eq!(info[0][8], "selfgov");
        // Members of the list govern it.
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["selfgov", "USER", "babette"],
        )
        .unwrap();
        let b = Caller::new("babette", "listmaint");
        run(
            &mut s,
            &r,
            &b,
            "add_member_to_list",
            &["selfgov", "USER", "paul"],
        )
        .unwrap();
    }

    #[test]
    fn membership_and_counts() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["m", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["m", "USER", "babette"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["m", "STRING", "rubin@media-lab.mit.edu"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_member_to_list",
                &["m", "USER", "babette"]
            )
            .unwrap_err(),
            MrError::Exists
        );
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_member_to_list",
                &["m", "USER", "ghost"]
            )
            .unwrap_err(),
            MrError::NoMatch
        );
        assert_eq!(
            run(&mut s, &r, &ops, "add_member_to_list", &["m", "ROBOT", "x"]).unwrap_err(),
            MrError::Type
        );
        let members = run(&mut s, &r, &ops, "get_members_of_list", &["m"]).unwrap();
        assert_eq!(members.len(), 2);
        assert!(members.contains(&vec![
            "STRING".to_owned(),
            "rubin@media-lab.mit.edu".to_owned()
        ]));
        assert_eq!(
            run(&mut s, &r, &ops, "count_members_of_list", &["m"]).unwrap()[0][0],
            "2"
        );
        run(
            &mut s,
            &r,
            &ops,
            "delete_member_from_list",
            &["m", "USER", "babette"],
        )
        .unwrap();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "delete_member_from_list",
                &["m", "USER", "babette"]
            )
            .unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn public_list_self_service() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["pub", "1", "1", "0", "1", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["priv", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        let b = Caller::new("babette", "mailmaint");
        // Self add/remove on a public list is allowed.
        run(
            &mut s,
            &r,
            &b,
            "add_member_to_list",
            &["pub", "USER", "babette"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &b,
            "delete_member_from_list",
            &["pub", "USER", "babette"],
        )
        .unwrap();
        // Adding someone else is not.
        assert_eq!(
            run(
                &mut s,
                &r,
                &b,
                "add_member_to_list",
                &["pub", "USER", "paul"]
            )
            .unwrap_err(),
            MrError::Perm
        );
        // Self add on a private list is not.
        assert_eq!(
            run(
                &mut s,
                &r,
                &b,
                "add_member_to_list",
                &["priv", "USER", "babette"]
            )
            .unwrap_err(),
            MrError::Perm
        );
    }

    #[test]
    fn hidden_lists_guarded() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[
                "shadow", "1", "0", "1", "0", "0", "-1", "USER", "paul", "hush",
            ],
        )
        .unwrap();
        let b = Caller::new("babette", "x");
        assert_eq!(
            run(&mut s, &r, &b, "get_list_info", &["shadow"]).unwrap_err(),
            MrError::Perm
        );
        assert_eq!(
            run(&mut s, &r, &b, "get_members_of_list", &["shadow"]).unwrap_err(),
            MrError::Perm
        );
        // The ACE holder sees it.
        let p = Caller::new("paul", "x");
        assert!(run(&mut s, &r, &p, "get_list_info", &["shadow"]).is_ok());
        assert!(run(&mut s, &r, &p, "get_members_of_list", &["shadow"]).is_ok());
        // expand_list_names hides it from others.
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["shine", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        let names = run(&mut s, &r, &b, "expand_list_names", &["sh*"]).unwrap();
        assert_eq!(names, vec![vec!["shine".to_owned()]]);
    }

    #[test]
    fn wildcards_require_acl_for_list_info() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["l1", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        let b = Caller::new("babette", "x");
        assert_eq!(
            run(&mut s, &r, &b, "get_list_info", &["l*"]).unwrap_err(),
            MrError::Perm
        );
        assert!(run(&mut s, &r, &ops, "get_list_info", &["l*"]).is_ok());
    }

    #[test]
    fn lists_of_member_and_recursion() {
        let (mut s, r, ops) = setup();
        for name in ["inner", "outer"] {
            run(
                &mut s,
                &r,
                &ops,
                "add_list",
                &[name, "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
            )
            .unwrap();
        }
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["inner", "USER", "babette"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["outer", "LIST", "inner"],
        )
        .unwrap();
        let direct = run(
            &mut s,
            &r,
            &ops,
            "get_lists_of_member",
            &["USER", "babette"],
        )
        .unwrap();
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0][0], "inner");
        let rec = run(
            &mut s,
            &r,
            &ops,
            "get_lists_of_member",
            &["RUSER", "babette"],
        )
        .unwrap();
        let names: Vec<&str> = rec.iter().map(|t| t[0].as_str()).collect();
        assert!(names.contains(&"inner") && names.contains(&"outer"));
        // A user can ask about themselves.
        let b = Caller::new("babette", "x");
        assert!(run(&mut s, &r, &b, "get_lists_of_member", &["RUSER", "babette"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &b, "get_lists_of_member", &["USER", "paul"]).unwrap_err(),
            MrError::Perm
        );
    }

    #[test]
    fn qualified_get_lists_flags() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["ml", "1", "1", "0", "1", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["grp", "1", "0", "0", "0", "1", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        let mls = run(
            &mut s,
            &r,
            &ops,
            "qualified_get_lists",
            &["TRUE", "DONTCARE", "FALSE", "TRUE", "DONTCARE"],
        )
        .unwrap();
        assert!(mls.iter().any(|t| t[0] == "ml"));
        assert!(!mls.iter().any(|t| t[0] == "grp"));
        // Bad qualifier.
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "qualified_get_lists",
                &["YES", "NO", "NO", "NO", "NO"]
            )
            .unwrap_err(),
            MrError::Type
        );
        // Anyone may run the benign form.
        let b = Caller::new("babette", "x");
        assert!(run(
            &mut s,
            &r,
            &b,
            "qualified_get_lists",
            &["TRUE", "DONTCARE", "FALSE", "DONTCARE", "DONTCARE",]
        )
        .is_ok());
        assert_eq!(
            run(
                &mut s,
                &r,
                &b,
                "qualified_get_lists",
                &["DONTCARE", "DONTCARE", "TRUE", "DONTCARE", "DONTCARE",]
            )
            .unwrap_err(),
            MrError::Perm
        );
    }

    #[test]
    fn ace_use_queries() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["owners", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["owned", "1", "0", "0", "0", "0", "-1", "LIST", "owners", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["owners", "USER", "paul"],
        )
        .unwrap();
        // Direct: paul is not directly an ACE.
        assert_eq!(
            run(&mut s, &r, &ops, "get_ace_use", &["USER", "paul"]).unwrap_err(),
            MrError::NoMatch
        );
        // Recursive: paul reaches `owned` via `owners`.
        let uses = run(&mut s, &r, &ops, "get_ace_use", &["RUSER", "paul"]).unwrap();
        assert!(uses.contains(&vec!["LIST".to_owned(), "owned".to_owned()]));
        // The list itself.
        let uses = run(&mut s, &r, &ops, "get_ace_use", &["LIST", "owners"]).unwrap();
        assert!(uses.contains(&vec!["LIST".to_owned(), "owned".to_owned()]));
        // Self-query allowed.
        let p = Caller::new("paul", "x");
        assert!(run(&mut s, &r, &p, "get_ace_use", &["RUSER", "paul"]).is_ok());
        assert_eq!(
            run(&mut s, &r, &p, "get_ace_use", &["RUSER", "babette"]).unwrap_err(),
            MrError::Perm
        );
        assert_eq!(
            run(&mut s, &r, &ops, "get_ace_use", &["MACHINE", "x"]).unwrap_err(),
            MrError::Type
        );
    }

    #[test]
    fn delete_list_constraints() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["parent", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["child", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["parent", "LIST", "child"],
        )
        .unwrap();
        // child is referenced, parent is non-empty: both refuse deletion.
        assert_eq!(
            run(&mut s, &r, &ops, "delete_list", &["child"]).unwrap_err(),
            MrError::InUse
        );
        assert_eq!(
            run(&mut s, &r, &ops, "delete_list", &["parent"]).unwrap_err(),
            MrError::InUse
        );
        run(
            &mut s,
            &r,
            &ops,
            "delete_member_from_list",
            &["parent", "LIST", "child"],
        )
        .unwrap();
        run(&mut s, &r, &ops, "delete_list", &["child"]).unwrap();
        run(&mut s, &r, &ops, "delete_list", &["parent"]).unwrap();
    }

    #[test]
    fn recursive_expansion_helper() {
        let (mut s, r, ops) = setup();
        for name in ["leaf", "mid", "top"] {
            run(
                &mut s,
                &r,
                &ops,
                "add_list",
                &[name, "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
            )
            .unwrap();
        }
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["leaf", "USER", "babette"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["leaf", "STRING", "x@y.z"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["mid", "LIST", "leaf"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["mid", "USER", "paul"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["top", "LIST", "mid"],
        )
        .unwrap();
        // Cycle for good measure.
        run(
            &mut s,
            &r,
            &ops,
            "add_member_to_list",
            &["leaf", "LIST", "top"],
        )
        .unwrap();
        let top_id = list_id_of(&s.db, "top").unwrap();
        let (users, strings) = expand_members_recursive(&s, top_id);
        assert_eq!(users, vec!["babette".to_owned(), "paul".to_owned()]);
        assert_eq!(strings, vec!["x@y.z".to_owned()]);
    }
}
