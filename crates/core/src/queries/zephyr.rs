//! Zephyr class ACL queries (§7.0.6).

use moira_common::errors::{MrError, MrResult};
use moira_db::{Pred, RowId};

use crate::ace::{render_ace, resolve_ace, Ace};
use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

use super::helpers::*;

const RETURNS: &[&str] = &[
    "class", "xmttype", "xmtname", "subtype", "subname", "iwstype", "iwsname", "iuitype",
    "iuiname", "modtime", "modby", "modwith",
];

/// Registers the zephyr queries.
pub fn register(r: &mut Registry) {
    use AccessRule::*;
    use QueryKind::*;
    let qs: &[QueryHandle] = &[
        QueryHandle {
            name: "get_zephyr_class",
            shortname: "gzcl",
            kind: Retrieve,
            access: QueryAcl,
            args: &["class"],
            returns: RETURNS,
            handler: Handler::Read(get_zephyr_class),
        },
        QueryHandle {
            name: "add_zephyr_class",
            shortname: "azcl",
            kind: Append,
            access: QueryAcl,
            args: &[
                "class", "xmttype", "xmtname", "subtype", "subname", "iwstype", "iwsname",
                "iuitype", "iuiname",
            ],
            returns: &[],
            handler: Handler::Write(add_zephyr_class),
        },
        QueryHandle {
            name: "update_zephyr_class",
            shortname: "uzcl",
            kind: Update,
            access: QueryAcl,
            args: &[
                "class", "newclass", "xmttype", "xmtname", "subtype", "subname", "iwstype",
                "iwsname", "iuitype", "iuiname",
            ],
            returns: &[],
            handler: Handler::Write(update_zephyr_class),
        },
        QueryHandle {
            name: "delete_zephyr_class",
            shortname: "dzcl",
            kind: Delete,
            access: QueryAcl,
            args: &["class"],
            returns: &[],
            handler: Handler::Write(delete_zephyr_class),
        },
    ];
    for q in qs {
        r.register(*q);
    }
}

fn render_class(state: &MoiraState, row: RowId) -> Vec<String> {
    let t = state.db.table("zephyr");
    let mut out = vec![t.cell(row, "class").render()];
    for (tc, ic) in [
        ("xmt_type", "xmt_id"),
        ("sub_type", "sub_id"),
        ("iws_type", "iws_id"),
        ("iui_type", "iui_id"),
    ] {
        let (ty, name) = render_ace(
            &state.db,
            t.cell(row, tc).as_str(),
            t.cell(row, ic).as_int(),
        );
        out.push(ty);
        out.push(name);
    }
    out.push(t.cell(row, "modtime").render());
    out.push(t.cell(row, "modby").render());
    out.push(t.cell(row, "modwith").render());
    out
}

fn get_zephyr_class(state: &MoiraState, _c: &Caller, a: &[String]) -> MrResult<Vec<Vec<String>>> {
    let ids = state.db.select("zephyr", &Pred::name_match("class", &a[0]));
    if ids.is_empty() {
        return Err(MrError::NoMatch);
    }
    Ok(ids.into_iter().map(|id| render_class(state, id)).collect())
}

fn resolve_four_aces(state: &MoiraState, a: &[String], base: usize) -> MrResult<[Ace; 4]> {
    Ok([
        resolve_ace(&state.db, &a[base], &a[base + 1])?,
        resolve_ace(&state.db, &a[base + 2], &a[base + 3])?,
        resolve_ace(&state.db, &a[base + 4], &a[base + 5])?,
        resolve_ace(&state.db, &a[base + 6], &a[base + 7])?,
    ])
}

fn add_zephyr_class(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    check_chars(&a[0])?;
    no_wildcards(&a[0])?;
    if state
        .db
        .table("zephyr")
        .select_one(&Pred::Eq("class", a[0].as_str().into()))
        .is_some()
    {
        return Err(MrError::Exists);
    }
    let aces = resolve_four_aces(state, a, 1)?;
    let (now, who, with) = mod_fields(state, c);
    state.db.append(
        "zephyr",
        vec![
            a[0].as_str().into(),
            aces[0].type_str().into(),
            aces[0].id().into(),
            aces[1].type_str().into(),
            aces[1].id().into(),
            aces[2].type_str().into(),
            aces[2].id().into(),
            aces[3].type_str().into(),
            aces[3].id().into(),
            now.into(),
            who.into(),
            with.into(),
        ],
    )?;
    Ok(Vec::new())
}

fn update_zephyr_class(
    state: &mut MoiraState,
    c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = exactly_one(state, "zephyr", "class", &a[0], MrError::NoMatch)?;
    check_chars(&a[1])?;
    no_wildcards(&a[1])?;
    let current = state.db.cell("zephyr", row, "class").as_str().to_owned();
    if a[1] != current
        && state
            .db
            .table("zephyr")
            .select_one(&Pred::Eq("class", a[1].as_str().into()))
            .is_some()
    {
        return Err(MrError::NotUnique);
    }
    let aces = resolve_four_aces(state, a, 2)?;
    let (now, who, with) = mod_fields(state, c);
    state.db.update(
        "zephyr",
        row,
        &[
            ("class", a[1].as_str().into()),
            ("xmt_type", aces[0].type_str().into()),
            ("xmt_id", aces[0].id().into()),
            ("sub_type", aces[1].type_str().into()),
            ("sub_id", aces[1].id().into()),
            ("iws_type", aces[2].type_str().into()),
            ("iws_id", aces[2].id().into()),
            ("iui_type", aces[3].type_str().into()),
            ("iui_id", aces[3].id().into()),
            ("modtime", now.into()),
            ("modby", who.into()),
            ("modwith", with.into()),
        ],
    )?;
    Ok(Vec::new())
}

fn delete_zephyr_class(
    state: &mut MoiraState,
    _c: &Caller,
    a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    let row = exactly_one(state, "zephyr", "class", &a[0], MrError::NoMatch)?;
    state.db.delete("zephyr", row)?;
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::state_with_admin;
    use crate::registry::Registry;

    fn run(
        s: &mut MoiraState,
        r: &Registry,
        who: &Caller,
        q: &str,
        args: &[&str],
    ) -> MrResult<Vec<Vec<String>>> {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        r.execute(s, who, q, &args)
    }

    fn setup() -> (MoiraState, Registry, Caller) {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "zephyrmaint");
        run(
            &mut s,
            &r,
            &ops,
            "add_user",
            &["wheel", "7600", "/bin/csh", "L", "F", "", "1", "x", "STAFF"],
        )
        .unwrap();
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &["zctl", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
        (s, r, ops)
    }

    #[test]
    fn class_lifecycle() {
        let (mut s, r, ops) = setup();
        run(
            &mut s,
            &r,
            &ops,
            "add_zephyr_class",
            &[
                "MOIRA", "LIST", "zctl", "NONE", "NONE", "USER", "wheel", "NONE", "NONE",
            ],
        )
        .unwrap();
        let cls = run(&mut s, &r, &ops, "get_zephyr_class", &["MOIRA"]).unwrap();
        assert_eq!(cls[0][1], "LIST");
        assert_eq!(cls[0][2], "zctl");
        assert_eq!(cls[0][5], "USER");
        assert_eq!(cls[0][6], "wheel");
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_zephyr_class",
                &["MOIRA", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",]
            )
            .unwrap_err(),
            MrError::Exists
        );
        run(
            &mut s,
            &r,
            &ops,
            "update_zephyr_class",
            &[
                "MOIRA", "MOIRA2", "NONE", "NONE", "LIST", "zctl", "NONE", "NONE", "USER", "wheel",
            ],
        )
        .unwrap();
        let cls = run(&mut s, &r, &ops, "get_zephyr_class", &["MOIRA2"]).unwrap();
        assert_eq!(cls[0][3], "LIST");
        assert_eq!(cls[0][8], "wheel");
        run(&mut s, &r, &ops, "delete_zephyr_class", &["MOIRA2"]).unwrap();
        assert_eq!(
            run(&mut s, &r, &ops, "get_zephyr_class", &["MOIRA*"]).unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn bad_ace_rejected() {
        let (mut s, r, ops) = setup();
        assert_eq!(
            run(
                &mut s,
                &r,
                &ops,
                "add_zephyr_class",
                &["X", "LIST", "nolist", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",]
            )
            .unwrap_err(),
            MrError::Ace
        );
    }

    #[test]
    fn wildcard_retrieval() {
        let (mut s, r, ops) = setup();
        for cls in ["MOIRA", "MESSAGE"] {
            run(
                &mut s,
                &r,
                &ops,
                "add_zephyr_class",
                &[
                    cls, "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
                ],
            )
            .unwrap();
        }
        assert_eq!(
            run(&mut s, &r, &ops, "get_zephyr_class", &["M*"])
                .unwrap()
                .len(),
            2
        );
    }
}
