//! `get_server_statistics` — the wire-level view of the obs registry.
//!
//! The paper's server "logs all transactions which modify the database";
//! this query exposes the live measurement substrate over the same RPC
//! surface as every other retrieve: dispatch counters per tier, shed and
//! deadlock counts, latency/wait histograms as derived quantile rows, and
//! the DCM's transfer byte counters — whatever the registry currently
//! holds, flattened to `(statistic, value)` tuples.

use moira_common::errors::MrResult;

use crate::registry::{AccessRule, Handler, QueryHandle, QueryKind, Registry};
use crate::state::{Caller, MoiraState};

/// Registers the statistics query.
pub fn register(r: &mut Registry) {
    let qs: &[QueryHandle] = &[QueryHandle {
        name: "get_server_statistics",
        shortname: "gsta",
        kind: QueryKind::Retrieve,
        access: AccessRule::Public,
        args: &[],
        returns: &["statistic", "value"],
        handler: Handler::Read(get_server_statistics),
    }];
    for q in qs {
        r.register(*q);
    }
}

fn get_server_statistics(
    state: &MoiraState,
    _c: &Caller,
    _a: &[String],
) -> MrResult<Vec<Vec<String>>> {
    Ok(state
        .obs
        .snapshot()
        .rows()
        .into_iter()
        .map(|(statistic, value)| vec![statistic, value])
        .collect())
}

#[cfg(test)]
mod tests {
    use moira_common::VClock;

    use crate::state::{Caller, MoiraState};

    #[test]
    fn statistics_reflect_the_obs_registry() {
        let r = crate::registry::Registry::standard();
        let mut s = MoiraState::new(VClock::new());
        s.obs.counter("server.reads_dispatched").add(3);
        s.obs.histogram("server.latency.read").record(1500);
        let journal_before = s.journal.len();
        let rows = r
            .execute(
                &mut s,
                &Caller::anonymous("stats"),
                "get_server_statistics",
                &[],
            )
            .unwrap();
        let find = |name: &str| {
            rows.iter()
                .find(|row| row[0] == name)
                .unwrap_or_else(|| panic!("row {name} missing"))[1]
                .clone()
        };
        assert_eq!(find("server.reads_dispatched"), "3");
        assert_eq!(find("server.latency.read.count"), "1");
        assert_eq!(find("server.latency.read.max_ns"), "1500");
        // Public access: anonymous retrieval succeeds (asserted by the
        // unwraps above), and the query is journal-exempt.
        assert_eq!(s.journal.len(), journal_before);
    }
}
