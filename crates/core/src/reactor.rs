//! Readiness event collection for the server loop.
//!
//! The reactor is the thin layer between the OS selector (`polling`'s
//! epoll/kqueue/poll(2) shim) and [`crate::server::MoiraServer`]'s
//! classify-and-dispatch pass. It owns the `Poller`, tracks nothing about
//! connections beyond their registered keys, and hands the server a
//! [`ReadySet`] per wait: which keys are readable, which are writable,
//! and whether the listener has pending accepts.
//!
//! Two properties matter to the rest of the server:
//!
//! - **Level-triggered.** A key stays ready until its condition is
//!   drained, so a pass that leaves bytes behind (frame still partial,
//!   outbox still full) is re-woken on the next wait without bookkeeping.
//! - **Degradation, not failure.** If the OS selector cannot be opened
//!   (non-Unix builds) or an fd cannot be registered, the reactor reports
//!   it and the server falls back to scanning those connections each
//!   pass with a clamped wait — slower, never wrong.
//!
//! The reactor wait is the loop's only blocking point, and it blocks with
//! a timeout while holding **no** locks; `moira-lint`'s
//! reactor-discipline pass enforces that no `SharedState` guard is live
//! across it.

use std::sync::Arc;
use std::time::Duration;

use polling::{Event, Events, Poller};

/// Registration key reserved for the TCP listener. Connection keys are
/// allocated monotonically from zero and can never collide with it.
pub(crate) const LISTENER_KEY: usize = usize::MAX - 1;

/// What one reactor wait observed.
#[derive(Debug, Default)]
pub(crate) struct ReadySet {
    /// The listener has connections to accept.
    pub listener: bool,
    /// Registration keys with bytes (or EOF/errors) to read.
    pub readable: Vec<usize>,
    /// Registration keys whose sockets can take queued output.
    pub writable: Vec<usize>,
}

/// Wakes a [`Reactor`] blocked in its wait, from any thread.
///
/// Cloneable and cheap; used by the in-process `ServerThread` driver to
/// signal attach/stop without the loop having to poll a command queue on
/// a timer.
#[derive(Clone)]
pub struct Waker {
    poller: Option<Arc<Poller>>,
}

impl Waker {
    /// Interrupts the current (or next) reactor wait. A no-op without an
    /// OS selector — there the loop already ticks on a clamped timeout.
    pub fn wake(&self) {
        if let Some(p) = &self.poller {
            let _ = p.notify();
        }
    }
}

/// The server loop's event source.
pub(crate) struct Reactor {
    poller: Option<Arc<Poller>>,
    events: Events,
}

impl Reactor {
    /// Opens the OS selector; degrades to selector-less (scan) mode if
    /// the platform has none.
    pub fn new() -> Reactor {
        Reactor {
            poller: Poller::new().ok().map(Arc::new),
            events: Events::new(),
        }
    }

    /// True when an OS selector is available and registrations can work.
    pub fn has_poller(&self) -> bool {
        self.poller.is_some()
    }

    /// A handle that can interrupt this reactor's wait from other threads.
    pub fn waker(&self) -> Waker {
        Waker {
            poller: self.poller.clone(),
        }
    }

    /// Registers `fd` under `key`. Returns false when the fd could not be
    /// registered — the caller must then scan that source itself.
    pub fn register(&self, fd: polling::RawFd, key: usize, read: bool, write: bool) -> bool {
        match &self.poller {
            Some(p) => p
                .add(
                    fd,
                    Event {
                        key,
                        readable: read,
                        writable: write,
                    },
                )
                .is_ok(),
            None => false,
        }
    }

    /// Replaces the interest of a registered fd (backpressure pause and
    /// resume, write-interest toggling).
    pub fn update(&self, fd: polling::RawFd, key: usize, read: bool, write: bool) {
        if let Some(p) = &self.poller {
            let _ = p.modify(
                fd,
                Event {
                    key,
                    readable: read,
                    writable: write,
                },
            );
        }
    }

    /// Removes a registered fd (connection teardown).
    pub fn deregister(&self, fd: polling::RawFd) {
        if let Some(p) = &self.poller {
            let _ = p.delete(fd);
        }
    }

    /// Blocks until something is ready, the timeout lapses, or a [`Waker`]
    /// fires; returns the observed readiness. Without an OS selector this
    /// returns an empty set immediately and the caller scans instead
    /// (sleeping for pacing is the caller's choice, made *after* it knows
    /// whether the scan produced work).
    pub fn wait(&mut self, timeout: Option<Duration>) -> ReadySet {
        let mut ready = ReadySet::default();
        let Some(poller) = &self.poller else {
            return ready;
        };
        if poller.wait(&mut self.events, timeout).is_err() {
            return ready;
        }
        for ev in self.events.iter() {
            if ev.key == LISTENER_KEY {
                ready.listener = true;
                continue;
            }
            if ev.readable {
                ready.readable.push(ev.key);
            }
            if ev.writable {
                ready.writable.push(ev.key);
            }
        }
        ready
    }
}
