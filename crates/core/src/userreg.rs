//! The registration server (§5.10).
//!
//! "A new student must be able to get an athena account without any
//! intervention from Athena user accounts staff." The registration server
//! answers three requests — Verify User, Grab Login, Set Password — each
//! authenticated by an encrypted form of the student's ID number: the
//! plaintext ID (hyphens removed) with its `crypt()` hash appended, the
//! whole quantity encrypted in error-propagating CBC mode using the hashed
//! ID as the key.

use std::sync::Arc;

use moira_common::errors::MrError;
use moira_db::Pred;
use moira_krb::cipher::{pcbc_decrypt, pcbc_encrypt, Key};
use moira_krb::crypt::hash_mit_id;
use moira_krb::realm::Kdc;

use crate::registry::Registry;
use crate::schema::user_status;
use crate::state::{Caller, MoiraState, SharedState};

/// The student filesystem-type bit (`MR_FS_STUDENT`).
pub const MR_FS_STUDENT: i64 = 1 << 0;
/// The faculty filesystem-type bit.
pub const MR_FS_FACULTY: i64 = 1 << 1;
/// The staff filesystem-type bit.
pub const MR_FS_STAFF: i64 = 1 << 2;
/// The miscellaneous filesystem-type bit.
pub const MR_FS_MISC: i64 = 1 << 3;

/// A request to the registration server.
#[derive(Debug, Clone)]
pub enum RegRequest {
    /// Is this student known, and what is their status?
    VerifyUser {
        /// Student's first name.
        first: String,
        /// Student's last name.
        last: String,
        /// `{IDnumber, hashIDnumber}` sealed under the hashed ID.
        authenticator: Vec<u8>,
    },
    /// Assign a login name (and reserve it with Kerberos).
    GrabLogin {
        /// Student's first name.
        first: String,
        /// Student's last name.
        last: String,
        /// `{IDnumber, hashIDnumber, login}` sealed under the hashed ID.
        authenticator: Vec<u8>,
    },
    /// Set the Kerberos password for the student's new principal.
    SetPassword {
        /// Student's first name.
        first: String,
        /// Student's last name.
        last: String,
        /// `{IDnumber, hashIDnumber, password}` sealed under the hashed ID.
        authenticator: Vec<u8>,
    },
}

/// Replies from the registration server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegReply {
    /// Request succeeded; for VerifyUser carries the account status.
    Ok(i64),
    /// The student is not in the registrar's records.
    NotFound,
    /// The account already has a login / is past this step.
    AlreadyRegistered,
    /// The desired login name is taken.
    LoginTaken,
    /// The authenticator failed to verify.
    BadAuthenticator,
    /// Some other Moira error, by code.
    Error(i32),
}

/// Builds a registration authenticator as userreg does: the digits of the
/// ID with the hashed ID appended (plus an optional extra argument),
/// PCBC-encrypted under the hashed ID.
pub fn make_authenticator(
    id_number: &str,
    first: &str,
    last: &str,
    extra: Option<&str>,
) -> Vec<u8> {
    let hashed = hash_mit_id(id_number, first, last);
    let digits: String = id_number.chars().filter(|c| c.is_ascii_digit()).collect();
    let payload = match extra {
        Some(e) => format!("{digits}\n{hashed}\n{e}"),
        None => format!("{digits}\n{hashed}"),
    };
    pcbc_encrypt(Key::from_bytes(hashed.as_bytes()), payload.as_bytes())
}

/// The registration server: listens (conceptually on its well-known UDP
/// port) for the three request types.
pub struct RegistrationServer {
    state: SharedState,
    registry: Arc<Registry>,
    kdc: Arc<Kdc>,
    /// Filesystem type assigned to self-registered accounts.
    pub fstype: i64,
}

impl RegistrationServer {
    /// Creates a registration server bound to shared Moira state and the
    /// realm's KDC (reached over the srvtab-srvtab channel in the paper).
    pub fn new(state: SharedState, registry: Arc<Registry>, kdc: Arc<Kdc>) -> Self {
        RegistrationServer {
            state,
            registry,
            kdc,
            fstype: MR_FS_STUDENT,
        }
    }

    /// Finds the user row for (first, last) and verifies the authenticator
    /// against the stored encrypted ID. Returns `(row, extra, login)`.
    fn verify(
        &self,
        state: &MoiraState,
        first: &str,
        last: &str,
        authenticator: &[u8],
    ) -> Result<(moira_db::RowId, Option<String>), RegReply> {
        let rows = state.db.select(
            "users",
            &Pred::Eq("first", first.into()).and(Pred::Eq("last", last.into())),
        );
        if rows.is_empty() {
            return Err(RegReply::NotFound);
        }
        // Several students may share a name; the authenticator (keyed by
        // each one's hashed ID) disambiguates.
        for &row in &rows {
            let stored_hash = state.db.cell("users", row, "mit_id").as_str().to_owned();
            if stored_hash.is_empty() {
                continue;
            }
            let Some(plain) = pcbc_decrypt(Key::from_bytes(stored_hash.as_bytes()), authenticator)
            else {
                continue;
            };
            let Ok(text) = String::from_utf8(plain) else {
                continue;
            };
            let mut parts = text.split('\n');
            let (Some(digits), Some(sent_hash)) = (parts.next(), parts.next()) else {
                continue;
            };
            if sent_hash != stored_hash {
                continue;
            }
            // "In all cases, the server first verifies the request by
            // decrypting the ID number."
            if hash_mit_id(digits, first, last) != stored_hash {
                continue;
            }
            let extra = parts.next().map(|s| s.to_owned());
            return Ok((row, extra));
        }
        Err(RegReply::BadAuthenticator)
    }

    /// Handles one request.
    pub fn handle(&self, request: &RegRequest) -> RegReply {
        match request {
            RegRequest::VerifyUser {
                first,
                last,
                authenticator,
            } => {
                let state = self.state.read();
                match self.verify(&state, first, last, authenticator) {
                    Ok((row, _)) => RegReply::Ok(state.db.cell("users", row, "status").as_int()),
                    Err(e) => e,
                }
            }
            RegRequest::GrabLogin {
                first,
                last,
                authenticator,
            } => self.grab_login(first, last, authenticator),
            RegRequest::SetPassword {
                first,
                last,
                authenticator,
            } => self.set_password(first, last, authenticator),
        }
    }

    fn grab_login(&self, first: &str, last: &str, authenticator: &[u8]) -> RegReply {
        let mut state = self.state.write();
        let (row, extra) = match self.verify(&state, first, last, authenticator) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let Some(login) = extra else {
            return RegReply::BadAuthenticator;
        };
        let status = state.db.cell("users", row, "status").as_int();
        if status != user_status::REGISTERABLE {
            return RegReply::AlreadyRegistered;
        }
        // Two-step availability check, as userreg does: the Kerberos
        // database first, then Moira.
        if self.kdc.principal_exists(&login) {
            return RegReply::LoginTaken;
        }
        let uid = state.db.cell("users", row, "uid").as_int();
        let caller = Caller::new("register", "userreg");
        let result = self.registry.execute(
            &mut state,
            &caller,
            "register_user",
            &[uid.to_string(), login.clone(), self.fstype.to_string()],
        );
        match result {
            Ok(_) => {
                // "If this succeeds, it then reserves the name with
                // kerberos as well."
                let _ = self.kdc.register(&login, &format!("*reserved*{uid}*"));
                RegReply::Ok(user_status::HALF_REGISTERED)
            }
            Err(MrError::InUse) => RegReply::LoginTaken,
            Err(e) => RegReply::Error(e.code()),
        }
    }

    fn set_password(&self, first: &str, last: &str, authenticator: &[u8]) -> RegReply {
        let state = self.state.read();
        let (row, extra) = match self.verify(&state, first, last, authenticator) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let Some(password) = extra else {
            return RegReply::BadAuthenticator;
        };
        let status = state.db.cell("users", row, "status").as_int();
        if status != user_status::HALF_REGISTERED {
            return RegReply::Error(MrError::NotRegisterable.code());
        }
        let login = state.db.cell("users", row, "login").as_str().to_owned();
        match self.kdc.set_password(&login, &password) {
            Ok(()) => RegReply::Ok(status),
            Err(_) => RegReply::Error(MrError::AuthFailure.code()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};

    /// Builds a state with registration infrastructure (POP server, NFS
    /// partition) and one registerable student.
    fn setup() -> (RegistrationServer, SharedState, Arc<Kdc>) {
        let (mut s, _) = state_with_admin("ops");
        let registry = Arc::new(Registry::standard());
        let pop = add_test_machine(&mut s, "E40-PO");
        let nfs = add_test_machine(&mut s, "CHARON");
        s.db.append(
            "serverhosts",
            vec![
                "POP".into(),
                pop.into(),
                true.into(),
                false.into(),
                false.into(),
                false.into(),
                0.into(),
                "".into(),
                0.into(),
                0.into(),
                0.into(),
                500.into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        s.db.append(
            "nfsphys",
            vec![
                1.into(),
                nfs.into(),
                "/u1/lockers".into(),
                "ra0c".into(),
                MR_FS_STUDENT.into(),
                0.into(),
                100_000.into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        // The registrar's tape: a student record with hashed ID, no login.
        let hashed = hash_mit_id("123-45-6789", "Martin", "Zimmermann");
        let caller = Caller::root("registrar");
        registry
            .execute(
                &mut s,
                &caller,
                "add_user",
                &[
                    "#".into(),
                    "UNIQUE_UID".into(),
                    "/bin/csh".into(),
                    "Zimmermann".into(),
                    "Martin".into(),
                    "".into(),
                    "0".into(),
                    hashed,
                    "1990".into(),
                ],
            )
            .unwrap();
        let clock = s.db.clock().clone();
        let state = crate::state::shared(s);
        let kdc = Arc::new(Kdc::new(clock));
        kdc.register_service("moira").unwrap();
        let server = RegistrationServer::new(state.clone(), registry, kdc.clone());
        (server, state, kdc)
    }

    fn auth(extra: Option<&str>) -> Vec<u8> {
        make_authenticator("123-45-6789", "Martin", "Zimmermann", extra)
    }

    #[test]
    fn full_registration_flow() {
        let (server, state, kdc) = setup();
        // Verify: found, registerable.
        let reply = server.handle(&RegRequest::VerifyUser {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(None),
        });
        assert_eq!(reply, RegReply::Ok(0));
        // Grab the login.
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("kazimi")),
        });
        assert_eq!(reply, RegReply::Ok(user_status::HALF_REGISTERED));
        assert!(kdc.principal_exists("kazimi"));
        // Set the password.
        let reply = server.handle(&RegRequest::SetPassword {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("hunter2")),
        });
        assert_eq!(reply, RegReply::Ok(user_status::HALF_REGISTERED));
        // The password now works for initial tickets.
        assert!(kdc.initial_ticket("kazimi", "hunter2", "moira").is_ok());
        // Moira shows the account half-registered with resources allocated.
        let s = state.read();
        let row =
            s.db.table("users")
                .select_one(&Pred::Eq("login", "kazimi".into()))
                .unwrap();
        assert_eq!(
            s.db.cell("users", row, "status").as_int(),
            user_status::HALF_REGISTERED
        );
        assert!(s
            .db
            .table("filesys")
            .select_one(&Pred::Eq("label", "kazimi".into()))
            .is_some());
    }

    #[test]
    fn unknown_student_not_found() {
        let (server, _, _) = setup();
        let reply = server.handle(&RegRequest::VerifyUser {
            first: "Nobody".into(),
            last: "Here".into(),
            authenticator: make_authenticator("111-11-1111", "Nobody", "Here", None),
        });
        assert_eq!(reply, RegReply::NotFound);
    }

    #[test]
    fn wrong_id_rejected() {
        let (server, _, _) = setup();
        let reply = server.handle(&RegRequest::VerifyUser {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: make_authenticator("999-99-9999", "Martin", "Zimmermann", None),
        });
        assert_eq!(reply, RegReply::BadAuthenticator);
    }

    #[test]
    fn tampered_authenticator_rejected() {
        let (server, _, _) = setup();
        let mut bad = auth(Some("kazimi"));
        let len = bad.len();
        bad[len / 2] ^= 0x10;
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: bad,
        });
        assert_eq!(reply, RegReply::BadAuthenticator);
    }

    #[test]
    fn login_collision_reported() {
        let (server, state, kdc) = setup();
        kdc.register("wanted", "pw").unwrap();
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("wanted")),
        });
        assert_eq!(reply, RegReply::LoginTaken);
        // Status unchanged, so the student can try another name.
        {
            let s = state.read();
            let row =
                s.db.table("users")
                    .select_one(&Pred::Eq("last", "Zimmermann".into()))
                    .unwrap();
            assert_eq!(s.db.cell("users", row, "status").as_int(), 0);
        }
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("kazimi")),
        });
        assert_eq!(reply, RegReply::Ok(user_status::HALF_REGISTERED));
    }

    #[test]
    fn double_registration_rejected() {
        let (server, _, _) = setup();
        server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("kazimi")),
        });
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("kazimi2")),
        });
        assert_eq!(reply, RegReply::AlreadyRegistered);
    }

    #[test]
    fn set_password_requires_half_registered() {
        let (server, _, _) = setup();
        let reply = server.handle(&RegRequest::SetPassword {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: auth(Some("pw")),
        });
        assert_eq!(reply, RegReply::Error(MrError::NotRegisterable.code()));
    }

    #[test]
    fn name_collision_disambiguated_by_id() {
        let (server, state, _) = setup();
        // A second Martin Zimmermann with a different ID.
        {
            let mut s = state.write();
            let hashed = hash_mit_id("555-55-5555", "Martin", "Zimmermann");
            let caller = Caller::root("registrar");
            server
                .registry
                .execute(
                    &mut s,
                    &caller,
                    "add_user",
                    &[
                        "#".into(),
                        "UNIQUE_UID".into(),
                        "/bin/csh".into(),
                        "Zimmermann".into(),
                        "Martin".into(),
                        "".into(),
                        "0".into(),
                        hashed,
                        "1991".into(),
                    ],
                )
                .unwrap();
        }
        let reply = server.handle(&RegRequest::GrabLogin {
            first: "Martin".into(),
            last: "Zimmermann".into(),
            authenticator: make_authenticator("555-55-5555", "Martin", "Zimmermann", Some("mzim2")),
        });
        assert_eq!(reply, RegReply::Ok(user_status::HALF_REGISTERED));
        let s = state.read();
        let row =
            s.db.table("users")
                .select_one(&Pred::Eq("login", "mzim2".into()))
                .unwrap();
        assert_eq!(s.db.cell("users", row, "mit_year").as_str(), "1991");
    }
}

/// The datagram wire format for the registration protocol — the server
/// "listens on a well known UDP port for user registration requests".
///
/// ```text
/// request  := u8 opcode (1 verify, 2 grab, 3 set_password)
///           | u16 first len | first | u16 last len | last
///           | u16 auth len  | authenticator
/// reply    := u8 code | i64 value (status or error code, big-endian)
/// ```
pub mod wire {
    use super::{RegReply, RegRequest};

    /// The registration server's well-known UDP port.
    pub const USERREG_PORT: u16 = 779;

    fn put_counted(buf: &mut Vec<u8>, data: &[u8]) {
        buf.extend_from_slice(&(data.len() as u16).to_be_bytes());
        buf.extend_from_slice(data);
    }

    fn get_counted<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
        if buf.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + len {
            return None;
        }
        let (data, rest) = buf[2..].split_at(len);
        *buf = rest;
        Some(data)
    }

    /// Encodes a request datagram.
    pub fn encode_request(request: &RegRequest) -> Vec<u8> {
        let (opcode, first, last, auth) = match request {
            RegRequest::VerifyUser {
                first,
                last,
                authenticator,
            } => (1u8, first, last, authenticator),
            RegRequest::GrabLogin {
                first,
                last,
                authenticator,
            } => (2, first, last, authenticator),
            RegRequest::SetPassword {
                first,
                last,
                authenticator,
            } => (3, first, last, authenticator),
        };
        let mut buf = vec![opcode];
        put_counted(&mut buf, first.as_bytes());
        put_counted(&mut buf, last.as_bytes());
        put_counted(&mut buf, auth);
        buf
    }

    /// Decodes a request datagram; `None` on any framing violation (the
    /// server silently drops malformed datagrams, as UDP services do).
    pub fn decode_request(datagram: &[u8]) -> Option<RegRequest> {
        let (&opcode, mut rest) = datagram.split_first()?;
        let first = String::from_utf8(get_counted(&mut rest)?.to_vec()).ok()?;
        let last = String::from_utf8(get_counted(&mut rest)?.to_vec()).ok()?;
        let authenticator = get_counted(&mut rest)?.to_vec();
        if !rest.is_empty() {
            return None;
        }
        Some(match opcode {
            1 => RegRequest::VerifyUser {
                first,
                last,
                authenticator,
            },
            2 => RegRequest::GrabLogin {
                first,
                last,
                authenticator,
            },
            3 => RegRequest::SetPassword {
                first,
                last,
                authenticator,
            },
            _ => return None,
        })
    }

    /// Encodes a reply datagram.
    pub fn encode_reply(reply: &RegReply) -> Vec<u8> {
        let (code, value): (u8, i64) = match reply {
            RegReply::Ok(status) => (0, *status),
            RegReply::NotFound => (1, 0),
            RegReply::AlreadyRegistered => (2, 0),
            RegReply::LoginTaken => (3, 0),
            RegReply::BadAuthenticator => (4, 0),
            RegReply::Error(e) => (5, *e as i64),
        };
        let mut buf = vec![code];
        buf.extend_from_slice(&value.to_be_bytes());
        buf
    }

    /// Decodes a reply datagram.
    pub fn decode_reply(datagram: &[u8]) -> Option<RegReply> {
        if datagram.len() != 9 {
            return None;
        }
        let value = i64::from_be_bytes(datagram[1..9].try_into().ok()?);
        Some(match datagram[0] {
            0 => RegReply::Ok(value),
            1 => RegReply::NotFound,
            2 => RegReply::AlreadyRegistered,
            3 => RegReply::LoginTaken,
            4 => RegReply::BadAuthenticator,
            5 => RegReply::Error(value as i32),
            _ => return None,
        })
    }
}

/// A lossy-datagram channel to the registration server, with the client
/// retry discipline UDP demands.
pub struct UdpChannel<'a> {
    server: &'a RegistrationServer,
    /// Drops every n-th request datagram when set (failure injection).
    pub drop_every: Option<u64>,
    /// Processes the request but drops every n-th *reply* (the ambiguous
    /// case: the server acted, the client cannot know).
    pub drop_replies_every: Option<u64>,
    sent: u64,
}

impl<'a> UdpChannel<'a> {
    /// Opens a channel to the server.
    pub fn new(server: &'a RegistrationServer) -> UdpChannel<'a> {
        UdpChannel {
            server,
            drop_every: None,
            drop_replies_every: None,
            sent: 0,
        }
    }

    /// Sends one datagram; `None` models a lost packet (no reply before
    /// the client times out).
    pub fn send(&mut self, datagram: &[u8]) -> Option<Vec<u8>> {
        self.sent += 1;
        if let Some(n) = self.drop_every {
            if self.sent.is_multiple_of(n) {
                return None;
            }
        }
        let request = wire::decode_request(datagram)?;
        let reply = wire::encode_reply(&self.server.handle(&request));
        if let Some(n) = self.drop_replies_every {
            if self.sent.is_multiple_of(n) {
                return None;
            }
        }
        Some(reply)
    }

    /// Sends with up to `tries` retransmissions — the userreg client's
    /// loop. A `GrabLogin` retransmitted after the original succeeded comes
    /// back `AlreadyRegistered`; the client treats that as success, which
    /// is safe because the authenticator proved the same student asked.
    pub fn request_with_retries(&mut self, request: &RegRequest, tries: u32) -> Option<RegReply> {
        let datagram = wire::encode_request(request);
        for attempt in 0..tries {
            if let Some(reply) = self.send(&datagram) {
                let reply = wire::decode_reply(&reply)?;
                if attempt > 0
                    && matches!(request, RegRequest::GrabLogin { .. })
                    && reply == RegReply::AlreadyRegistered
                {
                    return Some(RegReply::Ok(crate::schema::user_status::HALF_REGISTERED));
                }
                return Some(reply);
            }
        }
        None
    }
}

#[cfg(test)]
mod wire_tests {
    use super::wire::*;
    use super::*;
    use crate::queries::testutil::{add_test_machine, state_with_admin};

    fn request_samples() -> Vec<RegRequest> {
        let auth = make_authenticator("123-45-6789", "A", "B", Some("extra"));
        vec![
            RegRequest::VerifyUser {
                first: "A".into(),
                last: "B".into(),
                authenticator: auth.clone(),
            },
            RegRequest::GrabLogin {
                first: "A".into(),
                last: "B".into(),
                authenticator: auth.clone(),
            },
            RegRequest::SetPassword {
                first: "Ünïcode".into(),
                last: "Nom".into(),
                authenticator: auth,
            },
        ]
    }

    #[test]
    fn request_datagrams_round_trip() {
        for request in request_samples() {
            let datagram = encode_request(&request);
            let back = decode_request(&datagram).expect("round trip");
            assert_eq!(encode_request(&back), datagram);
        }
    }

    #[test]
    fn reply_datagrams_round_trip() {
        for reply in [
            RegReply::Ok(0),
            RegReply::Ok(2),
            RegReply::NotFound,
            RegReply::AlreadyRegistered,
            RegReply::LoginTaken,
            RegReply::BadAuthenticator,
            RegReply::Error(-12345),
        ] {
            assert_eq!(decode_reply(&encode_reply(&reply)), Some(reply));
        }
    }

    #[test]
    fn malformed_datagrams_dropped() {
        assert!(decode_request(&[]).is_none());
        assert!(decode_request(&[9, 0, 1, b'x']).is_none());
        assert!(
            decode_request(&[1, 0, 5, b'x']).is_none(),
            "short counted string"
        );
        let mut valid = encode_request(&request_samples()[0]);
        valid.push(0);
        assert!(decode_request(&valid).is_none(), "trailing bytes rejected");
        assert!(decode_reply(&[0; 4]).is_none());
        assert!(decode_reply(&[200, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
    }

    /// A registration over a channel that drops every second datagram still
    /// completes, with the retransmit-after-success case mapped to Ok.
    #[test]
    fn lossy_udp_registration_converges() {
        let (mut s, _) = state_with_admin("ops");
        let registry = Arc::new(Registry::standard());
        let pop = add_test_machine(&mut s, "E40-PO");
        let nfs = add_test_machine(&mut s, "CHARON");
        s.db.append(
            "serverhosts",
            vec![
                "POP".into(),
                pop.into(),
                true.into(),
                false.into(),
                false.into(),
                false.into(),
                0.into(),
                "".into(),
                0.into(),
                0.into(),
                0.into(),
                500.into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        s.db.append(
            "nfsphys",
            vec![
                1.into(),
                nfs.into(),
                "/u1/lockers".into(),
                "ra0c".into(),
                MR_FS_STUDENT.into(),
                0.into(),
                100_000.into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        let hashed = hash_mit_id("123-45-6789", "Lossy", "Student");
        registry
            .execute(
                &mut s,
                &Caller::root("registrar"),
                "add_user",
                &[
                    "#".into(),
                    "UNIQUE_UID".into(),
                    "/bin/csh".into(),
                    "Student".into(),
                    "Lossy".into(),
                    "".into(),
                    "0".into(),
                    hashed,
                    "1990".into(),
                ],
            )
            .unwrap();
        let clock = s.db.clock().clone();
        let state = crate::state::shared(s);
        let kdc = Arc::new(Kdc::new(clock));
        let server = RegistrationServer::new(state, registry, kdc.clone());

        let mut chan = UdpChannel::new(&server);
        chan.drop_every = Some(2); // half the datagrams vanish

        let auth =
            |extra: Option<&str>| make_authenticator("123-45-6789", "Lossy", "Student", extra);
        let verify = chan
            .request_with_retries(
                &RegRequest::VerifyUser {
                    first: "Lossy".into(),
                    last: "Student".into(),
                    authenticator: auth(None),
                },
                5,
            )
            .expect("retries beat the loss");
        assert_eq!(verify, RegReply::Ok(0));
        let grab = chan
            .request_with_retries(
                &RegRequest::GrabLogin {
                    first: "Lossy".into(),
                    last: "Student".into(),
                    authenticator: auth(Some("lossyreg")),
                },
                5,
            )
            .expect("retries beat the loss");
        assert!(matches!(grab, RegReply::Ok(_)), "{grab:?}");
        assert!(kdc.principal_exists("lossyreg"));
        let setpw = chan
            .request_with_retries(
                &RegRequest::SetPassword {
                    first: "Lossy".into(),
                    last: "Student".into(),
                    authenticator: auth(Some("hunter2")),
                },
                5,
            )
            .expect("retries beat the loss");
        assert!(matches!(setpw, RegReply::Ok(_)));
    }

    /// The ambiguous UDP case: the grab succeeded but its reply was lost;
    /// the retransmission comes back AlreadyRegistered and the client maps
    /// it to success.
    #[test]
    fn lost_reply_after_successful_grab_maps_to_ok() {
        let (mut s, _) = state_with_admin("ops");
        let registry = Arc::new(Registry::standard());
        let pop = add_test_machine(&mut s, "E40-PO");
        let nfs = add_test_machine(&mut s, "CHARON");
        s.db.append(
            "serverhosts",
            vec![
                "POP".into(),
                pop.into(),
                true.into(),
                false.into(),
                false.into(),
                false.into(),
                0.into(),
                "".into(),
                0.into(),
                0.into(),
                0.into(),
                500.into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        s.db.append(
            "nfsphys",
            vec![
                1.into(),
                nfs.into(),
                "/u1/lockers".into(),
                "ra0c".into(),
                MR_FS_STUDENT.into(),
                0.into(),
                100_000.into(),
                0.into(),
                "t".into(),
                "t".into(),
            ],
        )
        .unwrap();
        let hashed = hash_mit_id("555-55-5555", "Ambig", "Student");
        registry
            .execute(
                &mut s,
                &Caller::root("registrar"),
                "add_user",
                &[
                    "#".into(),
                    "UNIQUE_UID".into(),
                    "/bin/csh".into(),
                    "Student".into(),
                    "Ambig".into(),
                    "".into(),
                    "0".into(),
                    hashed,
                    "1990".into(),
                ],
            )
            .unwrap();
        let clock = s.db.clock().clone();
        let state = crate::state::shared(s);
        let kdc = Arc::new(Kdc::new(clock));
        let server = RegistrationServer::new(state, registry, kdc.clone());
        let mut chan = UdpChannel::new(&server);
        // The very first reply is lost (after processing).
        chan.drop_replies_every = Some(1);
        let grab = RegRequest::GrabLogin {
            first: "Ambig".into(),
            last: "Student".into(),
            authenticator: make_authenticator("555-55-5555", "Ambig", "Student", Some("ambig")),
        };
        assert!(chan.request_with_retries(&grab, 1).is_none(), "reply lost");
        assert!(kdc.principal_exists("ambig"), "but the server acted");
        // Healing the reply path, the retransmission reports
        // AlreadyRegistered, which the client maps to Ok.
        chan.drop_replies_every = None;
        let reply = chan.request_with_retries(&grab, 2).unwrap();
        // First attempt delivers AlreadyRegistered (attempt 0 → surfaced
        // raw); a client that timed out earlier retries, so simulate the
        // retry path directly too.
        assert!(
            reply == RegReply::AlreadyRegistered
                || reply == RegReply::Ok(user_status::HALF_REGISTERED)
        );
    }

    /// Total loss surfaces as a client-visible timeout.
    #[test]
    fn total_loss_times_out() {
        let (s, _) = state_with_admin("ops");
        let clock = s.db.clock().clone();
        let state = crate::state::shared(s);
        let server = RegistrationServer::new(
            state,
            Arc::new(Registry::standard()),
            Arc::new(Kdc::new(clock)),
        );
        let mut chan = UdpChannel::new(&server);
        chan.drop_every = Some(1);
        let reply = chan.request_with_retries(
            &RegRequest::VerifyUser {
                first: "X".into(),
                last: "Y".into(),
                authenticator: vec![],
            },
            4,
        );
        assert!(reply.is_none());
    }
}
