//! Durable boot: open the storage engine, rebuild state, replay the WAL.
//!
//! The recovery contract the torture tests enforce:
//!
//! - **Byte-identical convergence.** A server that crashed at any point
//!   and recovered, then re-ran the mutations the crash swallowed, reaches
//!   exactly the state of a server that never crashed — same row slots,
//!   same generation stamps, same free-list order.
//! - **Epoch continuity.** The recovered database keeps the epoch it had
//!   before the crash, so [`moira_db::GenCursor`]s cut before the crash
//!   remain valid and the delta-DCM resumes with incremental patches
//!   instead of full rebuilds.
//! - **History is not re-litigated.** WAL replay goes through
//!   [`Registry::replay`], which skips ACL enforcement: the entries were
//!   authorized when they committed.
//!
//! Replay runs with the state's default [`moira_db::storage::NullStorage`]
//! installed; the durable engine is only attached afterwards, so recovered
//! entries are never re-appended to the log they came from.

use moira_common::clock::VClock;
use moira_common::errors::{MrError, MrResult};
use moira_db::storage::{DurableEngine, GroupCommitConfig, Media, Storage};
use moira_db::wal::WalScan;
use moira_db::Database;

use crate::registry::Registry;
use crate::schema;
use crate::state::MoiraState;

/// What a durable boot did.
#[derive(Debug, Clone, Copy, Default)]
pub struct BootReport {
    /// False on first boot (no prior durable state existed).
    pub recovered: bool,
    /// Journal entries restored directly from the snapshot document.
    pub snapshot_entries: usize,
    /// WAL entries replayed on top of the snapshot.
    pub replayed: usize,
    /// What the WAL scan saw (clean frames, torn-tail truncation).
    pub scan: WalScan,
    /// Epoch of the booted database.
    pub epoch: u64,
}

/// Boots a server state from durable media.
///
/// First boot (no snapshot, no WAL) seeds a fresh state and immediately
/// seals an initial snapshot so the epoch is on disk from the start. A
/// recovering boot loads the snapshot, replays the surviving WAL tail
/// through `registry`, re-seals, and reports what happened.
pub fn boot_durable(
    clock: VClock,
    registry: &Registry,
    media: Box<dyn Media>,
    config: GroupCommitConfig,
) -> MrResult<(MoiraState, BootReport)> {
    let (mut engine, image) = DurableEngine::open(media, config)?;
    let mut report = BootReport {
        recovered: image.is_some(),
        ..BootReport::default()
    };
    let mut state = match image {
        None => MoiraState::new(clock),
        Some(image) => {
            report.scan = image.scan;
            let mut state = match image.snapshot {
                Some(snap) => {
                    clock.set(snap.now);
                    let mut db = Database::recovered(clock.clone(), snap.epoch);
                    schema::create_all_tables(&mut db);
                    snap.apply(&mut db)?;
                    report.snapshot_entries = snap.journal.len();
                    MoiraState::recovered(db, snap.journal)
                }
                // Degraded path: a WAL with no snapshot (should not happen
                // — first boot seals one — but bytes on disk outrank
                // assumptions). Replay over a freshly seeded state; the
                // epoch is new, so DCM cursors rebuild from scratch.
                None => MoiraState::new(clock.clone()),
            };
            for entry in &image.wal {
                clock.set(entry.time);
                registry
                    .replay(&mut state, entry)
                    .map_err(|_| MrError::Durability)?;
                report.replayed += 1;
            }
            state
        }
    };
    engine.set_obs(&state.obs);
    // Seal what we have — on first boot this writes the epoch to disk; on
    // recovery it compacts the replayed tail into the snapshot.
    engine.snapshot(&state.db, &state.journal)?;
    report.epoch = state.db.epoch();
    state.storage = Box::new(engine);
    Ok((state, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Caller;
    use moira_db::storage::SimMedia;

    fn cfg() -> GroupCommitConfig {
        GroupCommitConfig {
            flush_interval_secs: 0,
            flush_bytes: usize::MAX,
            snapshot_every: 0,
        }
    }

    fn boot(media: &SimMedia, registry: &Registry) -> (MoiraState, BootReport) {
        boot_durable(VClock::new(), registry, Box::new(media.clone()), cfg()).expect("boot")
    }

    #[test]
    fn first_boot_seeds_and_seals() {
        let media = SimMedia::new();
        let registry = Registry::standard();
        let (state, report) = boot(&media, &registry);
        assert!(!report.recovered);
        assert_eq!(state.storage.kind(), "durable");
        assert!(state.get_value("dcm_enable").is_some(), "seeded");
        assert!(
            media.durable_bytes("snapshot.moira").is_some(),
            "initial snapshot sealed on disk"
        );
    }

    #[test]
    fn recovery_preserves_epoch_rows_and_journal() {
        let media = SimMedia::new();
        let registry = Registry::standard();
        let (mut state, _) = boot(&media, &registry);
        let epoch = state.db.epoch();
        let root = Caller::root("test");
        registry
            .execute(
                &mut state,
                &root,
                "add_machine",
                &["KIWI.MIT.EDU".into(), "VAX".into()],
            )
            .expect("mutation");
        let journal_len = state.journal.len();
        state.storage.flush().expect("flush");
        drop(state);

        media.power_cycle();
        let (state, report) = boot(&media, &registry);
        assert!(report.recovered);
        assert_eq!(report.replayed, 1, "one WAL entry after the seal");
        assert_eq!(state.db.epoch(), epoch, "epoch survives restart");
        assert_eq!(state.journal.len(), journal_len);
        let rows = registry
            .execute_read(&state, &root, "get_machine", &["KIWI.MIT.EDU".into()])
            .expect("machine recovered");
        assert_eq!(rows[0][0], "KIWI.MIT.EDU");
    }

    #[test]
    fn unflushed_tail_is_lost_but_state_is_consistent() {
        let media = SimMedia::new();
        let registry = Registry::standard();
        let (mut state, _) = boot(&media, &registry);
        let root = Caller::root("test");
        registry
            .execute(
                &mut state,
                &root,
                "add_machine",
                &["DURABLE.MIT.EDU".into(), "VAX".into()],
            )
            .expect("mutation");
        state.storage.flush().expect("flush");
        registry
            .execute(
                &mut state,
                &root,
                "add_machine",
                &["VOLATILE.MIT.EDU".into(), "VAX".into()],
            )
            .expect("mutation");
        // No flush: the second machine is buffered only.
        drop(state);
        media.power_cycle();
        let (state, report) = boot(&media, &registry);
        assert_eq!(report.replayed, 1);
        assert!(registry
            .execute_read(&state, &root, "get_machine", &["DURABLE.MIT.EDU".into()])
            .is_ok());
        assert_eq!(
            registry
                .execute_read(&state, &root, "get_machine", &["VOLATILE.MIT.EDU".into()])
                .unwrap_err(),
            MrError::NoMatch
        );
    }

    #[test]
    fn gencursor_cut_before_crash_is_valid_after_recovery() {
        let media = SimMedia::new();
        let registry = Registry::standard();
        let (mut state, _) = boot(&media, &registry);
        let root = Caller::root("test");
        registry
            .execute(
                &mut state,
                &root,
                "add_machine",
                &["CURSOR.MIT.EDU".into(), "VAX".into()],
            )
            .expect("mutation");
        let cursor = state.generation_cursor(&["machine"]);
        state.storage.flush().expect("flush");
        drop(state);
        media.power_cycle();
        let (mut state, _) = boot(&media, &registry);
        assert!(
            cursor.valid_for(&state.db),
            "pre-crash cursor remains valid: same epoch, generations moved only forward"
        );
        // And new mutations advance generations past the cursor, so a
        // delta scan sees exactly the post-crash changes.
        registry
            .execute(
                &mut state,
                &root,
                "add_machine",
                &["AFTER.MIT.EDU".into(), "VAX".into()],
            )
            .expect("mutation");
        assert!(cursor.valid_for(&state.db));
    }
}
