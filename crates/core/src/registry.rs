//! The query-handle registry.
//!
//! "All access to the database is provided through the application
//! library/database server interface. This interface provides a limited set
//! of predefined, named queries" (§7). Each handle carries its signature
//! (argument and return field names), its class (retrieve / append / update
//! / delete), its access rule, and the handler function. The server and the
//! application library are "designed to allow for the easy addition of
//! queries" — adding one here is a single [`Registry::register`] call.

use std::collections::HashMap;

use moira_common::errors::{MrError, MrResult};
use moira_db::journal::JournalEntry;

use crate::access;
use crate::state::{Caller, MoiraState};

/// The four classes of §7, plus the built-in specials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Reads data; journal-exempt, mostly ACL-exempt (§5.5).
    Retrieve,
    /// Adds records.
    Append,
    /// Modifies records.
    Update,
    /// Removes records.
    Delete,
    /// Built-in introspection (`_help`, `_list_queries`, `_list_users`).
    Special,
}

impl QueryKind {
    /// True for the side-effecting classes that are journaled and
    /// ACL-checked.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            QueryKind::Append | QueryKind::Update | QueryKind::Delete
        )
    }
}

/// How the registry gate decides access before invoking the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRule {
    /// Anyone, authenticated or not ("safe for this query's ACL to be the
    /// list containing everybody" — and cheaper).
    Public,
    /// Caller must hold the query's capability in CAPACLS.
    QueryAcl,
    /// Capability, or the caller *is* the login named by argument `n`
    /// ("this query may be executed by the target user").
    QueryAclOrSelf(usize),
    /// The handler enforces its own rule (list ACEs, public lists, …).
    Custom,
}

/// Handler signature: full state, caller, string arguments → tuples.
pub type Handler = fn(&mut MoiraState, &Caller, &[String]) -> MrResult<Vec<Vec<String>>>;

/// One predefined query.
#[derive(Clone, Copy)]
pub struct QueryHandle {
    /// Long name, e.g. `get_user_by_login`.
    pub name: &'static str,
    /// Four-character tag, e.g. `gubl` (the CAPACLS `tag`).
    pub shortname: &'static str,
    /// Query class.
    pub kind: QueryKind,
    /// Registry-level access rule.
    pub access: AccessRule,
    /// Argument names, defining the expected argument count.
    pub args: &'static [&'static str],
    /// Names of returned tuple fields (empty for non-retrieves).
    pub returns: &'static [&'static str],
    /// The implementation.
    pub handler: Handler,
}

/// The catalog of predefined queries.
pub struct Registry {
    handles: Vec<QueryHandle>,
    by_name: HashMap<&'static str, usize>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry {
            handles: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The full standard catalog of §7.
    pub fn standard() -> Registry {
        let mut r = Registry::empty();
        crate::queries::register_all(&mut r);
        r
    }

    /// Registers a handle under both its long and short names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — the catalog is static, so duplicates are
    /// build-time bugs.
    pub fn register(&mut self, handle: QueryHandle) {
        let idx = self.handles.len();
        assert!(
            self.by_name.insert(handle.name, idx).is_none(),
            "duplicate query {}",
            handle.name
        );
        assert!(
            self.by_name.insert(handle.shortname, idx).is_none(),
            "duplicate tag {}",
            handle.shortname
        );
        self.handles.push(handle);
    }

    /// Looks a query up by long or short name.
    pub fn get(&self, name: &str) -> Option<&QueryHandle> {
        self.by_name.get(name).map(|&i| &self.handles[i])
    }

    /// Every handle, in registration order.
    pub fn handles(&self) -> &[QueryHandle] {
        &self.handles
    }

    /// Number of registered query handles.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The access pre-check behind the `Access` major request: would this
    /// query be allowed? (Does not execute it.)
    pub fn check_access(
        &self,
        state: &mut MoiraState,
        caller: &Caller,
        name: &str,
        args: &[String],
    ) -> MrResult<()> {
        let handle = self.get(name).ok_or(MrError::NoHandle)?;
        if args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        access::enforce(state, caller, handle.access, handle.name, args)
    }

    /// Executes a query: arity check, access check, handler, and journaling
    /// of successful mutations.
    pub fn execute(
        &self,
        state: &mut MoiraState,
        caller: &Caller,
        name: &str,
        args: &[String],
    ) -> MrResult<Vec<Vec<String>>> {
        let handle = self.get(name).ok_or(MrError::NoHandle)?;
        if args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        access::enforce(state, caller, handle.access, handle.name, args)?;
        // `_help` and `_list_queries` introspect the registry itself, which
        // handlers cannot reach; they are answered here.
        let result = match handle.name {
            "_help" => {
                let target = self.get(&args[0]).ok_or(MrError::NoHandle)?;
                vec![vec![crate::queries::special::help_message(target)]]
            }
            "_list_queries" => self
                .handles
                .iter()
                .map(|h| vec![h.name.to_owned(), h.shortname.to_owned()])
                .collect(),
            _ => (handle.handler)(state, caller, args)?,
        };
        if handle.kind.is_mutation() {
            state.journal.log(JournalEntry {
                time: state.db.now(),
                who: caller.who().to_owned(),
                with: caller.client_name.clone(),
                query: handle.name.to_owned(),
                args: args.to_vec(),
            });
        }
        Ok(result)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_exceeds_one_hundred() {
        let r = Registry::standard();
        assert!(
            r.len() > 100,
            "paper claims over 100 query handles, got {}",
            r.len()
        );
    }

    #[test]
    fn lookup_by_both_names() {
        let r = Registry::standard();
        let long = r.get("get_user_by_login").expect("long name");
        let short = r.get("gubl").expect("short name");
        assert_eq!(long.name, short.name);
        assert!(r.get("no_such_query").is_none());
    }

    #[test]
    fn unknown_query_is_no_handle() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let err = r
            .execute(&mut s, &Caller::root("t"), "bogus", &[])
            .unwrap_err();
        assert_eq!(err, MrError::NoHandle);
    }

    #[test]
    fn arity_mismatch_is_args() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let err = r
            .execute(&mut s, &Caller::root("t"), "get_user_by_login", &[])
            .unwrap_err();
        assert_eq!(err, MrError::Args);
    }

    #[test]
    fn mutations_are_journaled() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let before = s.journal.len();
        r.execute(
            &mut s,
            &Caller::root("t"),
            "add_machine",
            &["KIWI.MIT.EDU".into(), "VAX".into()],
        )
        .unwrap();
        assert_eq!(s.journal.len(), before + 1);
        assert_eq!(s.journal.entries().last().unwrap().query, "add_machine");
        // Retrieves are not journaled.
        r.execute(
            &mut s,
            &Caller::root("t"),
            "get_machine",
            &["KIWI.MIT.EDU".into()],
        )
        .unwrap();
        assert_eq!(s.journal.len(), before + 1);
    }

    #[test]
    fn failed_mutations_not_journaled() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let before = s.journal.len();
        let err = r
            .execute(
                &mut s,
                &Caller::root("t"),
                "add_machine",
                &["X".into(), "TOASTER".into()],
            )
            .unwrap_err();
        assert_eq!(err, MrError::Type);
        assert_eq!(s.journal.len(), before);
    }

    #[test]
    fn all_tags_are_four_chars() {
        let r = Registry::standard();
        for h in r.handles() {
            assert_eq!(h.shortname.len(), 4, "{} has tag {}", h.name, h.shortname);
        }
    }
}
