//! The query-handle registry.
//!
//! "All access to the database is provided through the application
//! library/database server interface. This interface provides a limited set
//! of predefined, named queries" (§7). Each handle carries its signature
//! (argument and return field names), its class (retrieve / append / update
//! / delete), its access rule, and the handler function. The server and the
//! application library are "designed to allow for the easy addition of
//! queries" — adding one here is a single [`Registry::register`] call.

use std::collections::HashMap;

use moira_common::errors::{MrError, MrResult};
use moira_db::journal::JournalEntry;

use crate::access;
use crate::state::{Caller, MoiraState};

/// The four classes of §7, plus the built-in specials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Reads data; journal-exempt, mostly ACL-exempt (§5.5).
    Retrieve,
    /// Adds records.
    Append,
    /// Modifies records.
    Update,
    /// Removes records.
    Delete,
    /// Built-in introspection (`_help`, `_list_queries`, `_list_users`).
    Special,
}

impl QueryKind {
    /// True for the side-effecting classes that are journaled and
    /// ACL-checked.
    pub fn is_mutation(self) -> bool {
        matches!(
            self,
            QueryKind::Append | QueryKind::Update | QueryKind::Delete
        )
    }
}

/// How the registry gate decides access before invoking the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRule {
    /// Anyone, authenticated or not ("safe for this query's ACL to be the
    /// list containing everybody" — and cheaper).
    Public,
    /// Caller must hold the query's capability in CAPACLS.
    QueryAcl,
    /// Capability, or the caller *is* the login named by argument `n`
    /// ("this query may be executed by the target user").
    QueryAclOrSelf(usize),
    /// The handler enforces its own rule (list ACEs, public lists, …).
    Custom,
}

/// Read-tier handler signature: shared state, caller, string arguments →
/// tuples. The `&MoiraState` makes it a type error for a retrieve to mutate.
pub type ReadHandler = fn(&MoiraState, &Caller, &[String]) -> MrResult<Vec<Vec<String>>>;

/// Write-tier handler signature: exclusive state access for the
/// side-effecting classes.
///
/// Contract: a write handler must effect every durable change through
/// `state.db` (table appends/updates/deletes). Journaling keys on the
/// database's mutation counter, so a handler that mutated only other
/// `MoiraState` fields would succeed without being journaled — see
/// [`Registry::execute`].
pub type WriteHandler = fn(&mut MoiraState, &Caller, &[String]) -> MrResult<Vec<Vec<String>>>;

/// A query implementation, split by tier.
///
/// `Read` handlers run under the server's shared lock, concurrently with
/// each other; `Write` handlers serialize under the exclusive lock. The
/// split is enforced by the compiler: a `Read` handler cannot obtain
/// `&mut MoiraState` no matter what its body does.
#[derive(Clone, Copy)]
pub enum Handler {
    /// Retrieve-class implementation over shared state.
    Read(ReadHandler),
    /// Mutating implementation over exclusive state.
    Write(WriteHandler),
}

impl Handler {
    /// True for the shared-lock tier.
    pub fn is_read(&self) -> bool {
        matches!(self, Handler::Read(_))
    }
}

/// One predefined query.
#[derive(Clone, Copy)]
pub struct QueryHandle {
    /// Long name, e.g. `get_user_by_login`.
    pub name: &'static str,
    /// Four-character tag, e.g. `gubl` (the CAPACLS `tag`).
    pub shortname: &'static str,
    /// Query class.
    pub kind: QueryKind,
    /// Registry-level access rule.
    pub access: AccessRule,
    /// Argument names, defining the expected argument count.
    pub args: &'static [&'static str],
    /// Names of returned tuple fields (empty for non-retrieves).
    pub returns: &'static [&'static str],
    /// The implementation.
    pub handler: Handler,
}

/// The catalog of predefined queries.
pub struct Registry {
    handles: Vec<QueryHandle>,
    by_name: HashMap<&'static str, usize>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry {
            handles: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The full standard catalog of §7.
    pub fn standard() -> Registry {
        let mut r = Registry::empty();
        crate::queries::register_all(&mut r);
        r
    }

    /// Registers a handle under both its long and short names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — the catalog is static, so duplicates are
    /// build-time bugs.
    pub fn register(&mut self, handle: QueryHandle) {
        assert_eq!(
            handle.kind.is_mutation(),
            matches!(handle.handler, Handler::Write(_)),
            "query {} registers a {:?} handle on the wrong tier",
            handle.name,
            handle.kind,
        );
        let idx = self.handles.len();
        assert!(
            self.by_name.insert(handle.name, idx).is_none(),
            "duplicate query {}",
            handle.name
        );
        assert!(
            self.by_name.insert(handle.shortname, idx).is_none(),
            "duplicate tag {}",
            handle.shortname
        );
        self.handles.push(handle);
    }

    /// Looks a query up by long or short name.
    pub fn get(&self, name: &str) -> Option<&QueryHandle> {
        self.by_name.get(name).map(|&i| &self.handles[i])
    }

    /// Every handle, in registration order.
    pub fn handles(&self) -> &[QueryHandle] {
        &self.handles
    }

    /// Number of registered query handles.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// True if `name` resolves to a shared-tier (read) handle — the server
    /// uses this to route a request before taking any lock.
    pub fn is_read_query(&self, name: &str) -> bool {
        self.get(name).is_some_and(|h| h.handler.is_read())
    }

    /// The access pre-check behind the `Access` major request: would this
    /// query be allowed? (Does not execute it.) Requires only shared state —
    /// access decisions never mutate beyond the interior-mutable cache.
    pub fn check_access(
        &self,
        state: &MoiraState,
        caller: &Caller,
        name: &str,
        args: &[String],
    ) -> MrResult<()> {
        let handle = self.get(name).ok_or(MrError::NoHandle)?;
        if args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        access::enforce(state, caller, handle.access, handle.name, args)
    }

    /// `_help` and `_list_queries` introspect the registry itself, which
    /// handlers cannot reach; they are answered here. `None` for every other
    /// query.
    fn intercept(&self, name: &str, args: &[String]) -> Option<MrResult<Vec<Vec<String>>>> {
        match name {
            "_help" => Some(match self.get(&args[0]) {
                Some(target) => Ok(vec![vec![crate::queries::special::help_message(target)]]),
                None => Err(MrError::NoHandle),
            }),
            "_list_queries" => Some(Ok(self
                .handles
                .iter()
                .map(|h| vec![h.name.to_owned(), h.shortname.to_owned()])
                .collect())),
            _ => None,
        }
    }

    /// Executes a read-tier query against shared state: arity check, access
    /// check, handler. Write-class handles are never dispatched here — route
    /// them through [`Registry::execute`] (returns `MR_INTERNAL` otherwise).
    pub fn execute_read(
        &self,
        state: &MoiraState,
        caller: &Caller,
        name: &str,
        args: &[String],
    ) -> MrResult<Vec<Vec<String>>> {
        let handle = self.get(name).ok_or(MrError::NoHandle)?;
        if args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        access::enforce(state, caller, handle.access, handle.name, args)?;
        if let Some(result) = self.intercept(handle.name, args) {
            return result;
        }
        match handle.handler {
            Handler::Read(f) => f(state, caller, args),
            Handler::Write(_) => Err(MrError::Internal),
        }
    }

    /// Executes a query of either tier: arity check, access check, handler,
    /// and journaling of successful mutations that actually changed the
    /// database (validate-only successes are not journaled).
    ///
    /// "Changed" is detected via `state.db`'s mutation counter, which covers
    /// table appends, updates, and deletes. That is the whole journaling
    /// contract: mutation-class handlers must route durable changes through
    /// the database tables (all standard handlers do). A hypothetical write
    /// that touched only other `MoiraState` fields would not be journaled —
    /// register such maintenance actions as `Special`/server-level requests
    /// (like `Trigger_DCM`) instead of mutation-class queries.
    pub fn execute(
        &self,
        state: &mut MoiraState,
        caller: &Caller,
        name: &str,
        args: &[String],
    ) -> MrResult<Vec<Vec<String>>> {
        let handle = self.get(name).ok_or(MrError::NoHandle)?;
        if args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        access::enforce(state, caller, handle.access, handle.name, args)?;
        if let Some(result) = self.intercept(handle.name, args) {
            return result;
        }
        let before = handle.kind.is_mutation().then(|| state.db.mutation_count());
        let result = match handle.handler {
            Handler::Read(f) => f(state, caller, args)?,
            Handler::Write(f) => f(state, caller, args)?,
        };
        if before.is_some_and(|b| state.db.mutation_count() != b) {
            let entry = JournalEntry {
                time: state.db.now(),
                who: caller.who().to_owned(),
                with: caller.client_name.clone(),
                query: handle.name.to_owned(),
                args: args.to_vec(),
            };
            state.journal.log(entry.clone());
            // Write-ahead: the commit is not acknowledged until the entry
            // is at least buffered in the WAL (group commit fsyncs it). A
            // failed append is surfaced to the caller — the in-memory
            // change stands, but its durability cannot be promised.
            //
            // Durability is the one sanctioned blocking step on the write
            // path: the group-commit fsync is bounded, and the journal
            // order must match the guard order, so the append cannot move
            // outside the write lock (DESIGN.md "Durable storage").
            let now = state.db.now();
            // lint:allow(lock-discipline, reactor-discipline)
            if let Err(e) = state.storage.append(&entry, now) {
                state.obs.counter("db.wal.append_errors").inc();
                return Err(e);
            }
            if state.storage.wants_snapshot() {
                if let Err(_e) = state.storage.snapshot(&state.db, &state.journal) {
                    // Non-fatal: the WAL still holds every commit; the
                    // next mutation re-triggers the snapshot.
                    state.obs.counter("db.wal.snapshot_errors").inc();
                }
            }
        }
        Ok(result)
    }

    /// Re-applies a recovered journal entry during crash recovery.
    ///
    /// Unlike [`Registry::execute`] this skips ACL enforcement: the entry
    /// was already authorized when it first committed, and the principal
    /// may have lost (or never re-gains) those privileges in the recovered
    /// world — recovery must not re-litigate history. It also leaves the
    /// storage backend untouched; the caller replays with a `NullStorage`
    /// installed precisely so recovered entries are not re-appended.
    pub fn replay(&self, state: &mut MoiraState, entry: &JournalEntry) -> MrResult<()> {
        let handle = self.get(&entry.query).ok_or(MrError::NoHandle)?;
        if entry.args.len() != handle.args.len() {
            return Err(MrError::Args);
        }
        let caller = Caller {
            principal: (entry.who != "???").then(|| entry.who.clone()),
            client_name: entry.with.clone(),
        };
        let before = state.db.mutation_count();
        match handle.handler {
            Handler::Read(f) => f(state, &caller, &entry.args).map(|_| ())?,
            Handler::Write(f) => f(state, &caller, &entry.args).map(|_| ())?,
        }
        if state.db.mutation_count() != before {
            state.journal.log(entry.clone());
        }
        Ok(())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_exceeds_one_hundred() {
        let r = Registry::standard();
        assert!(
            r.len() > 100,
            "paper claims over 100 query handles, got {}",
            r.len()
        );
    }

    #[test]
    fn lookup_by_both_names() {
        let r = Registry::standard();
        let long = r.get("get_user_by_login").expect("long name");
        let short = r.get("gubl").expect("short name");
        assert_eq!(long.name, short.name);
        assert!(r.get("no_such_query").is_none());
    }

    #[test]
    fn unknown_query_is_no_handle() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let err = r
            .execute(&mut s, &Caller::root("t"), "bogus", &[])
            .unwrap_err();
        assert_eq!(err, MrError::NoHandle);
    }

    #[test]
    fn arity_mismatch_is_args() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let err = r
            .execute(&mut s, &Caller::root("t"), "get_user_by_login", &[])
            .unwrap_err();
        assert_eq!(err, MrError::Args);
    }

    #[test]
    fn mutations_are_journaled() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let before = s.journal.len();
        r.execute(
            &mut s,
            &Caller::root("t"),
            "add_machine",
            &["KIWI.MIT.EDU".into(), "VAX".into()],
        )
        .unwrap();
        assert_eq!(s.journal.len(), before + 1);
        assert_eq!(s.journal.entries().last().unwrap().query, "add_machine");
        // Retrieves are not journaled.
        r.execute(
            &mut s,
            &Caller::root("t"),
            "get_machine",
            &["KIWI.MIT.EDU".into()],
        )
        .unwrap();
        assert_eq!(s.journal.len(), before + 1);
    }

    #[test]
    fn failed_mutations_not_journaled() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        let before = s.journal.len();
        let err = r
            .execute(
                &mut s,
                &Caller::root("t"),
                "add_machine",
                &["X".into(), "TOASTER".into()],
            )
            .unwrap_err();
        assert_eq!(err, MrError::Type);
        assert_eq!(s.journal.len(), before);
    }

    fn noop_write(_s: &mut MoiraState, _c: &Caller, _a: &[String]) -> MrResult<Vec<Vec<String>>> {
        // Validates (vacuously) and reports zero rows changed.
        Ok(Vec::new())
    }

    #[test]
    fn validate_only_mutation_not_journaled() {
        let mut r = Registry::standard();
        r.register(QueryHandle {
            name: "touch_nothing",
            shortname: "tnth",
            kind: QueryKind::Update,
            access: AccessRule::Public,
            args: &[],
            returns: &[],
            handler: Handler::Write(noop_write),
        });
        let mut s = MoiraState::new(moira_common::VClock::new());
        let before = s.journal.len();
        r.execute(&mut s, &Caller::root("t"), "touch_nothing", &[])
            .unwrap();
        assert_eq!(
            s.journal.len(),
            before,
            "a mutation class handler that changed nothing must not journal"
        );
        // A real change is journaled as before.
        r.execute(
            &mut s,
            &Caller::root("t"),
            "add_machine",
            &["JOURNALBOX".into(), "VAX".into()],
        )
        .unwrap();
        assert_eq!(s.journal.len(), before + 1);
    }

    #[test]
    fn read_tier_dispatch() {
        let r = Registry::standard();
        let mut s = MoiraState::new(moira_common::VClock::new());
        r.execute(
            &mut s,
            &Caller::root("t"),
            "add_machine",
            &["RBOX".into(), "VAX".into()],
        )
        .unwrap();
        // Retrieves and specials resolve to the read tier; mutations do not.
        assert!(r.is_read_query("get_machine"));
        assert!(r.is_read_query("_list_queries"));
        assert!(!r.is_read_query("add_machine"));
        assert!(!r.is_read_query("no_such_query"));
        // execute_read serves retrieves over shared state…
        let rows = r
            .execute_read(&s, &Caller::root("t"), "get_machine", &["RBOX".into()])
            .unwrap();
        assert_eq!(rows[0][0], "RBOX");
        let help = r
            .execute_read(&s, &Caller::root("t"), "_help", &["get_machine".into()])
            .unwrap();
        assert!(help[0][0].contains("gmac"));
        // …and refuses write-class handles outright.
        assert_eq!(
            r.execute_read(
                &s,
                &Caller::root("t"),
                "add_machine",
                &["X".into(), "VAX".into()]
            )
            .unwrap_err(),
            MrError::Internal
        );
    }

    #[test]
    fn all_tags_are_four_chars() {
        let r = Registry::standard();
        for h in r.handles() {
            assert_eq!(h.shortname.len(), 4, "{} has tag {}", h.name, h.shortname);
        }
    }
}
