//! Per-query access control (§5.5) and the access cache.
//!
//! "The server performs access control on all queries which might
//! side-effect the database. As most information in the database will be
//! loaded into the nameserver …, placing access control on read-only
//! queries is unnecessary." Capability ACLs live in the CAPACLS relation:
//! each query name appears as a capability tied to a list.
//!
//! Because the `Access` major request lets clients pre-check a query, "many
//! access checks will have to be performed twice … It is expected that some
//! form of access caching will eventually be worked into the server for
//! performance reasons." We implement that cache here (and make it an
//! ablation switch for the benchmarks): positive and negative results are
//! cached per (principal, capability) and invalidated whenever the tables
//! that define membership change.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use moira_common::errors::{MrError, MrResult};
use moira_common::hashtab::HashTable;
use moira_db::Pred;
use parking_lot::Mutex;

use crate::ace::{user_in_list, users_id_of};
use crate::state::{Caller, MoiraState};

/// The §5.5 access cache with hit/miss accounting.
///
/// Interior-mutable so access checks work against a shared `&MoiraState`:
/// the read tier of the server dispatches retrieves under a shared lock, and
/// ACL decisions (a cache write at worst) must not require `&mut` state.
pub struct AccessCache {
    entries: Mutex<HashTable<(u64, bool)>>,
    /// Whether caching is active (ablation switch).
    enabled: AtomicBool,
    /// Cache hits served.
    hits: AtomicU64,
    /// Lookups that had to compute.
    misses: AtomicU64,
}

impl AccessCache {
    /// Creates an enabled, empty cache.
    pub fn new() -> Self {
        AccessCache {
            entries: Mutex::new(HashTable::new()),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Turns caching on or off (ablation switch).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether caching is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    fn key(principal: &str, capability: &str) -> String {
        format!("{principal}\u{1}{capability}")
    }

    fn get(&self, principal: &str, capability: &str, generation: u64) -> Option<bool> {
        if !self.enabled() {
            return None;
        }
        match self
            .entries
            .lock()
            .lookup(&Self::key(principal, capability))
        {
            Some(&(gen, allowed)) if gen == generation => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(allowed)
            }
            _ => None,
        }
    }

    fn put(&self, principal: &str, capability: &str, generation: u64, allowed: bool) {
        self.misses.fetch_add(1, Ordering::SeqCst);
        if self.enabled() {
            self.entries
                .lock()
                .store(&Self::key(principal, capability), (generation, allowed));
        }
    }

    /// Drops every cached decision.
    pub fn flush(&self) {
        self.entries.lock().clear();
    }
}

impl Default for AccessCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The membership-defining generation: any append/update/delete to the
/// relations that feed ACL decisions invalidates cached results.
fn acl_generation(state: &MoiraState) -> u64 {
    ["list", "members", "capacls", "users"]
        .iter()
        .map(|t| state.db.table(t).generation())
        .sum()
}

/// Checks whether `caller` may exercise `capability` (a query name or
/// pseudo-query like `trigger_dcm`), consulting CAPACLS.
///
/// Rules, in order: privileged principals always pass; unauthenticated
/// callers always fail; a capability whose ACL is the `everybody` list
/// admits any authenticated principal; otherwise the caller must be a
/// direct or recursive member of some list the capability is tied to.
pub fn caller_has_capability(state: &MoiraState, caller: &Caller, capability: &str) -> bool {
    if caller.is_privileged() {
        return true;
    }
    let Some(principal) = caller.principal.clone() else {
        return false;
    };
    let generation = acl_generation(state);
    if let Some(hit) = state.access_cache.get(&principal, capability, generation) {
        return hit;
    }
    let allowed = compute_capability(state, &principal, capability);
    state
        .access_cache
        .put(&principal, capability, generation, allowed);
    allowed
}

fn compute_capability(state: &MoiraState, principal: &str, capability: &str) -> bool {
    let caps = state.db.table("capacls");
    let rows = caps.select(&Pred::Eq("capability", capability.into()));
    if rows.is_empty() {
        return false;
    }
    let Ok(users_id) = users_id_of(&state.db, principal) else {
        return false;
    };
    for row in rows {
        let list_id = caps.cell(row, "list_id").as_int();
        // The "list containing everybody" admits any authenticated user.
        if let Some(lr) = state
            .db
            .table("list")
            .select_one(&Pred::Eq("list_id", list_id.into()))
        {
            if state.db.cell("list", lr, "name").as_str() == "everybody" {
                return true;
            }
        }
        if user_in_list(&state.db, users_id, list_id) {
            return true;
        }
    }
    false
}

/// The registry-level access decision for a query, per its
/// [`crate::registry::AccessRule`]. Returns `MR_PERM` when denied.
pub fn enforce(
    state: &MoiraState,
    caller: &Caller,
    rule: crate::registry::AccessRule,
    query_name: &str,
    args: &[String],
) -> MrResult<()> {
    use crate::registry::AccessRule;
    match rule {
        AccessRule::Public => Ok(()),
        AccessRule::Custom => Ok(()),
        AccessRule::QueryAcl => {
            if caller_has_capability(state, caller, query_name) {
                Ok(())
            } else {
                Err(MrError::Perm)
            }
        }
        AccessRule::QueryAclOrSelf(arg_index) => {
            if caller_has_capability(state, caller, query_name) {
                return Ok(());
            }
            match (caller.principal.as_deref(), args.get(arg_index)) {
                (Some(p), Some(target)) if p == target => Ok(()),
                _ => Err(MrError::Perm),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::testutil::{add_test_list, add_test_user, state_with_admin};

    #[test]
    fn privileged_bypasses_everything() {
        let s = MoiraState::new(moira_common::VClock::new());
        assert!(caller_has_capability(
            &s,
            &Caller::root("dcm"),
            "anything_at_all"
        ));
    }

    #[test]
    fn anonymous_denied() {
        let s = MoiraState::new(moira_common::VClock::new());
        assert!(!caller_has_capability(
            &s,
            &Caller::anonymous("x"),
            "add_user"
        ));
    }

    #[test]
    fn membership_grants_capability() {
        let (mut s, _) = state_with_admin("ops");
        assert!(caller_has_capability(
            &s,
            &Caller::new("ops", "t"),
            "add_user"
        ));
        add_test_user(&mut s, "rando", 7777);
        assert!(!caller_has_capability(
            &s,
            &Caller::new("rando", "t"),
            "add_user"
        ));
    }

    #[test]
    fn everybody_list_admits_any_principal() {
        let (mut s, _) = state_with_admin("ops");
        add_test_user(&mut s, "rando", 7777);
        // get_machine's capability is tied to `everybody` by the seed.
        assert!(caller_has_capability(
            &s,
            &Caller::new("rando", "t"),
            "get_machine"
        ));
    }

    #[test]
    fn cache_hits_and_invalidation() {
        let (mut s, admin_list) = state_with_admin("ops");
        let caller = Caller::new("ops", "t");
        caller_has_capability(&s, &caller, "add_user");
        let misses_before = s.access_cache.misses();
        assert!(caller_has_capability(&s, &caller, "add_user"));
        assert_eq!(
            s.access_cache.misses(),
            misses_before,
            "second check was cached"
        );
        assert!(s.access_cache.hits() >= 1);
        // Mutating membership invalidates.
        let uid = add_test_user(&mut s, "newbie", 7878);
        s.db.append(
            "members",
            vec![admin_list.into(), "USER".into(), uid.into()],
        )
        .unwrap();
        let hits_before = s.access_cache.hits();
        assert!(caller_has_capability(&s, &caller, "add_user"));
        assert_eq!(
            s.access_cache.hits(),
            hits_before,
            "generation changed, recomputed"
        );
    }

    #[test]
    fn cache_disable_ablation() {
        let (s, _) = state_with_admin("ops");
        s.access_cache.set_enabled(false);
        let caller = Caller::new("ops", "t");
        caller_has_capability(&s, &caller, "add_user");
        caller_has_capability(&s, &caller, "add_user");
        assert_eq!(s.access_cache.hits(), 0);
        assert_eq!(s.access_cache.misses(), 2);
    }

    #[test]
    fn self_rule() {
        let (mut s, _) = state_with_admin("ops");
        add_test_user(&mut s, "babette", 6530);
        let rule = crate::registry::AccessRule::QueryAclOrSelf(0);
        let me = Caller::new("babette", "chsh");
        assert!(enforce(&s, &me, rule, "update_user_shell", &["babette".into()]).is_ok());
        assert_eq!(
            enforce(&s, &me, rule, "update_user_shell", &["other".into()]),
            Err(MrError::Perm)
        );
    }

    #[test]
    fn nested_list_membership_grants() {
        let (mut s, admin_list) = state_with_admin("ops");
        let sub = add_test_list(&mut s, "sub-ops", false);
        let uid = add_test_user(&mut s, "deputy", 7900);
        s.db.append("members", vec![sub.into(), "USER".into(), uid.into()])
            .unwrap();
        s.db.append(
            "members",
            vec![admin_list.into(), "LIST".into(), sub.into()],
        )
        .unwrap();
        assert!(caller_has_capability(
            &s,
            &Caller::new("deputy", "t"),
            "add_user"
        ));
    }
}
