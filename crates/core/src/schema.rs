//! The Moira database schema — the relations of §6.
//!
//! Field names follow the paper. The three USERS fields the paper marks
//! *"\[unused\] … never implemented"* (`gid`, `uglist_id`, `ugdefault`) are
//! omitted. TBLSTATS is virtual: it is served straight from the engine's
//! per-table statistics rather than stored.

use moira_db::schema::{ColumnDef as C, TableSchema};
use moira_db::Database;

/// Maximum login name length (historic 8-character limit).
pub const MAX_LOGIN_LEN: usize = 8;

/// The `status` values of the USERS relation (§6).
pub mod user_status {
    /// Not registered, but registerable.
    pub const REGISTERABLE: i64 = 0;
    /// Active account.
    pub const ACTIVE: i64 = 1;
    /// Half-registered.
    pub const HALF_REGISTERED: i64 = 2;
    /// Marked for deletion.
    pub const DELETED: i64 = 3;
    /// Not registerable.
    pub const NOT_REGISTERABLE: i64 = 4;
}

/// Sentinel: assign the next unused uid (`UNIQUE_UID` in `<moira.h>`).
pub const UNIQUE_UID: i64 = -1;

/// Sentinel: assign a unique GID (`UNIQUE_GID` in `<mr.h>`).
pub const UNIQUE_GID: i64 = -1;

/// Sentinel login: a `#` followed by the uid (`UNIQUE_LOGIN`).
pub const UNIQUE_LOGIN: &str = "#";

/// Builds every Moira relation in `db`.
pub fn create_all_tables(db: &mut Database) {
    db.create_table(TableSchema::new(
        "users",
        vec![
            C::str("login").unique(),
            C::int("users_id").unique(),
            C::int("uid").indexed(),
            C::str("shell"),
            C::str("last").indexed(),
            C::str("first"),
            C::str("middle"),
            C::int("status"),
            C::str("mit_id").indexed(),
            C::str("mit_year"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
            // Finger fields.
            C::str("fullname"),
            C::str("nickname"),
            C::str("home_addr"),
            C::str("home_phone"),
            C::str("office_addr"),
            C::str("office_phone"),
            C::str("mit_dept"),
            C::str("mit_affil"),
            C::int("fmodtime"),
            C::str("fmodby"),
            C::str("fmodwith"),
            // Pobox fields.
            C::str("potype"),
            C::int("pop_id"),
            C::int("box_id"),
            C::str("saved_pop"), // machine name of previous POP assignment
            C::int("pmodtime"),
            C::str("pmodby"),
            C::str("pmodwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "machine",
        vec![
            C::str("name").unique(),
            C::int("mach_id").unique(),
            C::str("type"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "cluster",
        vec![
            C::str("name").unique(),
            C::int("clu_id").unique(),
            C::str("desc"),
            C::str("location"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "mcmap",
        vec![C::int("mach_id").indexed(), C::int("clu_id").indexed()],
    ));
    db.create_table(TableSchema::new(
        "svc",
        vec![
            C::int("clu_id").indexed(),
            C::str("serv_label"),
            C::str("serv_cluster"),
        ],
    ));
    db.create_table(TableSchema::new(
        "list",
        vec![
            C::str("name").unique(),
            C::int("list_id").unique(),
            C::boolean("active"),
            C::boolean("public"),
            C::boolean("hidden"),
            C::boolean("maillist"),
            C::boolean("grouplist"),
            C::int("gid").indexed(),
            C::str("desc"),
            C::str("acl_type"),
            C::int("acl_id").indexed(),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "members",
        vec![
            C::int("list_id").indexed(),
            C::str("member_type"),
            C::int("member_id").indexed(),
        ],
    ));
    db.create_table(TableSchema::new(
        "servers",
        vec![
            C::str("name").unique(),
            C::int("update_int"),
            C::str("target_file"),
            C::str("script"),
            C::int("dfgen"),
            C::int("dfcheck"),
            C::str("type"),
            C::boolean("enable"),
            C::boolean("inprogress"),
            C::int("harderror"),
            C::str("errmsg"),
            C::str("acl_type"),
            C::int("acl_id"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "serverhosts",
        vec![
            C::str("service").indexed(),
            C::int("mach_id").indexed(),
            C::boolean("enable"),
            C::boolean("override"),
            C::boolean("success"),
            C::boolean("inprogress"),
            C::int("hosterror"),
            C::str("hosterrmsg"),
            C::int("ltt"),
            C::int("lts"),
            C::int("value1"),
            C::int("value2"),
            C::str("value3"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "filesys",
        vec![
            C::str("label").indexed(),
            C::int("order"),
            C::int("filsys_id").unique(),
            C::int("phys_id").indexed(),
            C::str("type"),
            C::int("mach_id").indexed(),
            C::str("name"),
            C::str("mount"),
            C::str("access"),
            C::str("comments"),
            C::int("owner").indexed(),
            C::int("owners").indexed(),
            C::boolean("createflg"),
            C::str("lockertype"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "nfsphys",
        vec![
            C::int("nfsphys_id").unique(),
            C::int("mach_id").indexed(),
            C::str("dir"),
            C::str("device"),
            C::int("status"),
            C::int("allocated"),
            C::int("size"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "nfsquota",
        vec![
            C::int("users_id").indexed(),
            C::int("filsys_id").indexed(),
            C::int("phys_id").indexed(),
            C::int("quota"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "zephyr",
        vec![
            C::str("class").unique(),
            C::str("xmt_type"),
            C::int("xmt_id"),
            C::str("sub_type"),
            C::int("sub_id"),
            C::str("iws_type"),
            C::int("iws_id"),
            C::str("iui_type"),
            C::int("iui_id"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "hostaccess",
        vec![
            C::int("mach_id").unique(),
            C::str("acl_type"),
            C::int("acl_id"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "strings",
        vec![C::int("string_id").unique(), C::str("string").indexed()],
    ));
    db.create_table(TableSchema::new(
        "services",
        vec![
            C::str("name").unique(),
            C::str("protocol"),
            C::int("port"),
            C::str("desc"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "printcap",
        vec![
            C::str("name").unique(),
            C::int("mach_id").indexed(),
            C::str("dir"),
            C::str("rp"),
            C::str("comments"),
            C::int("modtime"),
            C::str("modby"),
            C::str("modwith"),
        ],
    ));
    db.create_table(TableSchema::new(
        "capacls",
        vec![
            C::str("capability").indexed(),
            C::str("tag"),
            C::int("list_id").indexed(),
        ],
    ));
    db.create_table(TableSchema::new(
        "alias",
        vec![
            C::str("name").indexed(),
            C::str("type").indexed(),
            C::str("trans"),
        ],
    ));
    db.create_table(TableSchema::new(
        "values",
        vec![C::str("name").unique(), C::int("value")],
    ));
}

/// Names of every stored relation, in the order §6 presents them.
pub const RELATIONS: &[&str] = &[
    "users",
    "machine",
    "cluster",
    "mcmap",
    "svc",
    "list",
    "members",
    "servers",
    "serverhosts",
    "filesys",
    "nfsphys",
    "nfsquota",
    "zephyr",
    "hostaccess",
    "strings",
    "services",
    "printcap",
    "capacls",
    "alias",
    "values",
];

#[cfg(test)]
mod tests {
    use super::*;
    use moira_common::VClock;

    #[test]
    fn all_relations_created() {
        let mut db = Database::new(VClock::new());
        create_all_tables(&mut db);
        for r in RELATIONS {
            assert!(db.has_table(r), "{r}");
        }
        // 20 stored relations + virtual TBLSTATS = the 21 of §6.
        assert_eq!(RELATIONS.len(), 20);
    }

    #[test]
    fn users_has_the_three_record_groups() {
        let mut db = Database::new(VClock::new());
        create_all_tables(&mut db);
        let t = db.table("users");
        for col in ["login", "fmodtime", "pmodtime", "potype", "mit_id"] {
            assert!(t.schema().col(col).is_some(), "{col}");
        }
    }
}
