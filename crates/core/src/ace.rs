//! Access control entities and recursive list membership.
//!
//! "An access control entity names the user or the list who have the
//! capability to manipulate the object specifying the access control list"
//! (§6, LIST). ACE types are `USER`, `LIST`, or `NONE`; membership checks
//! against a LIST recurse through sub-lists (the `RUSER`/`RLIST` behaviour
//! of `get_ace_use`).

use moira_common::errors::{MrError, MrResult};
use moira_db::{Database, Pred};

use crate::state::MoiraState;

/// Maximum recursion depth through nested lists (cycles are legal in the
/// data; the bound keeps resolution terminating).
const MAX_DEPTH: usize = 32;

/// A resolved access control entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ace {
    /// A single user (by `users_id`).
    User(i64),
    /// A list (by `list_id`).
    List(i64),
    /// Nobody.
    None,
}

impl Ace {
    /// The stored type string.
    pub fn type_str(&self) -> &'static str {
        match self {
            Ace::User(_) => "USER",
            Ace::List(_) => "LIST",
            Ace::None => "NONE",
        }
    }

    /// The stored id (0 for NONE).
    pub fn id(&self) -> i64 {
        match self {
            Ace::User(id) | Ace::List(id) => *id,
            Ace::None => 0,
        }
    }
}

/// Resolves an `(ace_type, ace_name)` pair to an [`Ace`], validating that
/// the named user or list exists (`MR_ACE` otherwise).
pub fn resolve_ace(db: &Database, ace_type: &str, ace_name: &str) -> MrResult<Ace> {
    match ace_type.to_ascii_uppercase().as_str() {
        "NONE" => Ok(Ace::None),
        "USER" => {
            let id = db
                .table("users")
                .select_one(&Pred::Eq("login", ace_name.into()))
                .ok_or(MrError::Ace)?;
            Ok(Ace::User(db.cell("users", id, "users_id").as_int()))
        }
        "LIST" => {
            let id = db
                .table("list")
                .select_one(&Pred::Eq("name", ace_name.into()))
                .ok_or(MrError::Ace)?;
            Ok(Ace::List(db.cell("list", id, "list_id").as_int()))
        }
        _ => Err(MrError::Ace),
    }
}

/// Renders a stored `(ace_type, ace_id)` back to the `(type, name)` pair
/// the protocol returns. Dangling ids render as the id number.
pub fn render_ace(db: &Database, ace_type: &str, ace_id: i64) -> (String, String) {
    match ace_type.to_ascii_uppercase().as_str() {
        "USER" => {
            let name = db
                .table("users")
                .select_one(&Pred::Eq("users_id", ace_id.into()))
                .map(|r| db.cell("users", r, "login").as_str().to_owned())
                .unwrap_or_else(|| format!("#{ace_id}"));
            ("USER".to_owned(), name)
        }
        "LIST" => {
            let name = db
                .table("list")
                .select_one(&Pred::Eq("list_id", ace_id.into()))
                .map(|r| db.cell("list", r, "name").as_str().to_owned())
                .unwrap_or_else(|| format!("#{ace_id}"));
            ("LIST".to_owned(), name)
        }
        _ => ("NONE".to_owned(), "NONE".to_owned()),
    }
}

/// The `users_id` of a login, or `MR_USER`.
pub fn users_id_of(db: &Database, login: &str) -> MrResult<i64> {
    let id = db
        .table("users")
        .select_one(&Pred::Eq("login", login.into()))
        .ok_or(MrError::User)?;
    Ok(db.cell("users", id, "users_id").as_int())
}

/// The `list_id` of a list name, or `MR_LIST`.
pub fn list_id_of(db: &Database, name: &str) -> MrResult<i64> {
    let id = db
        .table("list")
        .select_one(&Pred::Eq("name", name.into()))
        .ok_or(MrError::List)?;
    Ok(db.cell("list", id, "list_id").as_int())
}

/// True if user `users_id` is a direct or recursive (through sub-lists)
/// member of list `list_id`.
pub fn user_in_list(db: &Database, users_id: i64, list_id: i64) -> bool {
    fn walk(db: &Database, users_id: i64, list_id: i64, depth: usize, seen: &mut Vec<i64>) -> bool {
        if depth >= MAX_DEPTH || seen.contains(&list_id) {
            return false;
        }
        seen.push(list_id);
        let members = db.table("members");
        for row in db.select("members", &Pred::Eq("list_id", list_id.into())) {
            let mtype = members.cell(row, "member_type").as_str().to_owned();
            let mid = members.cell(row, "member_id").as_int();
            match mtype.as_str() {
                "USER" if mid == users_id => return true,
                "LIST" if walk(db, users_id, mid, depth + 1, seen) => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }
    walk(db, users_id, list_id, 0, &mut Vec::new())
}

/// True if the caller (by principal) satisfies an ACE.
pub fn caller_satisfies_ace(state: &MoiraState, principal: Option<&str>, ace: Ace) -> bool {
    let Some(login) = principal else { return false };
    match ace {
        Ace::None => false,
        Ace::User(uid) => users_id_of(&state.db, login).is_ok_and(|id| id == uid),
        Ace::List(lid) => {
            users_id_of(&state.db, login).is_ok_and(|id| user_in_list(&state.db, id, lid))
        }
    }
}

/// True if the caller is on the ACE stored in columns `acl_type`/`acl_id`
/// of row `row` in `table` — the pervasive "someone on the ACE of the
/// target" permission.
pub fn caller_on_row_ace(
    state: &MoiraState,
    principal: Option<&str>,
    table: &str,
    row: moira_db::RowId,
    type_col: &str,
    id_col: &str,
) -> bool {
    let t = state.db.table(table);
    let ace_type = t.cell(row, type_col).as_str().to_owned();
    let ace_id = t.cell(row, id_col).as_int();
    let ace = match ace_type.to_ascii_uppercase().as_str() {
        "USER" => Ace::User(ace_id),
        "LIST" => Ace::List(ace_id),
        _ => Ace::None,
    };
    caller_satisfies_ace(state, principal, ace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MoiraState;
    use moira_common::VClock;

    /// Builds a state with users a, b and lists inner (a), outer (inner, b).
    fn setup() -> MoiraState {
        let mut s = MoiraState::new(VClock::new());
        for (login, users_id) in [("a", 101i64), ("b", 102)] {
            let mut row: Vec<moira_db::Value> = vec![
                login.into(),
                users_id.into(),
                (users_id + 6000).into(),
                "/bin/csh".into(),
                "Last".into(),
                "First".into(),
                "M".into(),
                1.into(),
                "xx".into(),
                "1990".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ];
            row.extend::<Vec<moira_db::Value>>(vec![
                "First M Last".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
                "NONE".into(),
                0.into(),
                0.into(),
                "".into(),
                0.into(),
                "t".into(),
                "t".into(),
            ]);
            s.db.append("users", row).unwrap();
        }
        for (name, list_id) in [("inner", 201i64), ("outer", 202)] {
            s.db.append(
                "list",
                vec![
                    name.into(),
                    list_id.into(),
                    true.into(),
                    false.into(),
                    false.into(),
                    false.into(),
                    false.into(),
                    (-1).into(),
                    "".into(),
                    "NONE".into(),
                    0.into(),
                    0.into(),
                    "t".into(),
                    "t".into(),
                ],
            )
            .unwrap();
        }
        s.db.append("members", vec![201.into(), "USER".into(), 101.into()])
            .unwrap();
        s.db.append("members", vec![202.into(), "LIST".into(), 201.into()])
            .unwrap();
        s.db.append("members", vec![202.into(), "USER".into(), 102.into()])
            .unwrap();
        s
    }

    #[test]
    fn resolve_and_render() {
        let s = setup();
        assert_eq!(resolve_ace(&s.db, "USER", "a").unwrap(), Ace::User(101));
        assert_eq!(resolve_ace(&s.db, "LIST", "inner").unwrap(), Ace::List(201));
        assert_eq!(resolve_ace(&s.db, "NONE", "whatever").unwrap(), Ace::None);
        assert_eq!(resolve_ace(&s.db, "USER", "ghost"), Err(MrError::Ace));
        assert_eq!(resolve_ace(&s.db, "MACHINE", "x"), Err(MrError::Ace));
        assert_eq!(render_ace(&s.db, "USER", 101), ("USER".into(), "a".into()));
        assert_eq!(
            render_ace(&s.db, "LIST", 202),
            ("LIST".into(), "outer".into())
        );
        assert_eq!(render_ace(&s.db, "NONE", 0), ("NONE".into(), "NONE".into()));
        assert_eq!(render_ace(&s.db, "USER", 999).1, "#999");
    }

    #[test]
    fn direct_membership() {
        let s = setup();
        assert!(user_in_list(&s.db, 101, 201));
        assert!(!user_in_list(&s.db, 102, 201));
    }

    #[test]
    fn recursive_membership() {
        let s = setup();
        assert!(user_in_list(&s.db, 101, 202), "a via inner");
        assert!(user_in_list(&s.db, 102, 202), "b direct");
    }

    #[test]
    fn cyclic_lists_terminate() {
        let mut s = setup();
        // outer -> inner -> outer.
        s.db.append("members", vec![201.into(), "LIST".into(), 202.into()])
            .unwrap();
        assert!(user_in_list(&s.db, 101, 202));
        assert!(!user_in_list(&s.db, 999, 202));
    }

    #[test]
    fn caller_checks() {
        let s = setup();
        assert!(caller_satisfies_ace(&s, Some("a"), Ace::User(101)));
        assert!(!caller_satisfies_ace(&s, Some("b"), Ace::User(101)));
        assert!(caller_satisfies_ace(&s, Some("b"), Ace::List(202)));
        assert!(!caller_satisfies_ace(&s, None, Ace::List(202)));
        assert!(!caller_satisfies_ace(&s, Some("a"), Ace::None));
    }
}
