//! Property-based tests for moira-common data structures.

use moira_common::hashtab::HashTable;
use moira_common::queue::Queue;
use moira_common::strutil;
use moira_common::wildcard;
use proptest::prelude::*;

/// A slow, obviously-correct recursive glob matcher to test against.
fn naive_matches(pat: &[u8], text: &[u8]) -> bool {
    match (pat.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            naive_matches(&pat[1..], text) || (!text.is_empty() && naive_matches(pat, &text[1..]))
        }
        (Some(b'?'), Some(_)) => naive_matches(&pat[1..], &text[1..]),
        (Some(p), Some(t)) if p == t => naive_matches(&pat[1..], &text[1..]),
        _ => false,
    }
}

proptest! {
    #[test]
    fn wildcard_agrees_with_naive(pat in "[a-c*?]{0,8}", text in "[a-c]{0,10}") {
        prop_assert_eq!(
            wildcard::matches(&pat, &text),
            naive_matches(pat.as_bytes(), text.as_bytes())
        );
    }

    #[test]
    fn literal_patterns_match_only_themselves(text in "[a-z0-9.-]{0,16}", other in "[a-z0-9.-]{0,16}") {
        prop_assert!(wildcard::matches(&text, &text));
        if text != other {
            prop_assert!(!wildcard::matches(&text, &other) || wildcard::has_wildcards(&text));
        }
    }

    #[test]
    fn star_matches_everything(text in ".{0,64}") {
        prop_assert!(wildcard::matches("*", &text));
    }

    #[test]
    fn flags_round_trip(flags in 0u32..1024) {
        let s = strutil::flags_to_string(flags, strutil::NFSPHYS_FLAGS);
        prop_assert_eq!(strutil::string_to_flags(&s, strutil::NFSPHYS_FLAGS), Some(flags));
    }

    #[test]
    fn hostname_canonicalization_idempotent(name in "[A-Za-z0-9.-]{1,32}") {
        let once = strutil::canonicalize_hostname(&name);
        prop_assert_eq!(strutil::canonicalize_hostname(&once), once.clone());
        prop_assert!(!once.ends_with('.') || once.is_empty());
    }

    #[test]
    fn hashtable_models_hashmap(ops in prop::collection::vec(
        (0u8..3, "[a-f]{1,3}", any::<i32>()), 0..200)) {
        let mut table: HashTable<i32> = HashTable::new();
        let mut model = std::collections::HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    prop_assert_eq!(table.store(&key, value), model.insert(key.clone(), value));
                }
                1 => {
                    prop_assert_eq!(table.lookup(&key), model.get(&key));
                }
                _ => {
                    prop_assert_eq!(table.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    #[test]
    fn queue_preserves_fifo(items in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut q = Queue::new();
        for &i in &items {
            q.enqueue(i);
        }
        let drained: Vec<u32> = q.drain().collect();
        prop_assert_eq!(drained, items);
    }
}
