//! A small deterministic PRNG (SplitMix64) for reproducible synthetic
//! workloads and failure injection.
//!
//! Every experiment in the bench harness must be reproducible from a seed,
//! so the population generator and the failure injectors use this generator
//! rather than ambient entropy.

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Mt {
    state: u64,
}

impl Mt {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Mt { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift range reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` (`hi > lo`).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Mt::new(42);
        let mut b = Mt::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Mt::new(1);
        let mut b = Mt::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = Mt::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_in_bounds() {
        let mut r = Mt::new(7);
        for _ in 0..1000 {
            let v = r.range(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Mt::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Mt::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
