//! The menu package used by the administrative clients (§5.6.3).
//!
//! The twelve interface programs of §5.1.H are menu-driven; this module
//! provides the hierarchical menu engine they share. It is deliberately
//! decoupled from any terminal: input comes from an iterator of lines and
//! output is collected through a sink, so client flows are fully testable.

/// Handler signature for leaf commands: collected arguments to output text
/// or an error line.
pub type MenuAction = Box<dyn Fn(&[String]) -> Result<String, String>>;

/// One entry in a menu: either a sub-menu or a leaf command.
pub enum MenuItem {
    /// A nested menu reached by its key.
    Submenu(Menu),
    /// A leaf command: prompts for arguments, then runs the handler.
    Command {
        /// One prompt per argument collected before running.
        prompts: Vec<String>,
        /// Handler run with the collected arguments.
        action: MenuAction,
    },
}

/// A titled menu of keyed items.
pub struct Menu {
    /// Displayed title.
    pub title: String,
    /// `(key, description, item)` triples in display order.
    pub items: Vec<(String, String, MenuItem)>,
}

impl Menu {
    /// Creates an empty menu with a title.
    pub fn new(title: &str) -> Self {
        Menu {
            title: title.to_owned(),
            items: Vec::new(),
        }
    }

    /// Adds a leaf command.
    pub fn command<F>(mut self, key: &str, desc: &str, prompts: &[&str], action: F) -> Self
    where
        F: Fn(&[String]) -> Result<String, String> + 'static,
    {
        self.items.push((
            key.to_owned(),
            desc.to_owned(),
            MenuItem::Command {
                prompts: prompts.iter().map(|s| s.to_string()).collect(),
                action: Box::new(action),
            },
        ));
        self
    }

    /// Adds a nested sub-menu.
    pub fn submenu(mut self, key: &str, desc: &str, menu: Menu) -> Self {
        self.items
            .push((key.to_owned(), desc.to_owned(), MenuItem::Submenu(menu)));
        self
    }

    /// Renders the menu screen as the original package did: title, then one
    /// numbered line per item, then the quit hint.
    pub fn render(&self) -> String {
        let mut out = format!("*** {} ***\n", self.title);
        for (key, desc, _) in &self.items {
            out.push_str(&format!("  {key:<12} {desc}\n"));
        }
        out.push_str("  q            Return to previous menu\n");
        out
    }

    /// Drives the menu from scripted input lines, appending everything a
    /// terminal would have shown to `output`.
    ///
    /// Returns when the input selects `q` or the input is exhausted.
    pub fn run<'a, I>(&self, input: &mut I, output: &mut String)
    where
        I: Iterator<Item = &'a str>,
    {
        loop {
            output.push_str(&self.render());
            let Some(choice) = input.next() else { return };
            let choice = choice.trim();
            if choice == "q" {
                return;
            }
            match self.items.iter().find(|(key, _, _)| key == choice) {
                None => output.push_str(&format!("Unknown command: {choice}\n")),
                Some((_, _, MenuItem::Submenu(menu))) => menu.run(input, output),
                Some((_, _, MenuItem::Command { prompts, action })) => {
                    let mut args = Vec::new();
                    for prompt in prompts {
                        output.push_str(&format!("{prompt}: "));
                        match input.next() {
                            Some(line) => {
                                let line = line.trim().to_owned();
                                output.push_str(&format!("{line}\n"));
                                args.push(line);
                            }
                            None => return,
                        }
                    }
                    match action(&args) {
                        Ok(text) => output.push_str(&format!("{text}\n")),
                        Err(e) => output.push_str(&format!("Error: {e}\n")),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_menu() -> Menu {
        Menu::new("usermaint").command(
            "shell",
            "Change a login shell",
            &["Login", "New shell"],
            |args| {
                if args[1].starts_with('/') {
                    Ok(format!("Shell for {} set to {}", args[0], args[1]))
                } else {
                    Err("shell must be an absolute path".to_owned())
                }
            },
        )
    }

    #[test]
    fn renders_items() {
        let m = sample_menu();
        let screen = m.render();
        assert!(screen.contains("usermaint"));
        assert!(screen.contains("shell"));
        assert!(screen.contains("Return to previous menu"));
    }

    #[test]
    fn runs_command() {
        let m = sample_menu();
        let mut out = String::new();
        let script = ["shell", "babette", "/bin/csh", "q"];
        m.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("Shell for babette set to /bin/csh"));
    }

    #[test]
    fn reports_action_errors() {
        let m = sample_menu();
        let mut out = String::new();
        let script = ["shell", "babette", "csh", "q"];
        m.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("Error: shell must be an absolute path"));
    }

    #[test]
    fn unknown_command_reported() {
        let m = sample_menu();
        let mut out = String::new();
        let script = ["bogus", "q"];
        m.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("Unknown command: bogus"));
    }

    #[test]
    fn submenu_navigation() {
        let inner = Menu::new("inner").command("hi", "Say hi", &[], |_| Ok("hello".to_owned()));
        let outer = Menu::new("outer").submenu("in", "Enter inner", inner);
        let mut out = String::new();
        let script = ["in", "hi", "q", "q"];
        outer.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("*** inner ***"));
        assert!(out.contains("hello"));
    }

    #[test]
    fn exhausted_input_terminates() {
        let m = sample_menu();
        let mut out = String::new();
        let script = ["shell", "babette"];
        m.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("New shell: "));
    }
}
