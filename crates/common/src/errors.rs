//! The `com_err` error-table system and the Moira (`MR_*`) error codes.
//!
//! The paper (§5.6.1) adopts Ken Raeburn's `libcom_err`: every error code is
//! an integer, each error *table* reserves a subrange of the integers based
//! on a hash of the table name, and UNIX errno values occupy the low range.
//! We reproduce the classic `com_err` base-code hash so that codes here land
//! in the same numeric neighbourhood the real system used, register tables in
//! a global registry, and expose `error_message` / `com_err` with a hook —
//! exactly the application-visible surface described in the paper.

use std::fmt;
use std::sync::Mutex;
use std::sync::OnceLock;

/// The characters `com_err` packs into six bits apiece when hashing a table
/// name into its base code.
const CHAR_SET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";

/// Computes the base error code for a named error table.
///
/// This is the classic `com_err` algorithm: each character of the (at most
/// four character) table name is mapped to a six-bit value and packed, and
/// the result is shifted left eight bits, reserving 256 codes per table.
///
/// # Examples
///
/// ```
/// let base = moira_common::errors::error_table_base("sms");
/// assert_eq!(base % 256, 0);
/// assert!(base > 0);
/// ```
pub fn error_table_base(name: &str) -> i32 {
    let mut value: i64 = 0;
    for &b in name.as_bytes().iter().take(4) {
        let num = CHAR_SET
            .iter()
            .position(|&c| c == b)
            .map(|p| p + 1)
            .unwrap_or(0) as i64;
        value = (value << 6) + num;
    }
    ((value << 8) & 0x7fff_ffff) as i32
}

/// A registered error table: a name, a base code, and message strings.
#[derive(Debug, Clone)]
pub struct ErrorTable {
    /// Table name, e.g. `"sms"`.
    pub name: &'static str,
    /// First error code of the table's 256-code range.
    pub base: i32,
    /// Messages, indexed by `code - base`.
    pub messages: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Vec<ErrorTable>> {
    static REGISTRY: OnceLock<Mutex<Vec<ErrorTable>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers an error table so [`error_message`] can resolve its codes.
///
/// Registering the same table name twice replaces the previous entry, which
/// keeps repeated test initialization idempotent.
pub fn init_error_table(name: &'static str, messages: Vec<&'static str>) -> i32 {
    let base = error_table_base(name);
    let mut reg = registry().lock().unwrap();
    reg.retain(|t| t.name != name);
    reg.push(ErrorTable {
        name,
        base,
        messages,
    });
    base
}

/// Returns the error message string associated with `code` (§5.6.1).
///
/// Code zero means success; codes below 256 are treated as UNIX errno
/// values; anything else is resolved against the registered error tables.
pub fn error_message(code: i32) -> String {
    if code == 0 {
        return "Success".to_owned();
    }
    if (1..256).contains(&code) {
        return format!("System error {code}");
    }
    let reg = registry().lock().unwrap();
    for table in reg.iter() {
        let span = table.messages.len() as i32;
        if code >= table.base && code < table.base + span {
            return table.messages[(code - table.base) as usize].to_owned();
        }
    }
    format!("Unknown code {code}")
}

/// Hook type for [`com_err`]: receives (whoami, code, message).
pub type ComErrHook = fn(&str, i32, &str) -> ();

static HOOK: Mutex<Option<ComErrHook>> = Mutex::new(None);

/// Installs (or with `None`, removes) the `com_err` hook (§5.6.1), returning
/// the previous hook.
pub fn set_com_err_hook(hook: Option<ComErrHook>) -> Option<ComErrHook> {
    let mut h = HOOK.lock().unwrap();
    std::mem::replace(&mut *h, hook)
}

/// Reports an error in the style of `com_err(3)`.
///
/// By default prints `whoami: error_message(code) message` to stderr; if a
/// hook is installed the triple is routed there instead. If `code` is zero
/// nothing is printed for the error message.
pub fn com_err(whoami: &str, code: i32, message: &str) {
    let text = if code == 0 {
        String::new()
    } else {
        error_message(code)
    };
    let hook = *HOOK.lock().unwrap();
    match hook {
        Some(h) => h(whoami, code, &text),
        None => {
            if code == 0 {
                eprintln!("{whoami}: {message}");
            } else {
                eprintln!("{whoami}: {text} {message}");
            }
        }
    }
}

macro_rules! mr_errors {
    ($(($variant:ident, $msg:literal)),+ $(,)?) => {
        /// The Moira error codes of §7.1, offsets into the `"sms"` error table.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum MrError {
            $($variant),+
        }

        impl MrError {
            const ALL: &'static [MrError] = &[$(MrError::$variant),+];

            /// The message table, in code order.
            pub fn messages() -> Vec<&'static str> {
                vec![$($msg),+]
            }

            /// The textual message for this error, as listed in §7.1.
            pub fn message(self) -> &'static str {
                match self {
                    $(MrError::$variant => $msg),+
                }
            }

            /// The symbolic `MR_*` name of this error.
            pub fn name(self) -> &'static str {
                match self {
                    $(MrError::$variant => stringify!($variant)),+
                }
            }
        }
    };
}

mr_errors! {
    (Success, "Success"),
    (MoreData, "More data available"),
    (NoMatch, "No records in database match query"),
    (Perm, "Insufficient permission to perform requested database access"),
    (Args, "Incorrect number of arguments"),
    (ArgTooLong, "An argument contains too many characters"),
    (BadChar, "Illegal character in argument"),
    (Exists, "Record already exists"),
    (NotUnique, "Arguments not unique"),
    (InUse, "Object is in use"),
    (Integer, "String could not be parsed as an integer"),
    (NoId, "Cannot allocate new ID"),
    (Deadlock, "Database deadlock; try again later"),
    (DbmsErr, "An unexpected error occured in the underlying DBMS"),
    (Internal, "Internal consistency failure"),
    (NoHandle, "Unknown query specified"),
    (NoMem, "Server ran out of memory"),
    (User, "No such user"),
    (Machine, "Unknown machine"),
    (Cluster, "Unknown cluster"),
    (List, "No such list"),
    (Service, "Unknown service"),
    (Filesys, "Named file system does not exist"),
    (FilesysExists, "Named file system already exists"),
    (FilesysAccess, "Invalid filesys access"),
    (Fstype, "Invalid filesys type"),
    (Nfs, "Specified directory not exported"),
    (Nfsphys, "Machine/device pair not in nfsphys relation"),
    (NoFilesys, "Cannot find space for filesys"),
    (Ace, "No such access control entity"),
    (BadClass, "Specified class is not known"),
    (BadGroup, "Invalid group ID"),
    (Date, "Invalid date"),
    (Type, "Invalid type"),
    (Wildcard, "Wildcards not allowed here"),
    (NoPobox, "User has no pobox"),
    (NoQuota, "No quota assigned"),
    (NoChange, "No change in database since last data file generation"),
    (NotConnected, "Not connected to the Moira server"),
    (AlreadyConnected, "A connection to the Moira server already exists"),
    (Aborted, "Connection to the Moira server aborted"),
    (VersionLow, "Client protocol version older than server"),
    (VersionHigh, "Client protocol version newer than server"),
    (UnknownProc, "Unknown procedure requested"),
    (NotAuthenticated, "Request requires authentication"),
    (AuthFailure, "Authentication failed"),
    (Replay, "Authenticator replayed"),
    (Checksum, "File checksum mismatch during update"),
    (UpdateTimeout, "Server update timed out"),
    (HostDown, "Server host unreachable"),
    (DisabledDcm, "The DCM is disabled"),
    (InProgress, "An update is already in progress"),
    (NotRegisterable, "Account is not registerable"),
    (AlreadyRegistered, "Account is already registered"),
    (UserNotFound, "No such student record"),
    (LoginTaken, "Login name already taken"),
    (BadAuthenticator, "Registration authenticator invalid"),
    // Appended at the end: error codes are positional offsets from the
    // table base, so new codes must never reorder existing ones.
    (Busy, "Server overloaded; try again later"),
    (Durability, "Durable storage failure"),
}

/// Base code of the `"sms"` error table.
///
/// (The system changed names from SMS to Moira after much code development;
/// the string "sms" still crops up — the paper keeps the old table name and
/// so do we.)
pub fn sms_base() -> i32 {
    static BASE: OnceLock<i32> = OnceLock::new();
    *BASE.get_or_init(|| init_error_table("sms", MrError::messages()))
}

impl MrError {
    /// The integer `com_err` code for this error. [`MrError::Success`] is 0.
    pub fn code(self) -> i32 {
        if self == MrError::Success {
            0
        } else {
            sms_base() + Self::ALL.iter().position(|&e| e == self).unwrap() as i32
        }
    }

    /// Looks an error up by integer code, if it is in the `"sms"` table.
    pub fn from_code(code: i32) -> Option<MrError> {
        if code == 0 {
            return Some(MrError::Success);
        }
        let base = sms_base();
        let off = code - base;
        if off > 0 && (off as usize) < Self::ALL.len() {
            Some(Self::ALL[off as usize])
        } else {
            None
        }
    }
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for MrError {}

/// The pervasive result type of the Moira code base.
pub type MrResult<T> = Result<T, MrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_table_aligned() {
        assert_eq!(error_table_base("sms") % 256, 0);
        assert_ne!(error_table_base("sms"), error_table_base("krb"));
    }

    #[test]
    fn success_is_zero() {
        assert_eq!(MrError::Success.code(), 0);
        assert_eq!(error_message(0), "Success");
    }

    #[test]
    fn codes_round_trip() {
        for &e in MrError::ALL {
            assert_eq!(MrError::from_code(e.code()), Some(e), "{e:?}");
        }
    }

    #[test]
    fn codes_are_distinct() {
        let mut codes: Vec<i32> = MrError::ALL.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), MrError::ALL.len());
    }

    #[test]
    fn message_resolution() {
        sms_base();
        assert_eq!(
            error_message(MrError::Perm.code()),
            "Insufficient permission to perform requested database access"
        );
        assert_eq!(
            error_message(MrError::NoMatch.code()),
            "No records in database match query"
        );
    }

    #[test]
    fn errno_range() {
        assert_eq!(error_message(2), "System error 2");
    }

    #[test]
    fn unknown_code() {
        assert!(error_message(0x7f00_0000).starts_with("Unknown code"));
    }

    #[test]
    fn hook_intercepts() {
        sms_base();
        fn hook(_who: &str, _code: i32, _msg: &str) {}
        let old = set_com_err_hook(Some(hook));
        com_err("test", MrError::Perm.code(), "context");
        set_com_err_hook(old);
    }

    #[test]
    fn display_matches_message() {
        assert_eq!(MrError::List.to_string(), "No such list");
    }
}
