//! A shared virtual clock.
//!
//! Everything time-driven in Moira — record modtimes, DCM intervals,
//! `dfgen`/`dfcheck` bookkeeping, ticket lifetimes, update-protocol timeouts
//! — is expressed as "unix format time (number of seconds since January 1,
//! 1970 GMT)" per §5.7.1. The reproduction routes all of it through a
//! cloneable [`VClock`] handle so tests and the deployment simulator can
//! advance time deterministically instead of sleeping.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Midnight, January 1 1988 GMT — a period-appropriate default epoch.
pub const ATHENA_EPOCH: i64 = 567_993_600;

/// A cloneable handle on a shared virtual clock measured in unix seconds.
#[derive(Debug, Clone)]
pub struct VClock {
    now: Arc<AtomicI64>,
}

impl VClock {
    /// Creates a clock starting at `start` unix seconds.
    pub fn starting_at(start: i64) -> Self {
        VClock {
            now: Arc::new(AtomicI64::new(start)),
        }
    }

    /// Creates a clock starting at the [`ATHENA_EPOCH`].
    pub fn new() -> Self {
        Self::starting_at(ATHENA_EPOCH)
    }

    /// Current time in unix seconds.
    pub fn now(&self) -> i64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock by `secs` seconds, returning the new time.
    pub fn advance(&self, secs: i64) -> i64 {
        self.now.fetch_add(secs, Ordering::SeqCst) + secs
    }

    /// Advances the clock by `minutes` minutes, returning the new time.
    pub fn advance_minutes(&self, minutes: i64) -> i64 {
        self.advance(minutes * 60)
    }

    /// Sets the clock to an absolute time.
    pub fn set(&self, t: i64) {
        self.now.store(t, Ordering::SeqCst);
    }
}

impl Default for VClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a unix time as `YYYY-MM-DD HH:MM:SS` GMT.
///
/// A small civil-calendar conversion (days-from-civil inverse) so log lines
/// and generated `modtime` strings are human-readable without a chrono
/// dependency.
pub fn format_time(unix: i64) -> String {
    let days = unix.div_euclid(86_400);
    let secs = unix.rem_euclid(86_400);
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mth = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mth <= 2 { y + 1 } else { y };
    format!("{y:04}-{mth:02}-{d:02} {h:02}:{m:02}:{s:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = VClock::new();
        assert_eq!(c.now(), ATHENA_EPOCH);
        assert_eq!(c.advance(10), ATHENA_EPOCH + 10);
        c.advance_minutes(5);
        assert_eq!(c.now(), ATHENA_EPOCH + 10 + 300);
    }

    #[test]
    fn clones_share_state() {
        let a = VClock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now(), ATHENA_EPOCH + 100);
        b.set(0);
        assert_eq!(a.now(), 0);
    }

    #[test]
    fn formats_epoch() {
        assert_eq!(format_time(0), "1970-01-01 00:00:00");
        assert_eq!(format_time(ATHENA_EPOCH), "1988-01-01 00:00:00");
    }

    #[test]
    fn formats_leap_year() {
        // 1988-02-29 exists.
        let feb29 = ATHENA_EPOCH + 59 * 86_400;
        assert_eq!(format_time(feb29), "1988-02-29 00:00:00");
        assert_eq!(format_time(feb29 + 86_400), "1988-03-01 00:00:00");
    }

    #[test]
    fn formats_time_of_day() {
        assert_eq!(
            format_time(ATHENA_EPOCH + 6 * 3600 + 15 * 60 + 9),
            "1988-01-01 06:15:09"
        );
    }
}
