//! The hash-table abstraction shipped with the Moira application library
//! (§5.6.3).
//!
//! The original was a fixed-bucket chained table keyed by C strings; this is
//! a faithful, safe port: separate chaining, power-of-two bucket counts,
//! incremental growth, and an FNV-1a hash. It exists because the paper lists
//! it as part of the delivered library (clients and the server both use it
//! for caches), and it is the structure backing the server's access cache.

/// A chained hash table from `String` keys to values of type `V`.
#[derive(Debug, Clone)]
pub struct HashTable<V> {
    buckets: Vec<Vec<(String, V)>>,
    len: usize,
}

const INITIAL_BUCKETS: usize = 16;
const MAX_LOAD_NUM: usize = 3;
const MAX_LOAD_DEN: usize = 2;

fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl<V> HashTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        HashTable {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: &str) -> usize {
        (fnv1a(key) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn store(&mut self, key: &str, value: V) -> Option<V> {
        let b = self.bucket_of(key);
        for slot in &mut self.buckets[b] {
            if slot.0 == key {
                return Some(std::mem::replace(&mut slot.1, value));
            }
        }
        self.buckets[b].push((key.to_owned(), value));
        self.len += 1;
        if self.len * MAX_LOAD_DEN > self.buckets.len() * MAX_LOAD_NUM {
            self.grow();
        }
        None
    }

    /// Looks a key up.
    pub fn lookup(&self, key: &str) -> Option<&V> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn lookup_mut(&mut self, key: &str) -> Option<&mut V> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let b = self.bucket_of(key);
        let pos = self.buckets[b].iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(self.buckets[b].swap_remove(pos).1)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.buckets.iter().flatten().map(|(k, v)| (k.as_str(), v))
    }

    fn grow(&mut self) {
        let new_count = self.buckets.len() * 2;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_count).map(|_| Vec::new()).collect(),
        );
        for (k, v) in old.into_iter().flatten() {
            let b = (fnv1a(&k) as usize) & (new_count - 1);
            self.buckets[b].push((k, v));
        }
    }
}

impl<V> Default for HashTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_lookup() {
        let mut t = HashTable::new();
        assert!(t.is_empty());
        t.store("babette", 6530);
        t.store("abarba", 6531);
        assert_eq!(t.lookup("babette"), Some(&6530));
        assert_eq!(t.lookup("nobody"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replace_returns_old() {
        let mut t = HashTable::new();
        assert_eq!(t.store("k", 1), None);
        assert_eq!(t.store("k", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("k"), Some(&2));
    }

    #[test]
    fn remove_works() {
        let mut t = HashTable::new();
        t.store("k", 9);
        assert_eq!(t.remove("k"), Some(9));
        assert_eq!(t.remove("k"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn grows_past_initial_buckets() {
        let mut t = HashTable::new();
        for i in 0..1000 {
            t.store(&format!("user{i}"), i);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.lookup(&format!("user{i}")), Some(&i));
        }
    }

    #[test]
    fn lookup_mut_mutates() {
        let mut t = HashTable::new();
        t.store("q", 1);
        *t.lookup_mut("q").unwrap() += 10;
        assert_eq!(t.lookup("q"), Some(&11));
    }

    #[test]
    fn clear_empties() {
        let mut t = HashTable::new();
        for i in 0..10 {
            t.store(&i.to_string(), i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup("3"), None);
    }

    #[test]
    fn iter_sees_everything() {
        let mut t = HashTable::new();
        for i in 0..25 {
            t.store(&format!("k{i}"), i);
        }
        let mut seen: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
    }
}
