#![warn(missing_docs)]

//! Shared infrastructure for the Moira reproduction.
//!
//! This crate provides the pieces of the Athena environment that every other
//! crate leans on, mirroring the utility layer described in §5.6 of the
//! paper:
//!
//! - [`errors`] — the `com_err` error-table system and the full `MR_*` error
//!   code set from §7.1 of the paper.
//! - [`wildcard`] — the INGRES-style `*`/`?` pattern matcher used by
//!   retrieval queries.
//! - [`strutil`] — string utilities (trim, hostname canonicalization,
//!   flag conversion) listed in §5.6.3.
//! - [`hashtab`] / [`queue`] — the hash-table and queue abstractions the
//!   application library ships (§5.6.3).
//! - [`menu`] — the menu package used by the administrative clients.
//! - [`clock`] — a virtual clock so DCM intervals and modtimes are
//!   deterministic under test and in the deployment simulator.
//! - [`rng`] — a small deterministic PRNG for reproducible workloads.

pub mod clock;
pub mod crc;
pub mod errors;
pub mod hashtab;
pub mod lockorder;
pub mod menu;
pub mod queue;
pub mod rng;
pub mod strutil;
pub mod wildcard;

pub use clock::VClock;
pub use errors::{error_message, MrError, MrResult};
pub use rng::Mt;
