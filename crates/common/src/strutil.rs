//! String utility routines from the Moira application library (§5.6.3):
//! whitespace trimming, hostname canonicalization, and conversion between
//! flag integers and human-readable strings.

/// Trims leading and trailing ASCII whitespace, returning an owned string.
///
/// # Examples
///
/// ```
/// assert_eq!(moira_common::strutil::trim("  e40-po \t"), "e40-po");
/// ```
pub fn trim(s: &str) -> String {
    s.trim().to_owned()
}

/// Canonicalizes a hostname the way Moira stores machine names: uppercase,
/// whitespace trimmed, trailing dots removed.
///
/// All machine names are case insensitive and are returned in uppercase
/// (§7.0.2).
///
/// # Examples
///
/// ```
/// use moira_common::strutil::canonicalize_hostname;
/// assert_eq!(canonicalize_hostname("suomi.mit.edu."), "SUOMI.MIT.EDU");
/// ```
pub fn canonicalize_hostname(name: &str) -> String {
    let mut s = name.trim().to_ascii_uppercase();
    while s.ends_with('.') {
        s.pop();
    }
    s
}

/// One named flag bit for [`flags_to_string`] / [`string_to_flags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagDef {
    /// Human-readable flag name.
    pub name: &'static str,
    /// The bit this flag controls.
    pub bit: u32,
}

/// The NFSPHYS partition-status bits (§6, NFSPHYS table).
pub const NFSPHYS_FLAGS: &[FlagDef] = &[
    FlagDef {
        name: "student",
        bit: 1 << 0,
    },
    FlagDef {
        name: "faculty",
        bit: 1 << 1,
    },
    FlagDef {
        name: "staff",
        bit: 1 << 2,
    },
    FlagDef {
        name: "misc",
        bit: 1 << 3,
    },
];

/// Converts a flags integer to a human-readable comma-separated string.
///
/// Unknown bits are rendered as `#<value>` so no information is lost.
///
/// # Examples
///
/// ```
/// use moira_common::strutil::{flags_to_string, NFSPHYS_FLAGS};
/// assert_eq!(flags_to_string(0b0101, NFSPHYS_FLAGS), "student,staff");
/// assert_eq!(flags_to_string(0, NFSPHYS_FLAGS), "none");
/// ```
pub fn flags_to_string(flags: u32, defs: &[FlagDef]) -> String {
    let mut parts = Vec::new();
    let mut seen = 0u32;
    for def in defs {
        if flags & def.bit != 0 {
            parts.push(def.name.to_owned());
            seen |= def.bit;
        }
    }
    let leftover = flags & !seen;
    if leftover != 0 {
        parts.push(format!("#{leftover}"));
    }
    if parts.is_empty() {
        "none".to_owned()
    } else {
        parts.join(",")
    }
}

/// Parses a human-readable flag string back to the flags integer.
///
/// Accepts the output of [`flags_to_string`], including `none` and `#<n>`
/// escapes. Unknown names yield `None`.
pub fn string_to_flags(s: &str, defs: &[FlagDef]) -> Option<u32> {
    let s = s.trim();
    if s.is_empty() || s == "none" {
        return Some(0);
    }
    let mut flags = 0u32;
    for part in s.split(',') {
        let part = part.trim();
        if let Some(raw) = part.strip_prefix('#') {
            flags |= raw.parse::<u32>().ok()?;
        } else {
            flags |= defs.iter().find(|d| d.name == part)?.bit;
        }
    }
    Some(flags)
}

/// Checks a string for characters Moira forbids in names (§7.1
/// `MR_BAD_CHAR`): control characters, and the field separators used by the
/// backup format and generated files.
pub fn has_bad_chars(s: &str) -> bool {
    s.chars()
        .any(|c| c.is_control() || c == ':' || c == ';' || c == '"' || c == '\\')
}

/// Returns true if `s` parses as an integer (`MR_INTEGER` check).
pub fn is_integer(s: &str) -> bool {
    s.trim().parse::<i64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_works() {
        assert_eq!(trim(" \t x y \n"), "x y");
        assert_eq!(trim(""), "");
    }

    #[test]
    fn canonicalization() {
        assert_eq!(canonicalize_hostname(" kiwi.mit.edu"), "KIWI.MIT.EDU");
        assert_eq!(canonicalize_hostname("BITSY.MIT.EDU"), "BITSY.MIT.EDU");
        assert_eq!(canonicalize_hostname("dot."), "DOT");
    }

    #[test]
    fn flags_round_trip() {
        for flags in 0..16u32 {
            let s = flags_to_string(flags, NFSPHYS_FLAGS);
            assert_eq!(string_to_flags(&s, NFSPHYS_FLAGS), Some(flags), "{s}");
        }
    }

    #[test]
    fn unknown_bits_preserved() {
        let s = flags_to_string(0x30, NFSPHYS_FLAGS);
        assert_eq!(s, "#48");
        assert_eq!(string_to_flags(&s, NFSPHYS_FLAGS), Some(0x30));
    }

    #[test]
    fn unknown_flag_name_rejected() {
        assert_eq!(string_to_flags("students", NFSPHYS_FLAGS), None);
    }

    #[test]
    fn bad_chars() {
        assert!(has_bad_chars("a:b"));
        assert!(has_bad_chars("a\nb"));
        assert!(has_bad_chars("a\\b"));
        assert!(!has_bad_chars("Harmon C Fowler,,,,"));
    }

    #[test]
    fn integer_check() {
        assert!(is_integer("42"));
        assert!(is_integer(" -7 "));
        assert!(!is_integer("6h"));
        assert!(!is_integer(""));
    }
}
