//! Runtime lock-order witness configuration.
//!
//! The static lint proves lock discipline over the calls it can resolve;
//! the runtime witness covers the rest (dynamic dispatch, closures,
//! destructured receivers) by recording acquired-while-held edges as the
//! code actually runs — lockdep-style. `MOIRA_LOCK_ORDER` selects how loud
//! the witness is:
//!
//! - `off` — record nothing (release default);
//! - `observe` — record edges and remember the first ordering cycle /
//!   re-entrant acquisition, queryable by tests (debug default);
//! - `strict` — panic at the violation site with the recorded edges, so
//!   the offending test fails loudly (the CI lockdep job).

use std::sync::OnceLock;

/// How the runtime lock-order witness reacts to violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderMode {
    /// Witness disabled; zero bookkeeping.
    Off,
    /// Record edges, remember violations, never panic.
    Observe,
    /// Panic at the violation site with the edge dump.
    Strict,
}

/// The process-wide witness mode: `MOIRA_LOCK_ORDER` if set (`off` /
/// `observe` / `strict`), otherwise `Observe` in debug builds and `Off` in
/// release. Read once; changing the variable mid-process has no effect.
pub fn order_mode() -> OrderMode {
    static MODE: OnceLock<OrderMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("MOIRA_LOCK_ORDER").as_deref() {
        Ok("strict") => OrderMode::Strict,
        Ok("observe") => OrderMode::Observe,
        Ok("off") => OrderMode::Off,
        _ => {
            if cfg!(debug_assertions) {
                OrderMode::Observe
            } else {
                OrderMode::Off
            }
        }
    })
}
