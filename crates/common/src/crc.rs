//! CRC-32 (IEEE 802.3), shared by the DCM archive manifest and the
//! write-ahead log frame codec.
//!
//! One implementation so a WAL frame checksum and an archive member
//! checksum computed over the same bytes always agree — the recovery
//! torture tests compare both.

/// CRC-32 (IEEE 802.3) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"moira wal frame");
        let mut flipped = b"moira wal frame".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }
}
