//! The simple queue abstraction from the Moira application library (§5.6.3).
//!
//! A growable ring-buffer FIFO. The DCM uses it to order host updates and
//! the server loop uses it for pending replies.

/// A FIFO queue over a growable ring buffer.
#[derive(Debug, Clone)]
pub struct Queue<T> {
    items: std::collections::VecDeque<T>,
}

impl<T> Queue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Queue {
            items: std::collections::VecDeque::new(),
        }
    }

    /// Appends an element at the tail.
    pub fn enqueue(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// Removes and returns the head element, if any.
    pub fn dequeue(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the head element without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drains the queue in FIFO order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..)
    }
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FromIterator<T> for Queue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Queue {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = Queue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = Queue::new();
        q.enqueue("a");
        assert_eq!(q.peek(), Some(&"a"));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_operations() {
        let mut q = Queue::new();
        q.enqueue(1);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn from_iterator_and_drain() {
        let mut q: Queue<i32> = (0..5).collect();
        let drained: Vec<i32> = q.drain().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }
}
