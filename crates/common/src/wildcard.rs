//! The wildcard pattern matcher used by Moira retrieval queries.
//!
//! Many predefined queries (§7) accept names that "may contain wildcards".
//! Moira's convention, inherited from its INGRES heritage, is `*` matching
//! any run of characters and `?` matching exactly one. Matching is
//! non-backtracking-explosion-safe (classic two-pointer glob algorithm).

/// Returns true if `text` matches `pattern`, where `*` matches any run of
/// characters (including empty) and `?` matches exactly one character.
///
/// # Examples
///
/// ```
/// use moira_common::wildcard::matches;
/// assert!(matches("*", "anything"));
/// assert!(matches("bldg*-vs", "bldge40-vs"));
/// assert!(matches("e40-p?", "e40-po"));
/// assert!(!matches("e40-p?", "e40-p"));
/// ```
pub fn matches(pattern: &str, text: &str) -> bool {
    matches_impl(pattern.as_bytes(), text.as_bytes(), false)
}

/// Case-insensitive variant of [`matches()`], used for machine and service
/// names which Moira stores in uppercase but compares case-insensitively.
pub fn matches_ci(pattern: &str, text: &str) -> bool {
    matches_impl(pattern.as_bytes(), text.as_bytes(), true)
}

fn eq_byte(a: u8, b: u8, ci: bool) -> bool {
    if ci {
        a.eq_ignore_ascii_case(&b)
    } else {
        a == b
    }
}

fn matches_impl(pat: &[u8], text: &[u8], ci: bool) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        // The star branch must win even when the text byte is a literal
        // `*`, or patterns like `*` would fail on text containing stars.
        if p < pat.len() && pat[p] == b'*' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if p < pat.len() && (pat[p] == b'?' || eq_byte(pat[p], text[t], ci)) {
            p += 1;
            t += 1;
        } else if star_p != usize::MAX {
            p = star_p + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == b'*' {
        p += 1;
    }
    p == pat.len()
}

/// Returns true if `s` contains any wildcard metacharacter.
///
/// Queries that require a name to "match exactly one" object reject
/// patterns; this is the check they use.
pub fn has_wildcards(s: &str) -> bool {
    s.contains('*') || s.contains('?')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(matches("babette", "babette"));
        assert!(!matches("babette", "babett"));
        assert!(!matches("babett", "babette"));
    }

    #[test]
    fn star_runs() {
        assert!(matches("*", ""));
        assert!(matches("*", "x"));
        assert!(matches("a*b*c", "aXXbYYc"));
        assert!(matches("a*b*c", "abc"));
        assert!(!matches("a*b*c", "acb"));
    }

    #[test]
    fn question_single() {
        assert!(matches("???", "abc"));
        assert!(!matches("???", "ab"));
        assert!(!matches("???", "abcd"));
    }

    #[test]
    fn trailing_stars() {
        assert!(matches("abc***", "abc"));
        assert!(matches("**", ""));
    }

    #[test]
    fn case_sensitivity() {
        assert!(!matches("ABC", "abc"));
        assert!(matches_ci("ABC", "abc"));
        assert!(matches_ci("suomi.*.edu", "SUOMI.MIT.EDU"));
    }

    #[test]
    fn wildcard_detection() {
        assert!(has_wildcards("e40-*"));
        assert!(has_wildcards("e40-?"));
        assert!(!has_wildcards("e40-po"));
    }

    #[test]
    fn adversarial_backtracking() {
        // A pattern that would blow up naive recursive matching.
        let text = "a".repeat(2000);
        let pattern = "a*a*a*a*a*a*a*a*a*b";
        assert!(!matches(pattern, &text));
        let pattern_ok = "a*a*a*a*a*a*a*a*a*a";
        assert!(matches(pattern_ok, &text));
    }
}
