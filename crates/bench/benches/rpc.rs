//! B1: RPC dispatch — noop and simple query round trips through the
//! in-process transport, plus direct-glue dispatch (the §5.6 "significantly
//! higher throughput" claim).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use moira_client::{DirectClient, MoiraConn, ServerThread};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::server::MoiraServer;
use moira_core::state::{shared, MoiraState, SharedState};
use moira_sim::{populate, PopulationSpec};

fn setup() -> (SharedState, Arc<Registry>, String) {
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &PopulationSpec::small()).unwrap();
    (shared(state), registry, report.active_logins[0].clone())
}

fn bench_rpc(c: &mut Criterion) {
    let (state, registry, login) = setup();
    let server = MoiraServer::new(state.clone(), registry.clone(), None);
    let thread = ServerThread::spawn(server);
    let mut client = thread.connect();
    client.auth("root", "bench").unwrap();

    c.bench_function("rpc_noop", |b| {
        b.iter(|| client.noop().unwrap());
    });
    c.bench_function("rpc_get_user_by_login", |b| {
        b.iter(|| {
            let rows = client
                .query_collect("get_user_by_login", &[&login])
                .unwrap();
            black_box(rows);
        });
    });

    let mut glue = DirectClient::connect_as_root(state, registry, "bench");
    c.bench_function("glue_get_user_by_login", |b| {
        b.iter(|| {
            let rows = glue.query_collect("get_user_by_login", &[&login]).unwrap();
            black_box(rows);
        });
    });
    c.bench_function("glue_wildcard_scan", |b| {
        b.iter(|| {
            let rows = glue.query_collect("get_machine", &["*"]).unwrap();
            black_box(rows);
        });
    });
}

criterion_group!(benches, bench_rpc);
criterion_main!(benches);
