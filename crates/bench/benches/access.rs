//! B2 / E6 companion: access-check cost with the §5.5 cache on and off.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use moira_core::access::caller_has_capability;
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::{shared, Caller, MoiraState, SharedState};
use moira_sim::{populate, PopulationSpec};

fn setup() -> (SharedState, String) {
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &PopulationSpec::small()).unwrap();
    let operator = report.active_logins[0].clone();
    let root = Caller::root("bench");
    registry
        .execute(
            &mut state,
            &root,
            "add_member_to_list",
            &["moira-admins".into(), "USER".into(), operator.clone()],
        )
        .unwrap();
    (shared(state), operator)
}

fn bench_access(c: &mut Criterion) {
    let (state, operator) = setup();
    let caller = Caller::new(&operator, "bench");

    c.bench_function("access_check_cached", |b| {
        let s = state.read();
        s.access_cache.set_enabled(true);
        b.iter(|| black_box(caller_has_capability(&s, &caller, "add_user")));
    });
    c.bench_function("access_check_uncached", |b| {
        let s = state.read();
        s.access_cache.set_enabled(false);
        b.iter(|| black_box(caller_has_capability(&s, &caller, "add_user")));
    });
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
