//! B4: wire encode/decode and archive serialization throughput.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use moira_dcm::archive::{crc32, Archive};
use moira_protocol::wire::{MajorRequest, Reply, Request};

fn bench_protocol(c: &mut Criterion) {
    let request = Request::new(MajorRequest::Query, &["get_user_by_login", "babette"]);
    let encoded = request.encode();
    c.bench_function("request_encode", |b| b.iter(|| black_box(request.encode())));
    c.bench_function("request_decode", |b| {
        b.iter(|| black_box(Request::decode(encoded.clone()).unwrap()))
    });

    let tuple = Reply::tuple(&[
        "babette".into(),
        "6530".into(),
        "/bin/csh".into(),
        "Fowler".into(),
        "Harmon".into(),
        "C".into(),
    ]);
    let tuple_encoded = tuple.encode();
    c.bench_function("reply_encode", |b| b.iter(|| black_box(tuple.encode())));
    c.bench_function("reply_decode", |b| {
        b.iter(|| black_box(Reply::decode(tuple_encoded.clone()).unwrap()))
    });

    let mut archive = Archive::new();
    for i in 0..11 {
        archive
            .add(&format!("file{i}.db"), vec![b'x'; 50_000])
            .unwrap();
    }
    let bytes = archive.to_bytes();
    c.bench_function("archive_serialize_550k", |b| {
        b.iter(|| black_box(archive.to_bytes()))
    });
    c.bench_function("archive_crc32_550k", |b| {
        b.iter(|| black_box(crc32(&bytes)))
    });
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
