//! B5: mrbackup / mrrestore throughput on a populated database.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use moira_core::registry::Registry;
use moira_core::schema::create_all_tables;
use moira_core::seed::seed_capacls;
use moira_core::state::MoiraState;
use moira_db::backup::{mrbackup, mrrestore};
use moira_db::Database;
use moira_sim::{populate, PopulationSpec};

fn bench_backup(c: &mut Criterion) {
    let registry = Registry::standard();
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    populate(
        &mut state,
        &registry,
        &PopulationSpec::small().scaled_users(1_000),
    )
    .unwrap();

    c.bench_function("mrbackup_1k_users", |b| {
        b.iter(|| black_box(mrbackup(&state.db)))
    });
    let backup = mrbackup(&state.db);
    c.bench_function("mrrestore_1k_users", |b| {
        b.iter(|| {
            let mut fresh = Database::new(moira_common::VClock::new());
            create_all_tables(&mut fresh);
            black_box(mrrestore(&mut fresh, &backup).unwrap());
        })
    });
}

criterion_group!(benches, bench_backup);
criterion_main!(benches);
