//! B6: registration-server request latency (verify / grab / set_password).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use moira_core::userreg::{make_authenticator, RegRequest};
use moira_sim::{Deployment, PopulationSpec};

fn bench_userreg(c: &mut Criterion) {
    let mut spec = PopulationSpec::small();
    spec.unregistered_users = 5_000;
    let d = Deployment::build(&spec);
    let students = d.population.unregistered.clone();

    let (first, last, id) = students[0].clone();
    c.bench_function("verify_user", |b| {
        let auth = make_authenticator(&id, &first, &last, None);
        b.iter(|| {
            black_box(d.regserver.handle(&RegRequest::VerifyUser {
                first: first.clone(),
                last: last.clone(),
                authenticator: auth.clone(),
            }))
        });
    });

    c.bench_function("grab_login_full", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (first, last, id) = &students[i % students.len()];
            let login = format!("b{i:06}");
            i += 1;
            black_box(d.regserver.handle(&RegRequest::GrabLogin {
                first: first.clone(),
                last: last.clone(),
                authenticator: make_authenticator(id, first, last, Some(&login)),
            }))
        });
    });
}

criterion_group!(benches, bench_userreg);
criterion_main!(benches);
