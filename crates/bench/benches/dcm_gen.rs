//! B3: per-service file generation cost at a few population scales.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::MoiraState;
use moira_dcm::generators::standard_generators;
use moira_sim::{populate, PopulationSpec};

fn state_at(users: usize) -> MoiraState {
    let registry = Registry::standard();
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let spec = PopulationSpec::small().scaled_users(users);
    populate(&mut state, &registry, &spec).unwrap();
    state
}

fn bench_generators(c: &mut Criterion) {
    for users in [100usize, 1_000] {
        let state = state_at(users);
        for generator in standard_generators() {
            c.bench_with_input(
                BenchmarkId::new(format!("generate_{}", generator.service()), users),
                &users,
                |b, _| {
                    b.iter(|| black_box(generator.generate(&state, "").unwrap()));
                },
            );
        }
    }
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
