//! Experiment E3: the §5.1.C claim — "Over 100 query handles provide
//! efficient, database independent methods of accessing data."
//!
//! Counts and classifies the registered query handles.

use moira_bench::{write_json, Table};
use moira_core::registry::{QueryKind, Registry};

fn main() {
    let registry = Registry::standard();
    let mut by_kind = std::collections::BTreeMap::new();
    for h in registry.handles() {
        *by_kind.entry(format!("{:?}", h.kind)).or_insert(0u64) += 1;
    }
    let mut table = Table::new(&["Class", "Handles"]);
    for (kind, count) in &by_kind {
        table.row(&[kind.clone(), count.to_string()]);
    }
    table.row(&["TOTAL".into(), registry.len().to_string()]);
    table.print("E3 — Query handle catalog (paper claim: over 100 query handles)");
    println!(
        "\n{} query handles registered; paper claims \"over 100\": {}",
        registry.len(),
        if registry.len() > 100 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );

    let mut catalog = Table::new(&["Query", "Tag", "Class", "Args", "Returns"]);
    for h in registry.handles() {
        catalog.row(&[
            h.name.to_string(),
            h.shortname.to_string(),
            format!("{:?}", h.kind),
            h.args.len().to_string(),
            h.returns.len().to_string(),
        ]);
    }
    catalog.print("Full predefined query catalog (§7)");

    let retrieves = registry
        .handles()
        .iter()
        .filter(|h| h.kind == QueryKind::Retrieve)
        .count();
    write_json(
        "table_query_catalog",
        &serde_json::json!({
            "total": registry.len(),
            "by_kind": by_kind,
            "retrieves": retrieves,
            "paper_claim": "over 100",
            "reproduced": registry.len() > 100,
        }),
    );
}
