//! Experiment E11: the deployment-shape claims of §5.1.
//!
//! B: "To date there are four system services which are supported" and
//! "over 20 separate files used to support the above services";
//! C: "Over 100 query handles";
//! H: "Currently there are twelve interface programs";
//! plus the 21 relations of §6 and the §5.1.F server counts.

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::schema::RELATIONS;
use moira_db::Pred;
use moira_sim::{Deployment, PopulationSpec};

fn main() {
    eprintln!("building the paper-scale deployment…");
    let mut d = Deployment::build(&PopulationSpec::athena_1988());
    let report = d.run_dcm_once();
    let registry = Registry::standard();

    let services_supported = {
        let s = d.state.read();
        // The paper's four supported services; POP is load bookkeeping and
        // PASSWD is this reproduction's documented extension.
        ["HESIOD", "NFS", "MAIL", "ZEPHYR"]
            .iter()
            .filter(|n| {
                s.db.table("servers")
                    .select_one(&Pred::Eq("name", (**n).into()))
                    .is_some()
            })
            .count()
    };
    let distinct_files: usize = report.generated.iter().map(|(_, n, _)| n).sum::<usize>()
        // NFS per-host files counted from an actual host archive.
        + {
            let s = d.state.read();
            let mach = s
                .db
                .table("machine")
                .select_one(&Pred::Eq("name", d.population.nfs_servers[0].as_str().into()))
                .unwrap();
            let mach_id = s.db.cell("machine", mach, "mach_id").as_int();
            moira_dcm::generators::nfs::NfsGenerator::for_host(&s, mach_id, "")
                .expect("distinct partition stems")
                .len()
        }
        - 1; // the shared credentials file was already counted once

    let rows: Vec<(String, String, String, bool)> = vec![
        (
            "system services supported (§5.1.B)".into(),
            "4".into(),
            services_supported.to_string(),
            services_supported == 4,
        ),
        (
            "separate server files (§5.1.B: over 20)".into(),
            ">20".into(),
            distinct_files.to_string(),
            distinct_files > 20,
        ),
        (
            "query handles (§5.1.C: over 100)".into(),
            ">100".into(),
            registry.len().to_string(),
            registry.len() > 100,
        ),
        (
            "interface programs (§5.1.H)".into(),
            "12".into(),
            moira_client::apps::INTERFACE_PROGRAMS.len().to_string(),
            moira_client::apps::INTERFACE_PROGRAMS.len() == 12,
        ),
        (
            "database relations (§6; incl. virtual TBLSTATS)".into(),
            "21".into(),
            (RELATIONS.len() + 1).to_string(),
            RELATIONS.len() + 1 == 21,
        ),
        (
            "NFS locker servers (§5.1.F)".into(),
            "20".into(),
            d.population.nfs_servers.len().to_string(),
            d.population.nfs_servers.len() == 20,
        ),
        (
            "active users designed for (§5.1.A)".into(),
            "10000".into(),
            d.population.active_logins.len().to_string(),
            d.population.active_logins.len() == 10_000,
        ),
    ];

    let mut table = Table::new(&["Claim", "Paper", "Measured", "Reproduced"]);
    let mut all = true;
    let mut json_rows = Vec::new();
    for (claim, paper, measured, ok) in &rows {
        table.row(&[
            claim.clone(),
            paper.clone(),
            measured.clone(),
            ok.to_string(),
        ]);
        all &= ok;
        json_rows.push(serde_json::json!({
            "claim": claim, "paper": paper, "measured": measured, "reproduced": ok,
        }));
    }
    table.print("E11 — Deployment shape (§5.1 quantitative claims)");
    println!("\nall shape claims reproduced: {all}");
    write_json(
        "table_deployment_shape",
        &serde_json::json!({"rows": json_rows, "all_reproduced": all}),
    );
}
