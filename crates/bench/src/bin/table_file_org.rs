//! Experiment E1: the §5.1.G File Organization table.
//!
//! Builds the paper-scale population (10,000 active users, 20 NFS servers,
//! one Hesiod target, one mail hub, three Zephyr servers), runs every
//! generator, and prints Service / File / Size / Number / Propagations /
//! Interval with the paper's reported sizes alongside. The paper's totals
//! — 59 files, 90 propagations — are reproduced structurally.

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::MoiraState;
use moira_db::Pred;
use moira_dcm::generators::hesiod::HesiodGenerator;
use moira_dcm::generators::mail::MailGenerator;
use moira_dcm::generators::nfs::NfsGenerator;
use moira_dcm::generators::zephyr::ZephyrGenerator;
use moira_dcm::generators::Generator;
use moira_sim::{populate, PopulationSpec};

/// The paper's reported sizes, byte for byte, for the comparison column.
const PAPER: &[(&str, &str, u64, u64, u64, &str)] = &[
    ("Hesiod", "cluster.db", 53_656, 1, 1, "6 hours"),
    ("Hesiod", "filsys.db", 541_482, 1, 1, "6 hours"),
    ("Hesiod", "gid.db", 341_012, 1, 1, "6 hours"),
    ("Hesiod", "group.db", 453_636, 1, 1, "6 hours"),
    ("Hesiod", "grplist.db", 357_662, 1, 1, "6 hours"),
    ("Hesiod", "passwd.db", 712_446, 1, 1, "6 hours"),
    ("Hesiod", "pobox.db", 415_688, 1, 1, "6 hours"),
    ("Hesiod", "printcap.db", 4_318, 1, 1, "6 hours"),
    ("Hesiod", "service.db", 9_052, 1, 1, "6 hours"),
    ("Hesiod", "sloc.db", 3_734, 1, 1, "6 hours"),
    ("Hesiod", "uid.db", 256_381, 1, 1, "6 hours"),
    ("NFS", "<partition>.dirs", 2_784, 20, 20, "12 hours"),
    ("NFS", "<partition>.quotas", 1_205, 20, 20, "12 hours"),
    ("NFS", "credentials", 152_648, 1, 20, "12 hours"),
    ("Mail", "/usr/lib/aliases", 445_000, 1, 1, "24 hours"),
    ("Zephyr", "class.acl", 100, 6, 18, "24 hours"),
];

fn main() {
    eprintln!("building the 10,000-user Athena population (this is the paper's full scale)…");
    let spec = PopulationSpec::athena_1988();
    let registry = Registry::standard();
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let t0 = std::time::Instant::now();
    let report = populate(&mut state, &registry, &spec).expect("population");
    eprintln!(
        "populated: {} active users, {} queries, {:.1}s",
        report.active_logins.len(),
        report.queries_run,
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    let hesiod = HesiodGenerator
        .generate(&state, "")
        .expect("hesiod generation");
    let mail = MailGenerator.generate(&state, "").expect("mail generation");
    let zephyr = ZephyrGenerator
        .generate(&state, "")
        .expect("zephyr generation");
    // NFS files are per-host; take the first server as the representative
    // (as the paper's single-size rows do) and count all twenty.
    let nfs_mach_ids: Vec<i64> = report
        .nfs_servers
        .iter()
        .map(|name| {
            let row = state
                .db
                .table("machine")
                .select_one(&Pred::Eq("name", name.as_str().into()))
                .expect("nfs server machine");
            state.db.cell("machine", row, "mach_id").as_int()
        })
        .collect();
    let nfs_archives: Vec<_> = nfs_mach_ids
        .iter()
        .map(|&m| NfsGenerator::for_host(&state, m, "").expect("distinct partition stems"))
        .collect();
    eprintln!(
        "generated all service files in {:.2}s",
        t1.elapsed().as_secs_f64()
    );

    let mut measured: Vec<(String, String, u64, u64, u64, String)> = Vec::new();
    let hesiod_props = report.hesiod_servers.len() as u64;
    for (name, data) in hesiod.iter() {
        measured.push((
            "Hesiod".into(),
            name.to_owned(),
            data.len() as u64,
            1,
            hesiod_props,
            "6 hours".into(),
        ));
    }
    let rep = &nfs_archives[0];
    let dirs_size = rep
        .iter()
        .find(|(n, _)| n.ends_with(".dirs"))
        .map(|(_, d)| d.len())
        .unwrap_or(0);
    let quota_size = rep
        .iter()
        .find(|(n, _)| n.ends_with(".quotas"))
        .map(|(_, d)| d.len())
        .unwrap_or(0);
    let cred_size = rep.get("credentials").map(|d| d.len()).unwrap_or(0);
    let n = nfs_archives.len() as u64;
    measured.push((
        "NFS".into(),
        "<partition>.dirs".into(),
        dirs_size as u64,
        n,
        n,
        "12 hours".into(),
    ));
    measured.push((
        "NFS".into(),
        "<partition>.quotas".into(),
        quota_size as u64,
        n,
        n,
        "12 hours".into(),
    ));
    measured.push((
        "NFS".into(),
        "credentials".into(),
        cred_size as u64,
        1,
        n,
        "12 hours".into(),
    ));
    let aliases_size = mail.get("aliases").map(|d| d.len()).unwrap_or(0);
    measured.push((
        "Mail".into(),
        "/usr/lib/aliases".into(),
        aliases_size as u64,
        1,
        report.mail_hubs.len() as u64,
        "24 hours".into(),
    ));
    let zfiles = zephyr.len() as u64;
    let zsize = (zephyr.payload_size() as u64)
        .checked_div(zfiles)
        .unwrap_or(0);
    let zprops = zfiles * report.zephyr_servers.len() as u64;
    measured.push((
        "Zephyr".into(),
        "class.acl".into(),
        zsize,
        zfiles,
        zprops,
        "24 hours".into(),
    ));

    let mut table = Table::new(&[
        "Service",
        "File",
        "Size",
        "Paper size",
        "Number",
        "Propagations",
        "Interval",
    ]);
    let mut total_files = 0u64;
    let mut total_props = 0u64;
    let mut json_rows = Vec::new();
    for (svc, file, size, number, props, interval) in &measured {
        let paper = PAPER
            .iter()
            .find(|(ps, pf, ..)| ps == svc && (pf == file || file.ends_with(pf)))
            .map(|(_, _, sz, ..)| sz.to_string())
            .unwrap_or_else(|| "-".into());
        table.row(&[
            svc.clone(),
            file.clone(),
            size.to_string(),
            paper,
            number.to_string(),
            props.to_string(),
            interval.clone(),
        ]);
        total_files += number;
        total_props += props;
        json_rows.push(serde_json::json!({
            "service": svc, "file": file, "size": size,
            "number": number, "propagations": props, "interval": interval,
        }));
    }
    table.row(&[
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        total_files.to_string(),
        total_props.to_string(),
        String::new(),
    ]);
    table.print("E1 — File Organization (paper §5.1.G; paper totals: 59 files, 90 propagations)");
    println!(
        "\nmeasured totals: {total_files} files, {total_props} propagations \
         (paper: 59 files, 90 propagations)"
    );
    write_json(
        "table_file_org",
        &serde_json::json!({
            "rows": json_rows,
            "total_files": total_files,
            "total_propagations": total_props,
            "paper_total_files": 59,
            "paper_total_propagations": 90,
        }),
    );
}
