//! Experiment E4: the §5.2.2 claim — "mrbackup copies each relation of the
//! current Moira database into an ASCII file … the ascii files take up
//! about 3.2 MB of space."
//!
//! Dumps the paper-scale database with `mrbackup`, reports per-relation and
//! total sizes, and validates `mrrestore` round-trips the contents.

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::schema::create_all_tables;
use moira_core::seed::seed_capacls;
use moira_core::state::MoiraState;
use moira_db::backup::{backup_size, mrbackup, mrrestore};
use moira_db::Database;
use moira_sim::{populate, PopulationSpec};

fn main() {
    eprintln!("building the 10,000-user population…");
    let registry = Registry::standard();
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    populate(&mut state, &registry, &PopulationSpec::athena_1988()).expect("population");

    let t0 = std::time::Instant::now();
    let backup = mrbackup(&state.db);
    let dump_secs = t0.elapsed().as_secs_f64();
    let total = backup_size(&backup);

    let mut table = Table::new(&["Relation", "Rows", "Bytes"]);
    let mut json_rows = Vec::new();
    for (name, dump) in &backup {
        let rows = dump.lines().count();
        table.row(&[name.clone(), rows.to_string(), dump.len().to_string()]);
        json_rows.push(serde_json::json!({"relation": name, "rows": rows, "bytes": dump.len()}));
    }
    table.row(&["TOTAL".into(), String::new(), total.to_string()]);
    table.print("E4 — mrbackup ASCII dump (paper: about 3.2 MB)");
    println!(
        "\ntotal dump: {:.2} MB in {dump_secs:.2}s (paper: ~3.2 MB); \
         same order of magnitude: {}",
        total as f64 / 1_000_000.0,
        (1_000_000..12_000_000).contains(&total)
    );

    // Restore into a fresh schema and verify integrity.
    let t1 = std::time::Instant::now();
    let mut fresh = Database::new(moira_common::VClock::new());
    create_all_tables(&mut fresh);
    let restored = mrrestore(&mut fresh, &backup).expect("restore");
    let verify = mrbackup(&fresh);
    assert_eq!(verify, backup, "restore must round-trip byte-for-byte");
    println!(
        "mrrestore: {restored} rows restored in {:.2}s; re-dump identical: true",
        t1.elapsed().as_secs_f64()
    );

    write_json(
        "table_backup_size",
        &serde_json::json!({
            "relations": json_rows,
            "total_bytes": total,
            "paper_bytes": 3_200_000u64,
            "rows_restored": restored,
            "round_trip_identical": true,
        }),
    );
}
