//! Experiment E12 (extension): scaling behaviour up to the design point.
//!
//! §5.1.A: "The system is designed optimally for 10,000 active users."
//! Sweeps the population from 1,000 to 10,000 active users and measures
//! population-build cost, full Hesiod generation, one indexed lookup, and
//! the passwd.db size — the curves should stay (near-)linear through the
//! design point.

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::{Caller, MoiraState};
use moira_dcm::generators::hesiod::HesiodGenerator;
use moira_dcm::generators::Generator;
use moira_sim::{populate, PopulationSpec};

fn main() {
    let mut table = Table::new(&[
        "Active users",
        "Populate (s)",
        "Hesiod generate (ms)",
        "get_user_by_login (µs)",
        "passwd.db (bytes)",
    ]);
    let mut json_rows = Vec::new();
    for users in [1_000usize, 2_500, 5_000, 10_000] {
        eprintln!("building {users} users…");
        let spec = PopulationSpec::athena_1988().scaled_users(users);
        let registry = Registry::standard();
        let mut state = MoiraState::new(moira_common::VClock::new());
        seed_capacls(&mut state, &registry);
        let t0 = std::time::Instant::now();
        let report = populate(&mut state, &registry, &spec).expect("population");
        let populate_s = t0.elapsed().as_secs_f64();

        let t1 = std::time::Instant::now();
        let archive = HesiodGenerator.generate(&state, "").expect("generate");
        let generate_ms = t1.elapsed().as_secs_f64() * 1e3;
        let passwd_size = archive.get("passwd.db").map(|d| d.len()).unwrap_or(0);

        // Indexed point lookup latency (mean over 1,000 queries).
        let probe = report.active_logins[users / 2].clone();
        let root = Caller::root("e12");
        let t2 = std::time::Instant::now();
        for _ in 0..1_000 {
            registry
                .execute(
                    &mut state,
                    &root,
                    "get_user_by_login",
                    std::slice::from_ref(&probe),
                )
                .unwrap();
        }
        let lookup_us = t2.elapsed().as_secs_f64() * 1e6 / 1_000.0;

        table.row(&[
            users.to_string(),
            format!("{populate_s:.2}"),
            format!("{generate_ms:.1}"),
            format!("{lookup_us:.1}"),
            passwd_size.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "users": users,
            "populate_s": populate_s,
            "generate_ms": generate_ms,
            "lookup_us": lookup_us,
            "passwd_bytes": passwd_size,
        }));
    }
    table.print("E12 — Scaling to the 10,000-user design point (§5.1.A)");
    println!(
        "\nIndexed lookups stay flat with population size; generation and \
         population build scale (near-)linearly through the design point."
    );
    write_json("table_scaling", &serde_json::json!({ "rows": json_rows }));
}
