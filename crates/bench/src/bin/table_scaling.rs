//! Experiment E12/E18: scaling from the 1988 design point to 1M users.
//!
//! §5.1.A: "The system is designed optimally for 10,000 active users."
//! PR 8 pushes past the design point: the predicate planner serves point
//! and conjunction lookups from the secondary indexes, and string
//! interning keeps the resident population compact. This bench sweeps
//! 10k → 100k → 1M active users (1988 distribution shapes preserved by
//! `PopulationSpec::production`) and measures, at each scale:
//!
//! - population build time;
//! - point-lookup p50 through the full query surface;
//! - a hot two-column conjunction (`list_id & member_id` on `members`)
//!   against the forced-scan baseline the planner replaced;
//! - resident string bytes per user, interned vs. the per-occurrence
//!   cost the pre-interning layout paid;
//! - a DCM cycle after a 1% population delta, incremental vs. a full
//!   Hesiod rebuild.
//!
//! The curve self-asserts the PR's acceptance gates (sublinear point
//! lookups, ≥10x conjunction win at 1M, interning wins, delta under
//! full rebuild at every scale) and exits nonzero when one fails, so CI
//! can run it as a release-mode smoke.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::{Caller, MoiraState};
use moira_db::{Database, Pred, Value};
use moira_dcm::generators::hesiod::HesiodGenerator;
use moira_dcm::generators::incremental::refresh;
use moira_dcm::generators::Generator;
use moira_sim::{populate, PopulationSpec};

/// Point-lookup sample size per scale.
const POINT_SAMPLES: usize = 1_000;
/// Hot-loop iterations for the planned conjunction.
const CONJ_ITERS: u32 = 200;
/// Iterations for the forced-scan baseline (each one walks the slab).
const SCAN_ITERS: u32 = 3;

struct Row {
    users: usize,
    populate_s: f64,
    point_p50_us: f64,
    conj_plan_us: f64,
    conj_scan_us: f64,
    conj_plan: String,
    interned_bytes_per_user: f64,
    raw_bytes_per_user: f64,
    dcm_delta_ms: f64,
    dcm_full_ms: f64,
}

fn main() {
    let mut rows = Vec::new();
    for users in [10_000usize, 100_000, 1_000_000] {
        rows.push(measure(users));
    }
    print_and_write(&rows);
    assert_gates(&rows);
}

fn measure(users: usize) -> Row {
    eprintln!("building {users} users…");
    let spec = PopulationSpec::production(users);
    let registry = Registry::standard();
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let t0 = Instant::now();
    let report = populate(&mut state, &registry, &spec).expect("population");
    let populate_s = t0.elapsed().as_secs_f64();

    // Point lookups through the full query surface: per-call p50 over a
    // spread of logins, served by the unique login index at every scale.
    // One untimed pass first: at 1M users every probed row is a
    // first-touch DRAM miss (the 10k population is cache-resident), and
    // the gate is about steady-state index cost, not page-in cost.
    let root = Caller::root("e18");
    for i in 0..POINT_SAMPLES {
        let probe = &report.active_logins[(i * 7919) % users];
        registry
            .execute(
                &mut state,
                &root,
                "get_user_by_login",
                std::slice::from_ref(probe),
            )
            .expect("warmup lookup");
    }
    let mut samples = Vec::with_capacity(POINT_SAMPLES);
    for i in 0..POINT_SAMPLES {
        let probe = &report.active_logins[(i * 7919) % users];
        let t = Instant::now();
        registry
            .execute(
                &mut state,
                &root,
                "get_user_by_login",
                std::slice::from_ref(probe),
            )
            .expect("point lookup");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let point_p50_us = samples[POINT_SAMPLES / 2];

    // Hot conjunction on the members relation: both columns indexed, so
    // the planner serves it from buckets; the baseline is the forced
    // slab scan every lookup paid before the planner existed.
    let members = state.db.table("members");
    let (_, first) = members.iter().next().expect("members populated");
    let member_col = members.col("member_id");
    let list_col = members.col("list_id");
    let conj = Pred::And(vec![
        Pred::Eq("list_id", first[list_col].clone()),
        Pred::Eq("member_id", first[member_col].clone()),
    ]);
    let conj_plan = members.plan(&conj).describe();
    let expected = members.select_scan(&conj);
    let t = Instant::now();
    for _ in 0..CONJ_ITERS {
        assert_eq!(members.select(&conj), expected, "planner diverged");
    }
    let conj_plan_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(CONJ_ITERS);
    let t = Instant::now();
    for _ in 0..SCAN_ITERS {
        std::hint::black_box(members.select_scan(&conj));
    }
    let conj_scan_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(SCAN_ITERS);

    let (interned, raw) = string_bytes(&state.db);
    let interned_bytes_per_user = interned as f64 / users as f64;
    let raw_bytes_per_user = raw as f64 / users as f64;

    // DCM: converge once, disturb 1% of the population, then compare the
    // incremental refresh against a from-scratch Hesiod build.
    let gen = HesiodGenerator;
    let converged = refresh(&gen, &state, None).expect("initial build").build;
    for i in 0..(users / 100).max(1) {
        let login = report.active_logins[(i * 104_729) % users].clone();
        // A shell no populated user starts with, so every touched row
        // really changes the Hesiod passwd content.
        registry
            .execute(
                &mut state,
                &root,
                "update_user_shell",
                &[login, "/bin/e18sh".into()],
            )
            .expect("1% delta");
    }
    let t = Instant::now();
    let delta = refresh(&gen, &state, Some(converged)).expect("delta refresh");
    let dcm_delta_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(delta.changed, "a 1% shell delta must register as a change");
    assert!(!delta.full, "a valid cursor must take the delta path");
    let t = Instant::now();
    std::hint::black_box(gen.generate(&state, "").expect("full rebuild"));
    let dcm_full_ms = t.elapsed().as_secs_f64() * 1e3;

    Row {
        users,
        populate_s,
        point_p50_us,
        conj_plan_us,
        conj_scan_us,
        conj_plan,
        interned_bytes_per_user,
        raw_bytes_per_user,
        dcm_delta_ms,
        dcm_full_ms,
    }
}

/// Resident string-storage cost of the whole database, in bytes:
/// `interned` is what the `Arc<str>` layout holds (one 16-byte fat
/// pointer per cell, plus heap text and the two 8-byte refcounts once
/// per distinct allocation); `raw` is what the pre-interning `String`
/// layout paid (24-byte header plus its own copy of the text in every
/// cell).
fn string_bytes(db: &Database) -> (u64, u64) {
    let mut seen: HashSet<*const u8> = HashSet::new();
    let (mut interned, mut raw) = (0u64, 0u64);
    for name in db.table_names() {
        for (_, row) in db.table(name).iter() {
            for v in row.iter() {
                if let Value::Str(s) = v {
                    raw += 24 + s.len() as u64;
                    interned += 16;
                    if seen.insert(Arc::as_ptr(s).cast::<u8>()) {
                        interned += 16 + s.len() as u64;
                    }
                }
            }
        }
    }
    (interned, raw)
}

fn print_and_write(rows: &[Row]) {
    let mut table = Table::new(&[
        "Active users",
        "Populate (s)",
        "Point p50 (µs)",
        "Conj plan (µs)",
        "Conj scan (µs)",
        "Str B/user (interned)",
        "Str B/user (raw)",
        "DCM 1% delta (ms)",
        "DCM full (ms)",
    ]);
    let mut json_rows = Vec::new();
    for r in rows {
        table.row(&[
            r.users.to_string(),
            format!("{:.2}", r.populate_s),
            format!("{:.2}", r.point_p50_us),
            format!("{:.2}", r.conj_plan_us),
            format!("{:.1}", r.conj_scan_us),
            format!("{:.0}", r.interned_bytes_per_user),
            format!("{:.0}", r.raw_bytes_per_user),
            format!("{:.1}", r.dcm_delta_ms),
            format!("{:.1}", r.dcm_full_ms),
        ]);
        json_rows.push(serde_json::json!({
            "users": r.users,
            "populate_s": r.populate_s,
            "point_p50_us": r.point_p50_us,
            "conj_plan_us": r.conj_plan_us,
            "conj_scan_us": r.conj_scan_us,
            "conj_plan": r.conj_plan,
            "interned_bytes_per_user": r.interned_bytes_per_user,
            "raw_bytes_per_user": r.raw_bytes_per_user,
            "dcm_delta_ms": r.dcm_delta_ms,
            "dcm_full_ms": r.dcm_full_ms,
        }));
    }
    table.print("E18 — Scaling 10k → 1M users past the §5.1.A design point");
    println!(
        "\nPoint lookups stay near-flat (index point plans), the planned \
         conjunction beats the forced scan by orders of magnitude at scale, \
         interning cuts resident string bytes, and the DCM's 1%-delta cycle \
         stays under a full rebuild everywhere."
    );
    write_json("table_scaling", &serde_json::json!({ "rows": json_rows }));
}

/// The PR's acceptance gates, asserted on the measured curve itself.
fn assert_gates(rows: &[Row]) {
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    assert!(
        last.point_p50_us <= 3.0 * first.point_p50_us,
        "point-lookup p50 at {} users ({:.2}µs) exceeds 3x the {}-user p50 ({:.2}µs)",
        last.users,
        last.point_p50_us,
        first.users,
        first.point_p50_us
    );
    assert!(
        last.conj_scan_us >= 10.0 * last.conj_plan_us,
        "hot conjunction at {} users: plan {:.2}µs vs scan {:.2}µs is under 10x",
        last.users,
        last.conj_plan_us,
        last.conj_scan_us
    );
    for r in rows {
        assert!(
            r.interned_bytes_per_user < r.raw_bytes_per_user,
            "interning must reduce resident bytes/user at {} users \
             ({:.0} vs {:.0})",
            r.users,
            r.interned_bytes_per_user,
            r.raw_bytes_per_user
        );
        assert!(
            r.dcm_delta_ms < r.dcm_full_ms,
            "1%-delta DCM cycle ({:.1}ms) must beat the full rebuild \
             ({:.1}ms) at {} users",
            r.dcm_delta_ms,
            r.dcm_full_ms,
            r.users
        );
    }
    println!("\nAll scaling gates hold.");
}
