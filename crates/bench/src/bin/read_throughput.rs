//! Read-tier throughput: concurrent retrieves vs the single-lock baseline.
//!
//! Drives N in-process clients against the server loop and measures
//! aggregate retrieve throughput (queries/sec) at 1, 4, and 8 read
//! workers, against the legacy single-lock dispatch (`read_workers = 0`,
//! every request serialized under the exclusive guard — the pre-split
//! `Mutex<MoiraState>` behaviour).
//!
//! Two sets of numbers are recorded, from the same run:
//!
//! * **measured** — wall-clock queries/sec of the real server loop per
//!   mode. On a multi-core host the worker pool shows up directly here; on
//!   a single-core host (this container pins 1 CPU) threads cannot
//!   physically overlap, so wall-clock numbers stay flat regardless of
//!   dispatch policy.
//! * **projected** — the same run's measured per-request service times
//!   (captured by the server's service trace, lock wait excluded),
//!   scheduled onto K readers round-robin. Makespan = the busiest
//!   reader's total service time; aggregate qps = requests / makespan.
//!   This is the deterministic model of what the shared-guard tier allows
//!   that the exclusive-guard baseline forbids: K service times in flight
//!   at once. The serial reference is the sum of the identical service
//!   times — the single-mutex floor.

use std::sync::Arc;

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::server::{MoiraServer, ServiceSample};
use moira_core::state::shared;
use moira_protocol::transport::{pair, recv_blocking, Channel, InProcChannel};
use moira_protocol::wire::{MajorRequest, Reply, Request};
use moira_sim::{populate, PopulationSpec};

const CLIENTS: usize = 8;
const ROUNDS: usize = 120;

/// Builds a populated server with `CLIENTS` authenticated connections.
fn build() -> (MoiraServer, Vec<InProcChannel>, Vec<String>) {
    let registry = Arc::new(Registry::standard());
    let mut state = moira_core::state::MoiraState::new(moira_common::VClock::new());
    moira_core::seed::seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &PopulationSpec::small()).expect("population");
    let logins = report.active_logins.clone();
    let mut server = MoiraServer::new(shared(state), registry, None);
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        let (client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);
        clients.push(client);
    }
    for c in clients.iter_mut() {
        c.send(Request::new(MajorRequest::Auth, &["root", "read-bench"]).encode())
            .unwrap();
    }
    server.run_until_idle(2);
    for c in clients.iter_mut() {
        let r = Reply::decode(recv_blocking(c, 1_000_000).expect("auth reply")).unwrap();
        assert_eq!(r.code, 0);
    }
    (server, clients, logins)
}

/// The retrieve mix: mostly point lookups, some wildcard scans.
fn request_for(logins: &[String], round: usize, client: usize) -> Request {
    let n = round * CLIENTS + client;
    if n % 8 == 7 {
        Request::new(MajorRequest::Query, &["get_machine", "*"])
    } else {
        let login = &logins[n % logins.len()];
        Request::new(MajorRequest::Query, &["get_user_by_login", login])
    }
}

/// Runs the workload with the given worker setting. Returns (wall-clock
/// qps, service trace).
fn run_mode(workers: usize) -> (f64, Vec<ServiceSample>) {
    let (mut server, mut clients, logins) = build();
    server.set_read_workers(workers);
    server.enable_service_trace();
    let total = ROUNDS * CLIENTS;
    let t0 = std::time::Instant::now();
    for round in 0..ROUNDS {
        // One request per client lands before each pass, so every pass
        // offers the dispatcher CLIENTS-way read concurrency.
        for (i, c) in clients.iter_mut().enumerate() {
            c.send(request_for(&logins, round, i).encode()).unwrap();
        }
        server.poll_once();
        for c in clients.iter_mut() {
            loop {
                let r = Reply::decode(recv_blocking(c, 1_000_000).expect("reply")).unwrap();
                assert!(r.code >= 0 || r.is_more_data(), "query failed: {}", r.code);
                if !r.is_more_data() {
                    break;
                }
            }
        }
    }
    let qps = total as f64 / t0.elapsed().as_secs_f64();
    (qps, server.take_service_trace())
}

/// Schedules the measured service times onto `readers` concurrent lanes by
/// greedy list scheduling in arrival order — each request goes to the
/// least-loaded reader, which is what a balanced worker pool achieves —
/// and returns the aggregate qps the lanes sustain.
fn project(trace: &[ServiceSample], readers: usize) -> f64 {
    let mut lanes = vec![0u64; readers.max(1)];
    for sample in trace {
        let lane = lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, &load)| load)
            .unwrap()
            .0;
        lanes[lane] += sample.nanos;
    }
    let makespan_s = *lanes.iter().max().unwrap() as f64 / 1e9;
    trace.len() as f64 / makespan_s
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("read-tier throughput: {CLIENTS} clients x {ROUNDS} rounds, host_cores={host_cores}");

    // Measured wall-clock per dispatch mode, all in one run of this binary.
    let (baseline_qps, baseline_trace) = run_mode(0);
    let (tiered1_qps, tiered_trace) = run_mode(1);
    let (tiered4_qps, _) = run_mode(4);
    let (tiered8_qps, _) = run_mode(8);

    // Projection from the tiered run's per-request service times. The
    // serial reference uses the same trace, so the only variable is how
    // many service times may overlap.
    let serial_qps = project(&tiered_trace, 1);
    let readers = [1usize, 4, 8];
    let projected: Vec<(usize, f64)> = readers
        .iter()
        .map(|&k| (k, project(&tiered_trace, k)))
        .collect();
    let speedup_at_4 = projected[1].1 / serial_qps;

    let mut table = Table::new(&[
        "Dispatch",
        "Readers",
        "Measured qps",
        "Projected qps",
        "Speedup",
    ]);
    table.row(&[
        "single-lock baseline".into(),
        "-".into(),
        format!("{baseline_qps:.0}"),
        format!("{serial_qps:.0}"),
        "1.00x".into(),
    ]);
    for (&(k, proj), &measured) in projected
        .iter()
        .zip([tiered1_qps, tiered4_qps, tiered8_qps].iter())
    {
        table.row(&[
            "read/write tiers".into(),
            k.to_string(),
            format!("{measured:.0}"),
            format!("{proj:.0}"),
            format!("{:.2}x", proj / serial_qps),
        ]);
    }
    table.print("Read-tier aggregate retrieve throughput");
    println!(
        "\nhost has {host_cores} core(s); projection schedules measured per-request \
         service times onto K shared-guard readers (see JSON methodology)"
    );

    write_json(
        "read_throughput",
        &serde_json::json!({
            "host_cores": host_cores,
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "requests_per_mode": CLIENTS * ROUNDS,
            "methodology": {
                "measured": "wall-clock queries/sec of the real poll loop per dispatch mode, same binary run",
                "projected": "per-request service times from the server's service trace (shared-guard execution, lock wait excluded), greedy-list-scheduled in arrival order onto K concurrent readers; makespan = busiest reader; serial reference = the same trace on 1 lane (the single-mutex floor)",
                "note": format!(
                    "host exposes {host_cores} CPU core(s); with 1 core, worker threads time-slice instead of overlapping, so measured wall-clock qps cannot show parallel speedup — the projection records what the RwLock read tier admits and the Mutex baseline forbids"
                ),
            },
            "measured": {
                "baseline_single_lock_qps": baseline_qps,
                "tiered_workers_1_qps": tiered1_qps,
                "tiered_workers_4_qps": tiered4_qps,
                "tiered_workers_8_qps": tiered8_qps,
                "baseline_trace_samples": baseline_trace.len(),
            },
            "projected": {
                "serial_single_lock_qps": serial_qps,
                "readers": projected.iter().map(|(k, qps)| serde_json::json!({
                    "readers": k,
                    "aggregate_qps": qps,
                    "speedup_vs_serial": qps / serial_qps,
                })).collect::<Vec<_>>(),
            },
            "aggregate_speedup_at_4_readers": speedup_at_4,
        }),
    );
    assert!(
        speedup_at_4 >= 2.0,
        "read tier must admit >=2x aggregate retrieve throughput at 4 readers (got {speedup_at_4:.2}x)"
    );
}
