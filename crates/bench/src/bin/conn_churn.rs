//! Connection-tier benchmark: churn, 10k live connections, and
//! backpressure under a never-draining reader.
//!
//! Three phases against one reactor-driven server, all over real TCP:
//!
//! 1. **Churn** — client subprocesses connect, run one noop round-trip,
//!    and disconnect, in a tight loop. Measures full
//!    accept→dispatch→reply→teardown cycles per second.
//! 2. **10k live** — subprocesses open `MOIRA_CHURN_CONNS` (default
//!    10 000) concurrent connections and hold them; once every
//!    connection is live the orchestrator releases an echo storm and
//!    measures aggregate qps plus the server's readiness→dispatch
//!    latency histogram. ulimit -n bounds a single process well below
//!    2× the connection count, so the client side self-execs into
//!    `MOIRA_CHURN_PROCS` subprocesses (`conn_churn --client ...`).
//! 3. **Never-draining reader** — one connection floods retrieves and
//!    refuses to read replies. The server must engage backpressure at
//!    the write cap and the paused outbox must not grow.
//!
//! Results merge into `results/read_throughput.json` under a `"reactor"`
//! key — read-modify-write, preserving the read-tier numbers already
//! recorded there by the `read_throughput` binary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use moira_bench::{write_json, Table};
use moira_core::server::{standard_server, MoiraServer};
use moira_core::state::Caller;
use moira_protocol::wire::{MajorRequest, Reply, Request};

const TICK: Duration = Duration::from_millis(1);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Writes one length-prefixed request frame.
fn send_frame(stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    let payload = req.encode();
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    stream.write_all(&bytes)
}

/// Reads exactly one length-prefixed reply frame (blocking).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Reply> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Reply::decode(bytes::Bytes::from(payload))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

// ---------------------------------------------------------------------
// Client mode: `conn_churn --client churn|hold <addr> <conns> <rounds>`
// ---------------------------------------------------------------------

/// Sequential connect → noop → reply → close cycles.
fn client_churn(addr: &str, count: usize) {
    let noop = Request::new(MajorRequest::Noop, &[]);
    for _ in 0..count {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        send_frame(&mut stream, &noop).expect("send");
        let reply = read_frame(&mut stream).expect("reply");
        assert_eq!(reply.code, 0, "noop failed");
    }
}

/// Reads reply frames for one pipelined query until the final status
/// frame, which must be success.
fn read_query_reply(stream: &mut TcpStream) {
    loop {
        let reply = read_frame(stream).expect("query reply");
        if !reply.is_more_data() {
            assert_eq!(reply.code, 0, "query failed");
            return;
        }
    }
}

/// Opens `conns` authenticated connections and holds them, then waits
/// for "go" on stdin before running `rounds` pipelined retrieve rounds
/// across all of them. A noop would be answered inline at classify time,
/// so the echo storm uses a real retrieve — every request crosses the
/// read tier and samples the readiness→dispatch histogram. Connections
/// open in chunks with a round-trip barrier so the listener backlog
/// (128) is never outrun.
fn client_hold(addr: &str, conns: usize, rounds: usize) {
    const CHUNK: usize = 100;
    let auth = Request::new(MajorRequest::Auth, &["ops", "conn-churn-hold"]);
    let mut streams: Vec<TcpStream> = Vec::with_capacity(conns);
    while streams.len() < conns {
        let batch = CHUNK.min(conns - streams.len());
        let first = streams.len();
        for _ in 0..batch {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            send_frame(&mut stream, &auth).expect("auth send");
            streams.push(stream);
        }
        for stream in &mut streams[first..] {
            assert_eq!(read_frame(stream).expect("auth reply").code, 0);
        }
    }

    // All connections live and authenticated; wait for the orchestrator.
    let mut line = String::new();
    std::io::stdin().read_line(&mut line).expect("go signal");

    let query = Request::new(MajorRequest::Query, &["get_user_by_login", "ops"]);
    for _ in 0..rounds {
        for stream in &mut streams {
            send_frame(stream, &query).expect("echo send");
        }
        for stream in &mut streams {
            read_query_reply(stream);
        }
    }
}

// ---------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------

/// Spawns this binary back on itself in client mode.
fn spawn_client(mode: &str, addr: &str, conns: usize, rounds: usize) -> Child {
    Command::new(std::env::current_exe().expect("self path"))
        .args([
            "--client",
            mode,
            addr,
            &conns.to_string(),
            &rounds.to_string(),
        ])
        .stdin(Stdio::piped())
        .spawn()
        .expect("spawn client subprocess")
}

/// Polls until the server has reaped every connection (a child's exit
/// races the hangup event for its last socket).
fn drain_connections(server: &mut MoiraServer) {
    for _ in 0..10_000 {
        if server.connection_count() == 0 {
            return;
        }
        server.poll_with_timeout(Some(TICK));
    }
}

/// Drives the server loop until every child has exited.
fn drive_until_done(server: &mut MoiraServer, children: &mut [Child]) {
    let mut live_peak = 0usize;
    loop {
        server.poll_with_timeout(Some(TICK));
        live_peak = live_peak.max(server.connection_count());
        let mut done = true;
        for child in children.iter_mut() {
            match child.try_wait().expect("try_wait") {
                Some(status) => assert!(status.success(), "client subprocess failed"),
                None => done = false,
            }
        }
        if done {
            return;
        }
    }
}

/// Shrinks the receive buffer so the kernel cannot absorb the reply
/// flood for the never-draining phase (same trick as the reactor tests).
#[cfg(target_os = "linux")]
fn clamp_rcvbuf(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            val: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let size: i32 = 128 * 1024;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            1, // SOL_SOCKET
            8, // SO_RCVBUF
            &size as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(not(target_os = "linux"))]
fn clamp_rcvbuf(_stream: &TcpStream) {}

struct HistRow {
    count: u64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn hist_row(server: &MoiraServer, name: &str) -> HistRow {
    let snap = server.obs().snapshot();
    let h = snap
        .histogram(name)
        .cloned()
        .unwrap_or_else(moira_obs::HistSnapshot::empty);
    HistRow {
        count: h.count,
        p50_us: h.p50() as f64 / 1e3,
        p99_us: h.p99() as f64 / 1e3,
        max_us: h.max as f64 / 1e3,
    }
}

/// The greedy client of phase 3: frames queue in user space and flush
/// opportunistically, because a nonblocking `write_all` against a full
/// socket buffer would tear a frame mid-write and desynchronize the
/// stream. Once the server pauses the connection the kernel stops
/// accepting bytes; whatever remains queued here simply never arrives —
/// which is exactly the adversary being modeled.
struct GreedyClient {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl GreedyClient {
    fn queue(&mut self, req: &Request) {
        let payload = req.encode();
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.pending.extend_from_slice(&payload);
    }

    fn flush(&mut self) {
        while !self.pending.is_empty() {
            match self.stream.write(&self.pending) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    self.pending.drain(..n);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 6 && args[1] == "--client" {
        let conns: usize = args[4].parse().expect("conns");
        let rounds: usize = args[5].parse().expect("rounds");
        match args[2].as_str() {
            "churn" => client_churn(&args[3], conns),
            "hold" => client_hold(&args[3], conns, rounds),
            other => panic!("unknown client mode {other}"),
        }
        return;
    }

    let target_conns = env_usize("MOIRA_CHURN_CONNS", 10_000);
    let procs = env_usize("MOIRA_CHURN_PROCS", 4).max(1);
    let churn_total = env_usize("MOIRA_CHURN_COUNT", 2_000);
    let rounds = env_usize("MOIRA_CHURN_ROUNDS", 3);
    let backend = std::env::var("MOIRA_POLL_BACKEND").unwrap_or_else(|_| "default".into());

    let (mut server, state, registry) = standard_server(moira_common::VClock::new());
    server.obs().set_enabled(true);
    {
        // A reply-heavy retrieve corpus for the never-draining phase.
        let mut s = state.write();
        let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
        let root = Caller::root("conn-churn");
        for i in 0..100 {
            registry
                .execute(
                    &mut s,
                    &root,
                    "add_machine",
                    &[format!("CHURN{i}.MIT.EDU"), "VAX".into()],
                )
                .unwrap();
        }
    }
    let addr = server
        .listen_tcp("127.0.0.1:0")
        .expect("listen")
        .to_string();
    eprintln!(
        "conn_churn: addr={addr} backend={backend} target_conns={target_conns} \
         procs={procs} churn={churn_total} echo_rounds={rounds}"
    );

    // Phase 1: connection churn.
    let churn_procs = procs.clamp(1, 2);
    let per_proc = churn_total / churn_procs;
    let t0 = Instant::now();
    let mut children: Vec<Child> = (0..churn_procs)
        .map(|_| spawn_client("churn", &addr, per_proc, 0))
        .collect();
    drive_until_done(&mut server, &mut children);
    let churn_elapsed = t0.elapsed().as_secs_f64();
    let churned = per_proc * churn_procs;
    let churn_rate = churned as f64 / churn_elapsed;
    let accepted_after_churn = server
        .obs()
        .snapshot()
        .counter("server.connections.accepted");
    drain_connections(&mut server);
    assert_eq!(server.connection_count(), 0, "churn left residue");
    eprintln!("churn: {churned} cycles in {churn_elapsed:.2}s ({churn_rate:.0}/s)");

    // Phase 2: hold `target_conns` live connections, then echo storm.
    let per_proc = target_conns / procs;
    let held = per_proc * procs;
    let mut children: Vec<Child> = (0..procs)
        .map(|_| spawn_client("hold", &addr, per_proc, rounds))
        .collect();
    let ramp0 = Instant::now();
    let mut max_live = 0usize;
    while max_live < held {
        server.poll_with_timeout(Some(TICK));
        max_live = max_live.max(server.connection_count());
        for child in children.iter_mut() {
            assert!(
                child.try_wait().expect("try_wait").is_none(),
                "hold client exited during ramp"
            );
        }
    }
    let ramp_elapsed = ramp0.elapsed().as_secs_f64();
    eprintln!("ramp: {max_live} live connections in {ramp_elapsed:.2}s");

    let t0 = Instant::now();
    let mut stdins: Vec<_> = children
        .iter_mut()
        .map(|c| c.stdin.take().expect("child stdin"))
        .collect();
    for stdin in &mut stdins {
        stdin.write_all(b"go\n").expect("release hold clients");
        stdin.flush().ok();
    }
    drive_until_done(&mut server, &mut children);
    let echo_elapsed = t0.elapsed().as_secs_f64();
    let echo_total = held * rounds;
    let echo_qps = echo_total as f64 / echo_elapsed;
    let dispatch = hist_row(&server, "server.latency.readiness_to_dispatch");
    drain_connections(&mut server);
    assert_eq!(server.connection_count(), 0, "hold clients left residue");
    eprintln!(
        "echo: {echo_total} round-trips across {held} conns in {echo_elapsed:.2}s \
         ({echo_qps:.0} qps), dispatch p50={:.0}us p99={:.0}us",
        dispatch.p50_us, dispatch.p99_us
    );

    // Phase 3: never-draining reader, in-process so the outbox is
    // observable. The write cap is small so backpressure is reachable.
    server.set_write_cap(2048);
    let stream = TcpStream::connect(&addr).expect("connect greedy");
    stream.set_nonblocking(true).ok();
    clamp_rcvbuf(&stream);
    let mut greedy = GreedyClient {
        stream,
        pending: Vec::new(),
    };
    // Auth round-trip driven by the server loop.
    greedy.queue(&Request::new(MajorRequest::Auth, &["ops", "greedy"]));
    let mut authed = false;
    let mut sink = [0u8; 4096];
    for _ in 0..10_000 {
        greedy.flush();
        server.poll_with_timeout(Some(TICK));
        if matches!(greedy.stream.read(&mut sink), Ok(n) if n >= 4) {
            authed = true;
            break;
        }
    }
    assert!(authed, "auth round-trip");

    let query = Request::new(MajorRequest::Query, &["get_machine", "CHURN*"]);
    for _ in 0..1_000 {
        greedy.queue(&query);
    }
    let mut peak = 0usize;
    let mut engaged = 0u64;
    for _ in 0..10_000 {
        greedy.flush();
        server.poll_with_timeout(Some(TICK));
        let q = server
            .connection_queued_bytes()
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        peak = peak.max(q);
        engaged = server
            .obs()
            .snapshot()
            .counter("server.backpressure.engaged");
        if engaged >= 1 && q > 2048 {
            break;
        }
    }
    assert!(peak > 2048, "backpressure never engaged (peak {peak})");
    assert!(engaged >= 1, "pause transition not counted");
    // More traffic from the paused peer must not grow the outbox.
    for _ in 0..1_000 {
        greedy.queue(&query);
    }
    for _ in 0..100 {
        greedy.flush();
        server.poll_with_timeout(Some(TICK));
    }
    let after = server
        .connection_queued_bytes()
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    assert!(after <= peak, "paused outbox grew ({peak} -> {after})");
    drop(greedy);
    drain_connections(&mut server);
    assert_eq!(server.connection_count(), 0, "greedy reader left residue");
    eprintln!("backpressure: peak outbox {peak} bytes, after more sends {after} bytes");

    let mut table = Table::new(&["Phase", "Volume", "Elapsed", "Rate", "p99 dispatch"]);
    table.row(&[
        "churn".into(),
        format!("{churned} conns"),
        format!("{churn_elapsed:.2}s"),
        format!("{churn_rate:.0}/s"),
        "-".into(),
    ]);
    table.row(&[
        format!("echo @ {held} live"),
        format!("{echo_total} rt"),
        format!("{echo_elapsed:.2}s"),
        format!("{echo_qps:.0} qps"),
        format!("{:.0}us", dispatch.p99_us),
    ]);
    table.row(&[
        "never-draining reader".into(),
        "2000 queries".into(),
        "-".into(),
        format!("peak outbox {peak}B"),
        "-".into(),
    ]);
    table.print("Reactor connection tier");

    // Bounded p99: on this single-core host a full echo wave means the
    // dispatcher works through ~`held` ready events per pass, so the
    // bound is generous — the assertion is about staying finite and
    // sane, not about a latency SLO.
    assert!(
        dispatch.count as usize >= echo_total,
        "dispatch histogram undersampled"
    );
    assert!(
        dispatch.p99_us < 5_000_000.0,
        "p99 dispatch latency unbounded: {:.0}us",
        dispatch.p99_us
    );
    if std::env::var("MOIRA_CHURN_CONNS").is_err() {
        assert!(
            max_live >= 10_000,
            "only {max_live} simultaneous connections"
        );
    }

    let reactor = serde_json::json!({
        "backend": backend,
        "churn": {
            "connect_noop_close_cycles": churned,
            "client_procs": churn_procs,
            "elapsed_s": churn_elapsed,
            "cycles_per_sec": churn_rate,
            "accepted_total": accepted_after_churn,
        },
        "live_connections": {
            "target": target_conns,
            "max_live": max_live,
            "client_procs": procs,
            "ramp_s": ramp_elapsed,
            "echo_rounds": rounds,
            "echo_round_trips": echo_total,
            "echo_elapsed_s": echo_elapsed,
            "echo_qps": echo_qps,
            "dispatch_latency": {
                "samples": dispatch.count,
                "p50_us": dispatch.p50_us,
                "p99_us": dispatch.p99_us,
                "max_us": dispatch.max_us,
            },
        },
        "never_draining_reader": {
            "write_cap_bytes": 2048u64,
            "queries_sent": 2000u64,
            "peak_outbox_bytes": peak,
            "outbox_after_more_sends": after,
            "bounded": after <= peak,
            "backpressure_engaged": engaged,
        },
        "methodology": "one reactor-driven server on the main thread; clients are self-exec'd subprocesses (fd limit caps one process below 2x the connection count); dispatch latency is the server's readiness_to_dispatch obs histogram over the whole run",
    });

    // Read-modify-write: the read-tier numbers in read_throughput.json
    // come from a different binary, so merge instead of overwrite.
    let path = std::path::Path::new("results/read_throughput.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    match doc.as_object_mut() {
        Some(map) => {
            map.insert("reactor".into(), reactor);
        }
        None => doc = serde_json::json!({ "reactor": reactor }),
    }
    write_json("read_throughput", &doc);
}
