//! Experiment E20: hierarchical fan-out at 20 → 200 → 1000 hosts.
//!
//! The scaling half of the fan-out work: one service pushed to N hosts
//! grouped into racks of 25, over a fabric dropping 5% of every link's
//! legs, with every protocol leg costing 1 ms of real round-trip latency
//! (the quantity the relay tier exists to hide). The worker pool is sized
//! to the rack count — one worker per relay, which is exactly the
//! parallelism a real relay tier has: every rack pushes to its leaves
//! concurrently. Measures the wall-clock of the mutate → converge phase
//! and the patch/full byte split, and gates on the two claims the relay
//! tier makes:
//!
//! - the push converges byte-identical to a fault-free serial oracle
//!   despite the link faults, and
//! - per-host wall-clock *falls* as the host count grows (leg latency
//!   overlaps across racks and the fixed extraction cost amortizes),
//!   i.e. total wall-clock is sublinear in host count.
//!
//! `--quick` runs the 20- and 200-host points as a CI smoke check (no
//! timing gate: sub-millisecond phases are scheduler noise); the full run
//! adds the 1000-host point and enforces the gates.

use std::sync::Arc;
use std::time::{Duration, Instant};

use moira_bench::{write_json, Table};
use moira_core::queries::testutil::{add_test_machine, state_with_admin};
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState, SharedState};
use moira_dcm::dcm::Dcm;
use moira_dcm::host::SimHost;
use moira_dcm::net::{NetFault, Network};
use moira_dcm::relay::RackTopology;
use moira_dcm::retry::RetryPolicy;
use moira_sim::NetFabric;
use parking_lot::Mutex;

const USERS: usize = 200;
const RACK_SIZE: usize = 25;
const DROP_PROB: f64 = 0.05;
const LEG_LATENCY: Duration = Duration::from_millis(1);

/// One pool worker per rack relay.
fn width_for(n_hosts: usize) -> usize {
    n_hosts.div_ceil(RACK_SIZE)
}

/// The subject's network: every leg pays a real round-trip before it
/// crosses the (dropping) fabric. Virtual-clock latency would not do
/// here — the sublinearity gate is about *wall* time, and wall time is
/// what overlapping legs across racks saves.
struct LatentNet {
    inner: Arc<NetFabric>,
}

impl Network for LatentNet {
    fn connect(&self, host: &str) -> Result<(), NetFault> {
        std::thread::sleep(LEG_LATENCY);
        self.inner.connect(host)
    }

    fn transmit(&self, host: &str, len: usize) -> Result<(), NetFault> {
        std::thread::sleep(LEG_LATENCY);
        self.inner.transmit(host, len)
    }
}

struct World {
    dcm: Dcm,
    state: SharedState,
    hosts: Vec<Arc<Mutex<SimHost>>>,
    fabric: Option<Arc<NetFabric>>,
}

/// One UNIQUE service pushed to `n_hosts`. `faulty` wires the racked
/// topology, the worker pool, and the 5%-drop fabric; the oracle keeps
/// the serial perfect-network configuration.
fn build(n_hosts: usize, faulty: bool) -> World {
    let (mut s, _) = state_with_admin("ops");
    let registry = Arc::new(Registry::standard());
    let ops = Caller::new("ops", "e20");
    let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        registry.execute(s, &ops, q, &args).expect(q)
    };
    run(
        &mut s,
        "add_server_info",
        &[
            "HESIOD",
            "360",
            "/tmp/hesiod.out",
            "restart-hesiod",
            "UNIQUE",
            "1",
            "NONE",
            "NONE",
        ],
    );
    let names: Vec<String> = (0..n_hosts).map(|k| format!("H{k:04}.MIT.EDU")).collect();
    for name in &names {
        add_test_machine(&mut s, name);
        run(
            &mut s,
            "add_server_host_info",
            &["HESIOD", name, "1", "0", "0", ""],
        );
    }
    for u in 0..USERS {
        let login = format!("u{u:04}");
        let uid = (7000 + u).to_string();
        run(
            &mut s,
            "add_user",
            &[&login, &uid, "/bin/csh", "F", "H", "C", "1", "x", "1990"],
        );
    }
    let state = moira_core::state::shared(s);
    let mut dcm = Dcm::new(state.clone(), registry);
    dcm.set_retry_policy(RetryPolicy {
        base_secs: 1,
        max_secs: 8,
        jitter_frac: 0.0,
        escalate_after: u32::MAX,
        per_run_budget: usize::MAX,
    });
    let fabric = if faulty {
        let clock = state.read().db.clock().clone();
        let fabric = Arc::new(NetFabric::new(clock, 0x0e20_5eed ^ n_hosts as u64));
        for name in &names {
            fabric.set_drop_prob(name, DROP_PROB);
        }
        dcm.set_network(Arc::new(LatentNet {
            inner: fabric.clone(),
        }));
        let mut topo = RackTopology::new();
        for (r, chunk) in names.chunks(RACK_SIZE).enumerate() {
            topo.add_rack(&format!("rack-{r}"), chunk.iter().cloned());
        }
        dcm.set_topology(topo);
        dcm.set_fanout_width(width_for(n_hosts));
        Some(fabric)
    } else {
        None
    };
    let hosts: Vec<Arc<Mutex<SimHost>>> = names
        .iter()
        .map(|n| Arc::new(Mutex::new(SimHost::new(n))))
        .collect();
    for h in &hosts {
        dcm.add_host(h.clone());
    }
    World {
        dcm,
        state,
        hosts,
        fabric,
    }
}

/// Every enabled serverhost reports success.
fn converged(state: &SharedState) -> bool {
    let s = state.read();
    let t = s.db.table("serverhosts");
    let all_ok = t
        .iter()
        .all(|(row, _)| !t.cell(row, "enable").as_bool() || t.cell(row, "success").as_bool());
    all_ok
}

/// Cycles run_once (with one-minute gaps for the retry backoff) until
/// every host converged; returns the number of passes.
fn converge(w: &mut World, cap: usize) -> usize {
    let mut passes = 0;
    loop {
        w.dcm.run_once();
        passes += 1;
        if converged(&w.state) {
            return passes;
        }
        assert!(passes < cap, "no convergence after {cap} passes");
        w.state.write().db.clock().advance(60);
    }
}

/// Flips 1% of the user shells (the inter-cycle mutation batch).
fn mutate(w: &World, round: usize) {
    let registry = Arc::new(Registry::standard());
    let mut s = w.state.write();
    for u in 0..(USERS / 100).max(1) {
        registry
            .execute(
                &mut s,
                &Caller::new("ops", "e20"),
                "update_user_shell",
                &[format!("u{u:04}"), format!("/bin/gen{round}")],
            )
            .expect("shell flip");
    }
}

/// Install-relevant files of one host, sorted (staging/backup artifacts
/// are attempt history, not converged state).
fn files_of(host: &Arc<Mutex<SimHost>>) -> Vec<(String, Vec<u8>)> {
    let mut h = host.lock();
    let mut files: Vec<(String, Vec<u8>)> = h
        .files_mut()
        .iter()
        .filter(|(name, _)| !name.contains(".moira_backup") && !name.contains(".moira_update"))
        .map(|(name, data)| (name.clone(), data.clone()))
        .collect();
    files.sort();
    files
}

struct Sample {
    n_hosts: usize,
    seed_passes: usize,
    delta_passes: usize,
    delta_wall_us: u128,
    per_host_us: f64,
    patch_members: u64,
    patch_bytes: u64,
    full_members: u64,
    full_bytes: u64,
    fanout_wall_ns: u64,
    legs_ns: u64,
    drops: u64,
}

fn push_at(n_hosts: usize) -> Sample {
    // Subject: racked + pooled + faulty. Oracle: the identical world on a
    // perfect serial path (the generated files depend on the machine
    // list, so the oracle must hold the same hosts).
    let mut subject = build(n_hosts, true);
    let mut oracle = build(n_hosts, false);

    let seed_passes = converge(&mut subject, 200);
    converge(&mut oracle, 10);

    mutate(&subject, 1);
    mutate(&oracle, 1);
    subject.state.write().db.clock().advance(7 * 3600);
    oracle.state.write().db.clock().advance(7 * 3600);

    let snap = subject.state.read().obs.snapshot();
    let patch0 = snap.counter("dcm.transfer.patch_members");
    let pbytes0 = snap.counter("dcm.transfer.patch_bytes");
    let full0 = snap.counter("dcm.transfer.full_members");
    let fbytes0 = snap.counter("dcm.transfer.full_bytes");
    let wall0 = snap.counter("dcm.fanout.wall_ns");
    let legs0 = snap.counter("dcm.fanout.legs_ns_total");

    let t0 = Instant::now();
    let delta_passes = converge(&mut subject, 200);
    let delta_wall_us = t0.elapsed().as_micros();
    converge(&mut oracle, 10);

    let snap = subject.state.read().obs.snapshot();
    let sample = Sample {
        n_hosts,
        seed_passes,
        delta_passes,
        delta_wall_us,
        per_host_us: delta_wall_us as f64 / n_hosts as f64,
        patch_members: snap.counter("dcm.transfer.patch_members") - patch0,
        patch_bytes: snap.counter("dcm.transfer.patch_bytes") - pbytes0,
        full_members: snap.counter("dcm.transfer.full_members") - full0,
        full_bytes: snap.counter("dcm.transfer.full_bytes") - fbytes0,
        fanout_wall_ns: snap.counter("dcm.fanout.wall_ns") - wall0,
        legs_ns: snap.counter("dcm.fanout.legs_ns_total") - legs0,
        drops: subject.fabric.as_ref().unwrap().stats().drops,
    };

    // Convergence means byte-identical: every subject host matches its
    // fault-free oracle twin exactly, faults and relays notwithstanding.
    for (k, (host, twin)) in subject.hosts.iter().zip(&oracle.hosts).enumerate() {
        let files = files_of(host);
        assert!(!files.is_empty(), "host {k} installed something");
        assert_eq!(
            files,
            files_of(twin),
            "host {k} of {n_hosts} diverged from the serial oracle"
        );
    }
    sample
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[20, 200] } else { &[20, 200, 1000] };

    let mut table = Table::new(&[
        "Hosts",
        "Seed passes",
        "Delta passes",
        "Delta wall (ms)",
        "Per-host (us)",
        "Patch members",
        "Full members",
        "Patch bytes",
        "Link drops",
    ]);
    let mut json_rows = Vec::new();
    let mut samples = Vec::new();
    for &n in sizes {
        eprintln!("fan-out push to {n} hosts…");
        let s = push_at(n);
        eprintln!(
            "  delta wall {:.2} ms, fan-out wall {:.2} ms, leg sum {:.2} ms",
            s.delta_wall_us as f64 / 1000.0,
            s.fanout_wall_ns as f64 / 1e6,
            s.legs_ns as f64 / 1e6
        );
        table.row(&[
            s.n_hosts.to_string(),
            s.seed_passes.to_string(),
            s.delta_passes.to_string(),
            format!("{:.2}", s.delta_wall_us as f64 / 1000.0),
            format!("{:.1}", s.per_host_us),
            s.patch_members.to_string(),
            s.full_members.to_string(),
            s.patch_bytes.to_string(),
            s.drops.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "hosts": s.n_hosts,
            "fanout_width": width_for(s.n_hosts),
            "seed_passes": s.seed_passes,
            "delta_passes": s.delta_passes,
            "delta_wall_us": s.delta_wall_us as u64,
            "per_host_us": s.per_host_us,
            "patch_members": s.patch_members,
            "patch_bytes": s.patch_bytes,
            "full_members": s.full_members,
            "full_bytes": s.full_bytes,
            "fanout_wall_ns": s.fanout_wall_ns,
            "legs_ns_total": s.legs_ns,
            "link_drops": s.drops,
        }));
        samples.push(s);
    }
    table.print(if quick {
        "E20 — Hierarchical fan-out (quick smoke, 20/200 hosts)"
    } else {
        "E20 — Hierarchical fan-out under 5% link faults (20/200/1000 hosts)"
    });

    // The delta cycle must ride the patch path end to end: stragglers and
    // drop-victims recover via line patches, never whole archives.
    for s in &samples {
        assert!(
            s.patch_members > 0 && s.full_members == 0,
            "{} hosts: delta phase must be all-patch (patch={}, full={})",
            s.n_hosts,
            s.patch_members,
            s.full_members
        );
        assert!(
            s.drops > 0,
            "{} hosts: the fabric must actually drop",
            s.n_hosts
        );
    }
    let mut gate_ok = true;
    if !quick {
        // The sublinearity gate: fifty times the hosts must cost far less
        // than fifty times the wall — per-host cost at 1000 is required to
        // be under half the 20-host figure (measured ~10x under; the 2x
        // margin absorbs shared-runner noise).
        let small = &samples[0];
        let large = samples.last().unwrap();
        gate_ok = large.per_host_us < small.per_host_us * 0.5;
        println!(
            "\nsublinear gate (per-host us at {} hosts < 0.5x at {} hosts): {:.1} vs {:.1} -> {}",
            large.n_hosts,
            small.n_hosts,
            large.per_host_us,
            small.per_host_us,
            if gate_ok { "PASS" } else { "FAIL" }
        );
    }
    write_json(
        "dcm_fanout",
        &serde_json::json!({
            "rack_size": RACK_SIZE,
            "drop_prob": DROP_PROB,
            "leg_latency_ms": LEG_LATENCY.as_millis() as u64,
            "rows": json_rows,
            "gate_sublinear": gate_ok,
        }),
    );
    assert!(gate_ok, "wall-clock must be sublinear in host count");
}
