//! Experiment E14: the delta-driven DCM cycle.
//!
//! Measures what the incremental engine (PR 3) buys over the from-scratch
//! extraction the paper describes in §5.7/§5.8: per-cycle generation
//! wall-clock, and bytes crossing the wire under the manifest-based
//! partial transfer, at mutation rates of 0.1%, 1% and 10% of the user
//! population between consecutive DCM cycles.
//!
//! `--quick` runs the same pipeline on the small population as a CI smoke
//! check (no ratio gates: timings on a 100-user database are noise).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use moira_bench::{write_json, Table};
use moira_core::state::Caller;
use moira_dcm::generators::incremental::{refresh, CachedBuild};
use moira_dcm::generators::standard_generators;
use moira_dcm::net::{NetFault, Network};
use moira_sim::{Deployment, PopulationSpec};

/// A perfect network that counts every byte the update protocol moves —
/// the bytes-on-wire measurement hook.
#[derive(Default)]
struct CountingNetwork {
    bytes: AtomicU64,
}

impl CountingNetwork {
    fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Network for CountingNetwork {
    fn connect(&self, _host: &str) -> Result<(), NetFault> {
        Ok(())
    }

    fn transmit(&self, _host: &str, len: usize) -> Result<(), NetFault> {
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
        Ok(())
    }
}

struct Sample {
    rate: f64,
    mutated: usize,
    full_gen_us: u128,
    incr_gen_us: u128,
    full_wire: u64,
    incr_wire: u64,
}

/// One converge → mutate → re-extract → re-push cycle at the given rate.
fn cycle_at(spec: &PopulationSpec, rate: f64) -> Sample {
    let mut d = Deployment::build(spec);
    let net = Arc::new(CountingNetwork::default());
    d.dcm.set_network(net.clone());

    // Initial convergence: every archive generated from scratch and pushed
    // whole (the hosts hold nothing yet). What this pass moves is exactly
    // what a cache-less DCM would move every cycle — the full baseline.
    d.run_dcm_once();
    let full_wire = net.total();

    // Warm one cached build per generator, outside the Dcm so the
    // generation legs can be timed in isolation.
    let generators = standard_generators();
    let builds: Vec<CachedBuild> = {
        let s = d.state.read();
        generators
            .iter()
            .map(|g| refresh(g.as_ref(), &s, None).expect("warm build").build)
            .collect()
    };

    // Mutate `rate` of the user population (distinct users, shell flips).
    let mutated = ((d.population.active_logins.len() as f64 * rate).ceil() as usize).max(1);
    {
        let mut s = d.state.write();
        for login in d.population.active_logins.iter().take(mutated) {
            d.registry
                .execute(
                    &mut s,
                    &Caller::root("e14"),
                    "update_user_shell",
                    &[login.clone(), "/bin/athena/tcsh".into()],
                )
                .expect("shell flip");
        }
    }

    // Generation wall-clock: from-scratch extraction vs incremental
    // refresh against the warmed caches, over the same mutated state.
    // Minimum of REPS runs each — single-shot numbers on a shared box are
    // allocator and scheduler noise. The cache clone happens outside the
    // timed region: a real DCM hands its cache over, it does not copy it.
    const REPS: usize = 5;
    let (full_gen_us, incr_gen_us) = {
        let s = d.state.read();
        let mut full_gen_us = u128::MAX;
        let mut scratch = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let run: Vec<_> = generators
                .iter()
                .map(|g| g.generate(&s, "").expect("full generate"))
                .collect();
            full_gen_us = full_gen_us.min(t0.elapsed().as_micros());
            scratch = run;
        }

        let mut incr_gen_us = u128::MAX;
        let mut refreshed = Vec::new();
        for _ in 0..REPS {
            let warm: Vec<CachedBuild> = builds.clone();
            let t0 = Instant::now();
            let run: Vec<_> = generators
                .iter()
                .zip(warm)
                .map(|(g, b)| refresh(g.as_ref(), &s, Some(b)).expect("refresh").build)
                .collect();
            incr_gen_us = incr_gen_us.min(t0.elapsed().as_micros());
            refreshed = run;
        }

        for ((g, full), incr) in generators.iter().zip(&scratch).zip(&refreshed) {
            assert_eq!(
                full.to_bytes(),
                incr.archive().to_bytes(),
                "{}: incremental refresh must be byte-identical",
                g.service()
            );
        }
        (full_gen_us, incr_gen_us)
    };

    // Bytes-on-wire for the follow-up cycle: the hosts hold the previous
    // archives, so the manifest handshake ships only the stale members.
    net.reset();
    d.advance(25 * 3600);
    d.run_dcm_once();
    let incr_wire = net.total();
    assert!(
        d.dcm.stats.delta_builds > 0,
        "the measured cycle must ride the delta path"
    );

    Sample {
        rate,
        mutated,
        full_gen_us,
        incr_gen_us,
        full_wire,
        incr_wire,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick {
        PopulationSpec::small()
    } else {
        PopulationSpec::athena_1988()
    };

    let mut table = Table::new(&[
        "Mutation rate",
        "Rows mutated",
        "Full gen (ms)",
        "Incr gen (ms)",
        "Gen speedup",
        "Full wire (bytes)",
        "Incr wire (bytes)",
        "Wire reduction",
    ]);
    let mut json_rows = Vec::new();
    let mut gate_ok = true;
    for rate in [0.001, 0.01, 0.10] {
        eprintln!("dcm cycle at {:.1}% mutation…", rate * 100.0);
        let s = cycle_at(&spec, rate);
        let gen_speedup = s.full_gen_us as f64 / (s.incr_gen_us.max(1)) as f64;
        let wire_reduction = s.full_wire as f64 / (s.incr_wire.max(1)) as f64;
        // The acceptance gate: at 1% mutation, incremental generation and
        // manifest transfer each cut their cost at least fivefold.
        if !quick && (s.rate - 0.01).abs() < 1e-9 {
            gate_ok = gen_speedup >= 5.0 && wire_reduction >= 5.0;
        }
        table.row(&[
            format!("{:.1}%", s.rate * 100.0),
            s.mutated.to_string(),
            format!("{:.2}", s.full_gen_us as f64 / 1000.0),
            format!("{:.2}", s.incr_gen_us as f64 / 1000.0),
            format!("{gen_speedup:.1}x"),
            s.full_wire.to_string(),
            s.incr_wire.to_string(),
            format!("{wire_reduction:.1}x"),
        ]);
        json_rows.push(serde_json::json!({
            "rate": s.rate,
            "rows_mutated": s.mutated,
            "full_generation_us": s.full_gen_us as u64,
            "incremental_generation_us": s.incr_gen_us as u64,
            "generation_speedup": gen_speedup,
            "full_wire_bytes": s.full_wire,
            "incremental_wire_bytes": s.incr_wire,
            "wire_reduction": wire_reduction,
        }));
    }
    table.print(if quick {
        "E14 — Delta-driven DCM cycle (quick smoke, small population)"
    } else {
        "E14 — Delta-driven DCM cycle (full vs incremental, §5.1 scale)"
    });
    if !quick {
        println!(
            "\n1%-mutation gate (>=5x generation speedup and >=5x wire reduction): {}",
            if gate_ok { "PASS" } else { "FAIL" }
        );
    }
    write_json(
        "dcm_cycle",
        &serde_json::json!({
            "population": if quick { "small" } else { "athena_1988" },
            "rows": json_rows,
            "gate_1pct_5x": gate_ok,
        }),
    );
    assert!(gate_ok, "1% mutation must give >=5x on both axes");
}
