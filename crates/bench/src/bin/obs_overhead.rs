//! Instrumentation overhead on the read-throughput path.
//!
//! The obs registry's promise is that always-on metrics are cheap enough
//! to leave enabled in production: counters are single atomic adds, and a
//! latency sample is two clock reads plus one atomic bucket increment.
//! This bench proves it on the same workload as `read_throughput`: the
//! 4-worker read tier serving 8 in-process clients, timed with the
//! registry enabled and with it disabled (the handles short-circuit to
//! no-ops), A/B-interleaved with best-of-N per mode so scheduler noise
//! cancels instead of accumulating into either arm.

use std::sync::Arc;

use moira_bench::{write_json, Table};
use moira_core::registry::Registry;
use moira_core::server::MoiraServer;
use moira_core::state::shared;
use moira_protocol::transport::{pair, recv_blocking, Channel, InProcChannel};
use moira_protocol::wire::{MajorRequest, Reply, Request};
use moira_sim::{populate, PopulationSpec};

const CLIENTS: usize = 8;
const ROUNDS: usize = 80;
const TRIALS: usize = 5;
const MAX_OVERHEAD: f64 = 0.05;

/// Builds a populated server with `CLIENTS` authenticated connections.
fn build() -> (MoiraServer, Vec<InProcChannel>, Vec<String>) {
    let registry = Arc::new(Registry::standard());
    let mut state = moira_core::state::MoiraState::new(moira_common::VClock::new());
    moira_core::seed::seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &PopulationSpec::small()).expect("population");
    let logins = report.active_logins.clone();
    let mut server = MoiraServer::new(shared(state), registry, None);
    let mut clients = Vec::with_capacity(CLIENTS);
    for _ in 0..CLIENTS {
        let (client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);
        clients.push(client);
    }
    for c in clients.iter_mut() {
        c.send(Request::new(MajorRequest::Auth, &["root", "obs-bench"]).encode())
            .unwrap();
    }
    server.run_until_idle(2);
    for c in clients.iter_mut() {
        let r = Reply::decode(recv_blocking(c, 1_000_000).expect("auth reply")).unwrap();
        assert_eq!(r.code, 0);
    }
    (server, clients, logins)
}

/// The same retrieve mix as `read_throughput`: mostly point lookups, some
/// wildcard scans.
fn request_for(logins: &[String], round: usize, client: usize) -> Request {
    let n = round * CLIENTS + client;
    if n % 8 == 7 {
        Request::new(MajorRequest::Query, &["get_machine", "*"])
    } else {
        let login = &logins[n % logins.len()];
        Request::new(MajorRequest::Query, &["get_user_by_login", login])
    }
}

/// One timed run of the workload with the registry on or off. Returns the
/// wall-clock seconds for the request loop alone (build excluded).
fn run_trial(instrumented: bool) -> f64 {
    let (mut server, mut clients, logins) = build();
    server.set_read_workers(4);
    server.obs().set_enabled(instrumented);
    let t0 = std::time::Instant::now();
    for round in 0..ROUNDS {
        for (i, c) in clients.iter_mut().enumerate() {
            c.send(request_for(&logins, round, i).encode()).unwrap();
        }
        server.poll_once();
        for c in clients.iter_mut() {
            loop {
                let r = Reply::decode(recv_blocking(c, 1_000_000).expect("reply")).unwrap();
                assert!(r.code >= 0 || r.is_more_data(), "query failed: {}", r.code);
                if !r.is_more_data() {
                    break;
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if instrumented {
        // The snapshot and exposition paths must hold up too — and the
        // run must actually have recorded.
        let snap = server.obs().snapshot();
        assert_eq!(
            snap.counter("server.reads_dispatched"),
            (ROUNDS * CLIENTS) as u64,
            "instrumented run recorded every dispatch"
        );
        let text = server.obs().render_text();
        assert!(text.contains("server.latency.read"));
    }
    elapsed
}

fn main() {
    let requests = ROUNDS * CLIENTS;
    eprintln!(
        "obs overhead: {CLIENTS} clients x {ROUNDS} rounds, {TRIALS} interleaved trials per mode"
    );

    // Warm-up pair (page cache, allocator), discarded.
    run_trial(false);
    run_trial(true);

    let mut on = Vec::with_capacity(TRIALS);
    let mut off = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        // Alternate which arm goes first so drift charges both equally.
        if trial % 2 == 0 {
            on.push(run_trial(true));
            off.push(run_trial(false));
        } else {
            off.push(run_trial(false));
            on.push(run_trial(true));
        }
    }
    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let best_on = best(&on);
    let best_off = best(&off);
    let overhead = ((best_on - best_off) / best_off).max(0.0);

    let mut table = Table::new(&["Registry", "Best wall (s)", "Best qps"]);
    table.row(&[
        "disabled".into(),
        format!("{best_off:.4}"),
        format!("{:.0}", requests as f64 / best_off),
    ]);
    table.row(&[
        "enabled".into(),
        format!("{best_on:.4}"),
        format!("{:.0}", requests as f64 / best_on),
    ]);
    table.print("Read-path instrumentation overhead");
    println!(
        "\noverhead: {:.2}% (gate: <{:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    write_json(
        "obs_overhead",
        &serde_json::json!({
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "requests_per_trial": requests,
            "trials_per_mode": TRIALS,
            "methodology": "A/B-interleaved trials of the 4-worker read tier, order alternating per pair; best-of-N wall time per mode; overhead = (best_on - best_off) / best_off, clamped at 0",
            "best_wall_s": { "enabled": best_on, "disabled": best_off },
            "all_wall_s": { "enabled": on, "disabled": off },
            "overhead_fraction": overhead,
            "gate": MAX_OVERHEAD,
        }),
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "instrumentation overhead {:.2}% exceeds the {:.0}% gate",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
