//! Experiment E6: the §5.5 access-cache ablation.
//!
//! "It is expected that many access checks will have to be performed
//! twice: once to allow the client to find out that it should prompt the
//! user …, and again when the query is actually executed. It is expected
//! that some form of access caching will eventually be worked into the
//! server for performance reasons." We implement the cache and measure the
//! double-check workload with it on and off.

use std::sync::Arc;

use moira_bench::{write_json, Table};
use moira_client::{DirectClient, MoiraConn};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::{shared, MoiraState, SharedState};
use moira_sim::{populate, PopulationSpec};

const FLOWS: usize = 2_000;

/// Builds a population plus an `opstaff` member reaching `moira-admins`
/// through a chain of nested lists (so each uncached check walks the
/// membership graph).
fn build() -> (SharedState, Arc<Registry>, String) {
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &PopulationSpec::small()).expect("population");
    let operator = report.active_logins[0].clone();
    // operator ∈ level3 ∈ level2 ∈ level1 ∈ moira-admins.
    let root = moira_core::state::Caller::root("e6");
    let mk = |state: &mut MoiraState, args: &[&str]| {
        let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        registry.execute(state, &root, "add_list", &args).unwrap();
    };
    for level in ["level1", "level2", "level3"] {
        mk(
            &mut state,
            &[level, "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        );
    }
    let add_member = |state: &mut MoiraState, list: &str, mtype: &str, member: &str| {
        registry
            .execute(
                state,
                &root,
                "add_member_to_list",
                &[list.into(), mtype.into(), member.into()],
            )
            .unwrap();
    };
    add_member(&mut state, "moira-admins", "LIST", "level1");
    add_member(&mut state, "level1", "LIST", "level2");
    add_member(&mut state, "level2", "LIST", "level3");
    add_member(&mut state, "level3", "USER", &operator);
    (shared(state), registry, operator)
}

/// Runs the §5.5 double-check workload: access pre-check + execute, per
/// flow. Returns (elapsed ms, hits, misses).
fn run_workload(enabled: bool) -> (f64, u64, u64) {
    let (state, registry, operator) = build();
    state.read().access_cache.set_enabled(enabled);
    let mut conn = DirectClient::connect(state.clone(), registry, &operator, "chsh");
    let t0 = std::time::Instant::now();
    for i in 0..FLOWS {
        let target = format!("user{i}");
        // The client pre-checks before prompting…
        conn.access("update_user_shell", &[&target, "/bin/csh"])
            .unwrap();
        // …then executes (same capability checked again). The target user
        // does not exist; the ACL check still runs first and the cheap
        // MR_USER miss keeps the workload access-dominated.
        let _ = conn.query("update_user_shell", &[&target, "/bin/csh"], &mut |_| {});
    }
    let elapsed = t0.elapsed().as_secs_f64() * 1e3;
    let s = state.read();
    (elapsed, s.access_cache.hits(), s.access_cache.misses())
}

fn main() {
    eprintln!("running {FLOWS} access+execute flows with and without the cache…");
    let (off_ms, off_hits, off_misses) = run_workload(false);
    let (on_ms, on_hits, on_misses) = run_workload(true);
    let speedup = off_ms / on_ms;

    let mut table = Table::new(&["Cache", "Flows", "ACL walks", "Cache hits", "Elapsed (ms)"]);
    table.row(&[
        "off (every check walks lists)".into(),
        FLOWS.to_string(),
        off_misses.to_string(),
        off_hits.to_string(),
        format!("{off_ms:.1}"),
    ]);
    table.row(&[
        "on (§5.5 access cache)".into(),
        FLOWS.to_string(),
        on_misses.to_string(),
        on_hits.to_string(),
        format!("{on_ms:.1}"),
    ]);
    table.print("E6 — Access-check caching ablation (§5.5)");
    println!(
        "\ncache eliminates {} of {} membership walks; speedup {speedup:.2}x; \
         double-checks made cheap: {}",
        off_misses - on_misses,
        off_misses,
        on_hits > 0 && on_misses < off_misses
    );
    write_json(
        "table_access_cache",
        &serde_json::json!({
            "flows": FLOWS,
            "off": {"ms": off_ms, "hits": off_hits, "misses": off_misses},
            "on": {"ms": on_ms, "hits": on_hits, "misses": on_misses},
            "speedup": speedup,
        }),
    );
}
