//! Experiment E10: consumer round-trip (§5.8 server descriptions).
//!
//! Every file the DCM distributes is loaded by the consumer it was written
//! for, then probed the way its §5.8.2 "Client(s)" would: Hesiod lookups
//! (`login`, `attach`, `inc`, `lpr`), mail routing, NFS credential/quota
//! application, and Zephyr ACL enforcement.

use moira_bench::{write_json, Table};
use moira_common::rng::Mt;
use moira_sim::{Deployment, PopulationSpec};

fn main() {
    let spec = PopulationSpec::athena_1988().scaled_users(500);
    eprintln!(
        "building a {}-user deployment and propagating…",
        spec.active_users
    );
    let mut d = Deployment::build(&spec);
    let report = d.run_dcm_once();
    assert!(
        report.updates.iter().all(|(_, _, r)| r.is_ok()),
        "initial propagation clean"
    );

    let mut rng = Mt::new(10);
    let mut probes: Vec<(&'static str, usize, usize)> = Vec::new();
    let logins = d.population.active_logins.clone();
    let sample: Vec<String> = (0..100).map(|_| rng.choice(&logins).clone()).collect();

    // Hesiod: passwd, pobox, uid->passwd, filsys, grplist (client: login,
    // inc, attach).
    let hes = d.hesiod_one();
    let hes = hes.lock();
    let mut ok = 0;
    for login in &sample {
        let passwd = hes.resolve(login, "passwd");
        let pobox = hes.resolve(login, "pobox");
        let filsys = hes.resolve(login, "filsys");
        let grplist = hes.resolve(login, "grplist");
        if let (Ok(p), Ok(po), Ok(f), Ok(g)) = (passwd, pobox, filsys, grplist) {
            let uid = p[0].split(':').nth(2).unwrap_or("").to_owned();
            let back = hes.resolve(&uid, "uid");
            if back.is_ok_and(|b| b[0].starts_with(&format!("{login}:")))
                && po[0].starts_with("POP ")
                && f[0].starts_with("NFS ")
                && g[0].starts_with(&format!("{login}:"))
            {
                ok += 1;
            }
        }
    }
    probes.push((
        "hesiod user lookups (passwd/pobox/filsys/grplist/uid)",
        ok,
        sample.len(),
    ));

    // Hesiod service map and printers (clients: /etc/services shim, lpr).
    let svc_ok = hes.resolve("svc0", "service").is_ok() as usize;
    let pcap_ok = hes.resolve("prn00", "pcap").is_ok() as usize;
    let sloc_ok = hes.resolve("HESIOD", "sloc").is_ok() as usize;
    probes.push((
        "hesiod service/printcap/sloc entries",
        svc_ok + pcap_ok + sloc_ok,
        3,
    ));
    drop(hes);

    // Mail hub: every sampled user routes to a pobox; a mailing list
    // expands.
    let hub = d.mail_one();
    let hub = hub.lock();
    let mut ok = 0;
    for login in &sample {
        let dests = hub.resolve(login);
        if dests
            .iter()
            .all(|dst| matches!(dst, moira_svc::mail::Destination::PoBox { .. }))
        {
            ok += 1;
        }
    }
    probes.push(("mail pobox routing", ok, sample.len()));
    let list_ok = hub
        .resolve("ml-000")
        .iter()
        .all(|dst| !matches!(dst, moira_svc::mail::Destination::Bounce(_)));
    probes.push(("mailing list expansion (ml-000)", list_ok as usize, 1));
    drop(hub);

    // NFS: credentials + quota applied on the user's home server; locker
    // directory created.
    let mut ok = 0;
    for login in sample.iter().take(50) {
        let path = format!("/u1/lockers/{login}");
        let served = d.nfs.values().any(|srv| {
            let s = srv.lock();
            s.credential(login).is_some()
                && s.locker(&path).is_some_and(|l| l.init_files)
                && s.credential(login)
                    .is_some_and(|c| s.quota(c.uid) == Some(300))
        });
        if served {
            ok += 1;
        }
    }
    probes.push(("nfs credentials+locker+quota on home server", ok, 50));

    // Zephyr: controlled class enforces its transmit ACL on every server.
    let mut ok = 0;
    let mut total = 0;
    for z in d.zephyr.values() {
        let mut z = z.lock();
        total += 2;
        if z.transmit("not-a-member", "zclass-0", "i", "m").is_err() {
            ok += 1;
        }
        if z.transmit("anyone", "UNRESTRICTED", "i", "m").is_ok() {
            ok += 1;
        }
    }
    probes.push(("zephyr ACL enforcement per server", ok, total));

    let mut table = Table::new(&["Probe", "Passed", "Total"]);
    let mut all_ok = true;
    let mut json_rows = Vec::new();
    for (name, passed, total) in &probes {
        table.row(&[name.to_string(), passed.to_string(), total.to_string()]);
        all_ok &= passed == total;
        json_rows.push(serde_json::json!({"probe": name, "passed": passed, "total": total}));
    }
    table.print("E10 — Consumer round-trip: every distributed file is used (§5.8)");
    println!("\nall probes passed: {all_ok}");
    write_json(
        "table_consumer_roundtrip",
        &serde_json::json!({"rows": json_rows, "all_ok": all_ok}),
    );
}
