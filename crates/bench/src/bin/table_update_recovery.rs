//! Experiment E8: the §5.9 update-protocol robustness matrix.
//!
//! Goals from the paper: "Completely automatic update for normal cases and
//! expected kinds of failures. Survives clean server crashes. Survives
//! clean Moira crashes." Each scenario injects one failure, checks that no
//! installed file is ever torn, then lets recovery proceed and checks
//! convergence.

use moira_bench::{write_json, Table};
use moira_client::{MoiraConn, ServerThread};
use moira_core::state::Caller;
use moira_dcm::retry::RetryPolicy;
use moira_sim::{Deployment, PopulationSpec};

/// Checks the integrity invariant on every Hesiod host: any installed
/// passwd.db parses as complete BIND lines (no torn writes).
fn no_torn_files(d: &Deployment) -> bool {
    for host in d.hosts.values() {
        let h = host.lock();
        if let Some(bytes) = h.read_file("/var/hesiod/passwd.db") {
            let Ok(text) = std::str::from_utf8(bytes) else {
                return false;
            };
            if !text.is_empty() && !text.ends_with('\n') {
                return false;
            }
            if !text.lines().all(|l| l.contains("HS UNSPECA")) {
                return false;
            }
        }
    }
    true
}

/// True when every enabled serverhost reports success and carries current
/// files.
fn converged(d: &Deployment) -> bool {
    let s = d.state.read();
    let t = s.db.table("serverhosts");
    let rows: Vec<_> = t.iter().map(|(row, _)| row).collect();
    rows.into_iter().all(|row| {
        !t.cell(row, "enable").as_bool()
            || t.cell(row, "service").as_str() == "POP"
            || t.cell(row, "success").as_bool()
    })
}

struct Outcome {
    scenario: &'static str,
    first_error: String,
    hard: bool,
    recovered: bool,
    torn: bool,
}

fn run_scenario(
    scenario: &'static str,
    inject: impl FnOnce(&mut Deployment),
    recover: impl FnOnce(&mut Deployment),
) -> Outcome {
    let mut d = Deployment::build(&PopulationSpec::small());
    inject(&mut d);
    let report = d.run_dcm_once();
    let first_error = report
        .updates
        .iter()
        .find_map(|(_, _, r)| r.as_ref().err().map(|e| e.message()))
        .unwrap_or_else(|| "none".into());
    let hard = report
        .updates
        .iter()
        .any(|(_, _, r)| r.as_ref().err().is_some_and(|e| e.is_hard()));
    let torn_during = !no_torn_files(&d);
    recover(&mut d);
    // Retries happen on later DCM passes; give it a few cron ticks.
    for _ in 0..4 {
        d.advance(25 * 3600);
        d.run_dcm_once();
    }
    Outcome {
        scenario,
        first_error,
        hard,
        recovered: converged(&d) && no_torn_files(&d),
        torn: torn_during,
    }
}

fn reset_errors(d: &mut Deployment) {
    let services: Vec<String> = {
        let s = d.state.read();
        let t = s.db.table("servers");
        t.iter()
            .map(|(row, _)| t.cell(row, "name").render())
            .collect()
    };
    let mut s = d.state.write();
    for svc in services {
        let _ = d.registry.execute(
            &mut s,
            &Caller::root("operator"),
            "reset_server_error",
            std::slice::from_ref(&svc),
        );
        let hosts: Vec<String> = {
            let t = s.db.table("serverhosts");
            t.select(&moira_db::Pred::Eq("service", svc.clone().into()))
                .into_iter()
                .map(|r| {
                    let mach_id = t.cell(r, "mach_id").as_int();
                    let m = s.db.table("machine");
                    m.select(&moira_db::Pred::Eq("mach_id", mach_id.into()))
                        .first()
                        .map(|&mr| m.cell(mr, "name").render())
                        .unwrap_or_default()
                })
                .collect()
        };
        for host in hosts {
            let _ = d.registry.execute(
                &mut s,
                &Caller::root("operator"),
                "reset_server_host_error",
                &[svc.clone(), host],
            );
        }
    }
}

/// Update attempts piled onto one permanently partitioned host over twelve
/// hourly DCM passes, under a given retry policy.
fn attempts_against_dead_host(policy: RetryPolicy) -> u64 {
    let mut d = Deployment::build(&PopulationSpec::small());
    let victim = d.population.hesiod_servers[0].clone();
    d.net.partition(&victim);
    d.dcm.set_retry_policy(policy);
    for _ in 0..12 {
        d.run_dcm_once();
        d.advance(3600);
    }
    d.dcm.stats.updates_attempted
}

/// Client-visible overload: a server with a one-request dispatch budget per
/// poll sheds the rest with the distinct Busy status; clients retrying with
/// backoff all complete. Returns (requests landed, expected, busy resends).
fn overload_shed_run() -> (usize, usize, u64) {
    let (mut server, state, _) = moira_core::server::standard_server(moira_common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    server.set_overload_limit(Some(1));
    let thread = std::sync::Arc::new(ServerThread::spawn(server));
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let thread = thread.clone();
            std::thread::spawn(move || {
                let mut client = thread.connect();
                client.set_busy_retry(64, 1);
                client.auth("ops", &format!("e8-{i}")).unwrap();
                for j in 0..3 {
                    client
                        .query("add_machine", &[&format!("E8-{i}-{j}"), "VAX"], &mut |_| {})
                        .unwrap();
                }
                client.busy_resends
            })
        })
        .collect();
    let resends: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let landed = {
        let s = state.read();
        s.db.table("machine")
            .select(&moira_db::Pred::Like("name", "E8-*".into()))
            .len()
    };
    (landed, 12, resends)
}

fn main() {
    let hes_host = |d: &Deployment| d.hosts[&d.population.hesiod_servers[0]].clone();
    let outcomes = vec![
        run_scenario("healthy baseline", |_| {}, |_| {}),
        run_scenario(
            "server down at update time",
            |d| d.hosts[&d.population.hesiod_servers[0]].lock().up = false,
            |d| hes_host(d).lock().reboot(),
        ),
        run_scenario(
            "connection refused",
            |d| hes_host(d).lock().fail.refuse_connect = true,
            |d| hes_host(d).lock().fail.refuse_connect = false,
        ),
        run_scenario(
            "crash during transfer",
            |d| hes_host(d).lock().fail.crash_after_ops = Some(1),
            |d| hes_host(d).lock().reboot(),
        ),
        run_scenario(
            "crash during execution",
            |d| hes_host(d).lock().fail.crash_after_ops = Some(9),
            |d| hes_host(d).lock().reboot(),
        ),
        run_scenario(
            "corrupted transfer (checksum)",
            |d| hes_host(d).lock().fail.corrupt_transfers = true,
            |d| hes_host(d).lock().fail.corrupt_transfers = false,
        ),
        run_scenario(
            "operation timeout",
            |d| hes_host(d).lock().fail.hang = true,
            |d| hes_host(d).lock().fail.hang = false,
        ),
        run_scenario(
            "network partition during transfer",
            |d| {
                let victim = d.population.hesiod_servers[0].clone();
                d.net.partition(&victim);
            },
            |d| {
                let victim = d.population.hesiod_servers[0].clone();
                d.net.heal(&victim);
            },
        ),
        run_scenario(
            "drop-heavy flaky link (60% loss)",
            |d| {
                let victim = d.population.hesiod_servers[0].clone();
                d.net.set_drop_prob(&victim, 0.6);
            },
            |d| {
                let victim = d.population.hesiod_servers[0].clone();
                d.net.set_drop_prob(&victim, 0.0);
            },
        ),
        run_scenario(
            "partition healing mid-run (no operator)",
            |d| {
                let victim = d.population.hesiod_servers[0].clone();
                let now = d.clock.now();
                d.net.partition_until(&victim, now + 30 * 3600);
            },
            |_| {},
        ),
        run_scenario(
            "install script hard failure",
            |d| hes_host(d).lock().fail.fail_exec_with = Some(13),
            |d| {
                hes_host(d).lock().fail.fail_exec_with = None;
                reset_errors(d);
            },
        ),
        run_scenario(
            "Moira crash (data files lost, locks orphaned)",
            |d| {
                // Crash mid-run: generate, then lose the DCM's in-memory
                // state. The restarted DCM re-reads its srvtab from disk and
                // reattaches to the fabric, but its generator caches and
                // last-pushed archives are gone.
                d.run_dcm_once();
                d.restart_dcm();
                // A change arrives that the lost files do not contain.
                let mut s = d.state.write();
                let login = d.population.active_logins[0].clone();
                d.registry
                    .execute(
                        &mut s,
                        &Caller::root("e8"),
                        "update_user_shell",
                        &[login, "/bin/newsh".into()],
                    )
                    .unwrap();
            },
            |_| {},
        ),
    ];

    let mut table = Table::new(&[
        "Scenario",
        "First error",
        "Hard?",
        "No torn files",
        "Converged",
    ]);
    let mut all_converged = true;
    let mut json_rows = Vec::new();
    for o in &outcomes {
        table.row(&[
            o.scenario.to_string(),
            o.first_error.clone(),
            if o.hard { "hard" } else { "soft" }.into(),
            (!o.torn).to_string(),
            o.recovered.to_string(),
        ]);
        all_converged &= o.recovered && !o.torn;
        json_rows.push(serde_json::json!({
            "scenario": o.scenario, "first_error": o.first_error,
            "hard": o.hard, "torn": o.torn, "recovered": o.recovered,
        }));
    }
    table.print("E8 — Update-protocol failure/recovery matrix (§5.9)");
    println!(
        "\nall scenarios converged with no torn files: {all_converged} \
         (paper goal: \"completely automatic update for normal cases and \
         expected kinds of failures\")"
    );

    // Retry-storm control: the same permanent outage under retry-every-pass
    // versus the exponential-backoff gate.
    let no_escalation = |p: RetryPolicy| RetryPolicy {
        escalate_after: u32::MAX,
        ..p
    };
    let naive = attempts_against_dead_host(no_escalation(RetryPolicy {
        base_secs: 0,
        max_secs: 0,
        jitter_frac: 0.0,
        ..RetryPolicy::default()
    }));
    let gated = attempts_against_dead_host(no_escalation(RetryPolicy::default()));
    let storm_contained = gated < naive;
    println!(
        "\nretry storm vs one dead host over 12 hourly passes: \
         naive retry-every-pass = {naive} attempts, backoff gate = {gated} \
         attempts (contained: {storm_contained})"
    );

    // Client-visible overload: shed requests carry the distinct Busy status
    // and client-side backoff drains the contention completely.
    let (landed, expected, resends) = overload_shed_run();
    let overload_recovered = landed == expected;
    println!(
        "client-visible server overload: {landed}/{expected} requests landed \
         after {resends} Busy resends (recovered: {overload_recovered})"
    );

    write_json(
        "table_update_recovery",
        &serde_json::json!({
            "rows": json_rows,
            "all_converged": all_converged,
            "retry_storm": {
                "naive_attempts": naive,
                "gated_attempts": gated,
                "contained": storm_contained,
            },
            "overload": {
                "landed": landed,
                "expected": expected,
                "busy_resends": resends,
                "recovered": overload_recovered,
            },
        }),
    );
}
