//! Experiment E9: registration day (§5.10).
//!
//! "A new student must be able to get an athena account without any
//! intervention from Athena user accounts staff. … the user accounts
//! people would be faced with having to give out ~1000 accounts or more at
//! the beginning of each term." One thousand synthetic students walk up to
//! workstations and run the verify → grab_login → set_password flow,
//! including login-collision retries.

use moira_bench::{write_json, Table};
use moira_core::userreg::{make_authenticator, RegReply, RegRequest};
use moira_sim::{Deployment, PopulationSpec};

fn main() {
    let mut spec = PopulationSpec::athena_1988().scaled_users(2_000);
    spec.unregistered_users = 1_000;
    eprintln!(
        "building the deployment ({} students on the registrar's tape)…",
        spec.unregistered_users
    );
    let d = Deployment::build(&spec);
    let students = d.population.unregistered.clone();

    let mut registered = 0usize;
    let mut collisions = 0usize;
    let mut failures = 0usize;
    let t0 = std::time::Instant::now();
    for (i, (first, last, id_number)) in students.iter().enumerate() {
        // Verify.
        let reply = d.regserver.handle(&RegRequest::VerifyUser {
            first: first.clone(),
            last: last.clone(),
            authenticator: make_authenticator(id_number, first, last, None),
        });
        if !matches!(reply, RegReply::Ok(0)) {
            failures += 1;
            continue;
        }
        // Grab a login; first choice collides for every tenth student (they
        // all want the same cool name), forcing the retry path.
        let mut choices = Vec::new();
        if i % 10 == 0 {
            choices.push("wizard".to_owned());
        }
        choices.push(format!("f{i:05}"));
        let mut got = false;
        for login in choices {
            let reply = d.regserver.handle(&RegRequest::GrabLogin {
                first: first.clone(),
                last: last.clone(),
                authenticator: make_authenticator(id_number, first, last, Some(&login)),
            });
            match reply {
                RegReply::Ok(_) => {
                    got = true;
                    break;
                }
                RegReply::LoginTaken => {
                    collisions += 1;
                }
                _ => break,
            }
        }
        if !got {
            failures += 1;
            continue;
        }
        // Set the password.
        let reply = d.regserver.handle(&RegRequest::SetPassword {
            first: first.clone(),
            last: last.clone(),
            authenticator: make_authenticator(id_number, first, last, Some("hunter2")),
        });
        if matches!(reply, RegReply::Ok(_)) {
            registered += 1;
        } else {
            failures += 1;
        }
    }
    let elapsed = t0.elapsed();
    let per_student_ms = elapsed.as_secs_f64() * 1e3 / students.len() as f64;

    // End-state invariants.
    let (half_registered, poboxes, lockers, principals) = {
        let s = d.state.read();
        let t = s.db.table("users");
        let half = t.select(&moira_db::Pred::Eq("status", 2.into())).len();
        let po = t
            .iter()
            .filter(|(row, _)| {
                t.cell(*row, "status").as_int() == 2 && t.cell(*row, "potype").as_str() == "POP"
            })
            .count();
        let lockers = s.db.table("nfsquota").len();
        let principals = (0..students.len())
            .filter(|i| d.kdc.principal_exists(&format!("f{i:05}")))
            .count();
        (half, po, lockers, principals)
    };

    let mut table = Table::new(&["Metric", "Value"]);
    table.row(&["students on tape".into(), students.len().to_string()]);
    table.row(&[
        "registered (full 3-step flow)".into(),
        registered.to_string(),
    ]);
    table.row(&["login collisions retried".into(), collisions.to_string()]);
    table.row(&["failures".into(), failures.to_string()]);
    table.row(&[
        "half-registered accounts (status 2)".into(),
        half_registered.to_string(),
    ]);
    table.row(&["poboxes assigned".into(), poboxes.to_string()]);
    table.row(&[
        "kerberos principals reserved".into(),
        principals.to_string(),
    ]);
    table.row(&[
        "quota records (incl. existing users)".into(),
        lockers.to_string(),
    ]);
    table.row(&["elapsed".into(), format!("{:.2}s", elapsed.as_secs_f64())]);
    table.row(&["per student".into(), format!("{per_student_ms:.2} ms")]);
    table.print("E9 — Registration day: ~1000 accounts with zero staff intervention (§5.10)");
    println!(
        "\nall students registered without staff intervention: {}",
        registered == students.len() && failures == 0
    );
    write_json(
        "table_registration",
        &serde_json::json!({
            "students": students.len(),
            "registered": registered,
            "collisions": collisions,
            "failures": failures,
            "half_registered": half_registered,
            "poboxes": poboxes,
            "principals": principals,
            "per_student_ms": per_student_ms,
        }),
    );
}
