//! Experiment E7: incremental propagation (§5.1.E/G note).
//!
//! "The above files will only be generated and propagated if the data has
//! changed during the time interval. For example, although the hesiod
//! interval is 6 hours, there is no effect on system resources unless the
//! information relevant to hesiod has changed during the previous 6 hour
//! interval."
//!
//! Simulates one week at varying change rates and compares the DCM's
//! `MR_NO_CHANGE` behaviour against the naive regenerate-every-interval
//! baseline.

use moira_bench::{write_json, Table};
use moira_common::rng::Mt;
use moira_core::state::Caller;
use moira_sim::cron::run_cron;
use moira_sim::{Deployment, PopulationSpec};

const WEEK_SECS: i64 = 7 * 24 * 3600;
const CRON_SECS: i64 = 3600;

/// Simulates a week where, each hour, a user-visible change happens with
/// probability `rate`. Returns (generations, no_change checks, updates,
/// bytes generated).
fn week_at_rate(rate: f64) -> (u64, u64, usize, usize) {
    let mut d = Deployment::build(&PopulationSpec::small());
    // Initial convergence outside the measured window.
    d.run_dcm_once();
    let mut rng = Mt::new((rate * 1000.0) as u64 + 7);
    let logins = d.population.active_logins.clone();
    let mut updates = 0;
    let mut bytes = 0;
    let base_gens = d.dcm.stats.generations;
    let base_nochange = d.dcm.stats.no_changes;
    let mut elapsed = 0;
    while elapsed < WEEK_SECS {
        if rng.chance(rate) {
            // An administrative change relevant to Hesiod and friends.
            let login = rng.choice(&logins).clone();
            let shell = if rng.chance(0.5) {
                "/bin/csh"
            } else {
                "/bin/sh"
            };
            let mut s = d.state.write();
            d.registry
                .execute(
                    &mut s,
                    &Caller::root("e7"),
                    "update_user_shell",
                    &[login, shell.into()],
                )
                .unwrap();
        }
        let run = run_cron(&mut d, CRON_SECS, CRON_SECS);
        updates += run.total_updates();
        bytes += run
            .reports
            .iter()
            .flat_map(|r| &r.generated)
            .map(|(_, _, b)| b)
            .sum::<usize>();
        elapsed += CRON_SECS;
    }
    (
        d.dcm.stats.generations - base_gens,
        d.dcm.stats.no_changes - base_nochange,
        updates,
        bytes,
    )
}

fn main() {
    // Naive baseline: every elapsed interval regenerates and repropagates.
    // Intervals (hours): hesiod 6, nfs 12, mail 24, zephyr 24, passwd 24;
    // hosts: 1 hesiod + 3 nfs + 1 mail + 2 zephyr + 2 dialup in the small
    // deployment.
    let naive_gens: u64 = (168 / 6) + (168 / 12) + 3 * (168 / 24);
    let naive_updates: u64 =
        (168 / 6) + (168 / 12) * 3 + (168 / 24) + (168 / 24) * 2 + (168 / 24) * 2;

    let mut table = Table::new(&[
        "Change rate (/hour)",
        "Generations",
        "No-change checks",
        "Host updates",
        "Bytes generated",
    ]);
    let mut json_rows = Vec::new();
    for rate in [0.0, 0.05, 0.25, 1.0] {
        eprintln!("simulating one week at change rate {rate}…");
        let (gens, nochanges, updates, bytes) = week_at_rate(rate);
        table.row(&[
            format!("{rate:.2}"),
            gens.to_string(),
            nochanges.to_string(),
            updates.to_string(),
            bytes.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "rate": rate, "generations": gens, "no_change": nochanges,
            "updates": updates, "bytes": bytes,
        }));
    }
    table.row(&[
        "naive (no MR_NO_CHANGE)".into(),
        naive_gens.to_string(),
        "0".into(),
        naive_updates.to_string(),
        "(every interval)".into(),
    ]);
    table.print("E7 — Incremental propagation over one simulated week (§5.1.E/G)");
    println!(
        "\nAt rate 0 the DCM generates nothing (paper: \"no effect on system \
         resources unless the information … has changed\"); at rate 1.0 it \
         approaches the naive baseline of {naive_gens} generations."
    );
    write_json(
        "table_incremental_dcm",
        &serde_json::json!({
            "rows": json_rows,
            "naive_generations": naive_gens,
            "naive_updates": naive_updates,
        }),
    );
}
