//! Experiment E2: Figure 1, "The Moira System Structure".
//!
//! Reproduces the figure as a component trace: one administrative change
//! travels client → application library → Moira protocol → Moira server →
//! database, and one DCM cycle travels database → DCM → update protocol →
//! server host → consumer. Every arrow in the figure is exercised and
//! printed.

use moira_client::{MoiraConn, ServerThread};
use moira_core::server::standard_server;
use moira_sim::{Deployment, PopulationSpec};

fn main() {
    println!("=== E2 — Figure 1: The Moira System Structure ===\n");
    println!(
        "  [application]--[application library]--(Moira protocol)--[Moira server]--[database]"
    );
    println!("  [database]--[DCM]--(update protocol)--[server hosts]--[consumers]\n");

    // Leg 1: administrative application through the RPC stack.
    let (server, state, _registry) = standard_server(moira_common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira_core::queries::testutil::add_test_user(&mut s, "admin", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    let thread = ServerThread::spawn(server);
    let mut client = thread.connect();
    println!("client: mr_connect()                      -> connected (in-process transport)");
    client.auth("admin", "machmaint").unwrap();
    println!("client: mr_auth(\"admin\", \"machmaint\")     -> authenticated");
    client
        .access("add_machine", &["DOWNY.MIT.EDU", "VAX"])
        .unwrap();
    println!("client: mr_access(add_machine, …)         -> permitted (ACL pre-check)");
    client
        .query("add_machine", &["DOWNY.MIT.EDU", "VAX"], &mut |_| {})
        .unwrap();
    println!("client: mr_query(add_machine, …)          -> executed; journaled by server");
    let rows = client
        .query_collect("get_machine", &["DOWNY.MIT.EDU"])
        .unwrap();
    println!(
        "client: mr_query(get_machine, …)          -> tuple {:?}",
        rows[0]
    );
    {
        let s = state.read();
        println!(
            "server: journal                           -> {} entries; last = {}",
            s.journal.len(),
            s.journal
                .entries()
                .last()
                .map(|e| e.query.as_str())
                .unwrap_or("-")
        );
    }
    drop(client);
    drop(thread);

    // Leg 2: the DCM distribution path over a small deployment.
    println!();
    let mut d = Deployment::build(&PopulationSpec::small());
    let report = d.run_dcm_once();
    for (svc, files, bytes) in &report.generated {
        println!("dcm: generate {svc:<7} -> {files} files, {bytes} bytes");
    }
    for (svc, host, result) in &report.updates {
        println!(
            "dcm: update {svc:<7} on {host:<22} -> {}",
            if result.is_ok() {
                "installed + script run"
            } else {
                "FAILED"
            }
        );
    }
    let login = d.population.active_logins[0].clone();
    let hes = d.hesiod_one();
    let answer = hes.lock().resolve(&login, "pobox").unwrap();
    println!(
        "consumer: hesiod.resolve({login}, pobox)  -> {:?}",
        answer[0]
    );
    println!("\nAll components of Figure 1 exercised end to end.");
}
