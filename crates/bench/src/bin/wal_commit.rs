//! E16 — durable commit: group-commit throughput curve and a quick
//! crash-convergence gate.
//!
//! Two parts:
//!
//! 1. **Throughput curve** (real disk): the same mutation workload is
//!    committed through the durable engine at group-commit batch sizes
//!    1/4/16/64/256 — batch 1 is fsync-per-commit, larger batches amortize
//!    the fsync across the group, which is the whole point of group
//!    commit. Reported as mutations/sec and fsyncs per mutation.
//! 2. **Convergence gate** (sim media): a compact version of the
//!    `durability` torture test — kill points across append, fsync, and
//!    snapshot rename; every recovery must land byte-identical to the
//!    no-crash oracle. The full ≥50-point grid runs in CI; this gate is
//!    the fast regression tripwire.

use moira_bench::{write_json, Table};
use moira_common::clock::{VClock, ATHENA_EPOCH};
use moira_common::errors::MrError;
use moira_core::recovery::boot_durable;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};
use moira_db::snapshot::encode_snapshot;
use moira_db::storage::{DiskMedia, GroupCommitConfig, Media, OpKind, SimMedia};

const MUTATIONS: usize = 512;
const BATCH_SIZES: [usize; 5] = [1, 4, 16, 64, 256];

fn lazy_cfg() -> GroupCommitConfig {
    GroupCommitConfig {
        flush_interval_secs: i64::MAX,
        flush_bytes: usize::MAX,
        snapshot_every: 0,
    }
}

/// One machine add per mutation — the canonical small write.
fn mutate(registry: &Registry, state: &mut MoiraState, clock: &VClock, i: usize) {
    clock.set(ATHENA_EPOCH + 60 * (i as i64 + 1));
    registry
        .execute(
            state,
            &Caller::root("bench"),
            "add_machine",
            &[format!("WAL{i}.MIT.EDU"), "VAX".into()],
        )
        .expect("mutation");
}

/// Runs `MUTATIONS` commits flushing every `batch`; returns (wall seconds,
/// fsync count).
fn run_batch(registry: &Registry, media: Box<dyn Media>, batch: usize) -> (f64, u64) {
    let clock = VClock::new();
    let (mut state, _) = boot_durable(clock.clone(), registry, media, lazy_cfg()).expect("boot");
    let t0 = std::time::Instant::now();
    for i in 0..MUTATIONS {
        mutate(registry, &mut state, &clock, i);
        if (i + 1) % batch == 0 {
            state.storage.flush().expect("group flush");
        }
    }
    state.storage.flush().expect("final flush");
    let wall = t0.elapsed().as_secs_f64();
    (wall, state.obs.snapshot().counter("db.wal.fsyncs"))
}

fn throughput_curve(registry: &Registry) -> (Vec<serde_json::Value>, Vec<f64>) {
    let root = std::env::temp_dir().join(format!("moira-wal-bench-{}", std::process::id()));
    let mut table = Table::new(&["Batch", "Wall (s)", "Commits/s", "Fsyncs", "Fsync/commit"]);
    let mut points = Vec::new();
    let mut rates = Vec::new();
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        let dir = root.join(format!("b{batch}"));
        let media = DiskMedia::open(&dir).expect("bench dir");
        let (wall, fsyncs) = run_batch(registry, Box::new(media), batch);
        let rate = MUTATIONS as f64 / wall;
        table.row(&[
            batch.to_string(),
            format!("{wall:.4}"),
            format!("{rate:.0}"),
            fsyncs.to_string(),
            format!("{:.3}", fsyncs as f64 / MUTATIONS as f64),
        ]);
        points.push(serde_json::json!({
            "batch": batch,
            "wall_s": wall,
            "commits_per_s": rate,
            "fsyncs": fsyncs,
        }));
        rates.push(rate);
        if i == 0 {
            eprintln!("wal commit: fsync-per-commit baseline {rate:.0} commits/s");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    table.print("Group-commit throughput (512 mutations, real disk)");
    (points, rates)
}

/// The compact convergence gate: every kill point recovers to the oracle.
fn convergence_gate(registry: &Registry) -> usize {
    let cfg = || GroupCommitConfig {
        flush_interval_secs: 0,
        flush_bytes: 1,
        snapshot_every: 3,
    };
    const STEPS: usize = 12;
    let workload = |registry: &Registry, state: &mut MoiraState, clock: &VClock, from: usize| {
        for i in from..STEPS {
            clock.set(ATHENA_EPOCH + 60 * (i as i64 + 1));
            match registry.execute(
                state,
                &Caller::root("bench"),
                "add_machine",
                &[format!("GATE{i}.MIT.EDU"), "VAX".into()],
            ) {
                Ok(_) => {}
                Err(MrError::Durability) => return i,
                Err(e) => panic!("workload step {i}: {e:?}"),
            }
        }
        STEPS
    };
    let fingerprint = |state: &MoiraState| {
        encode_snapshot(&state.db, &state.journal, 0)
            .lines()
            .filter(|l| !l.starts_with("epoch:"))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let clock = VClock::new();
    let (mut oracle, _) =
        boot_durable(clock.clone(), registry, Box::new(SimMedia::new()), cfg()).expect("oracle");
    assert_eq!(workload(registry, &mut oracle, &clock, 0), STEPS);
    oracle.storage.flush().expect("oracle flush");
    let want = fingerprint(&oracle);

    let mut points = 0;
    for kind in [OpKind::Append, OpKind::Fsync, OpKind::Rename] {
        for nth in 0..4 {
            let clock = VClock::new();
            let media = SimMedia::new();
            let (mut state, _) =
                boot_durable(clock.clone(), registry, Box::new(media.clone()), cfg())
                    .expect("boot");
            media.arm_crash(kind, nth);
            workload(registry, &mut state, &clock, 0);
            assert!(media.crashed(), "{kind:?}#{nth} never fired");
            drop(state);
            media.power_cycle();
            let (mut recovered, report) =
                boot_durable(clock.clone(), registry, Box::new(media), cfg()).expect("recovery");
            assert!(report.recovered);
            let committed = recovered.journal.len();
            workload(registry, &mut recovered, &clock, committed);
            recovered.storage.flush().expect("flush");
            assert_eq!(fingerprint(&recovered), want, "{kind:?}#{nth} diverged");
            points += 1;
        }
    }
    points
}

fn main() {
    let registry = Registry::standard();
    let (points, rates) = throughput_curve(&registry);
    let kill_points = convergence_gate(&registry);
    println!("\nconvergence gate: {kill_points}/12 kill points byte-identical to oracle");

    let speedup = match (rates.first(), rates.last()) {
        (Some(&first), Some(&last)) if first > 0.0 => last / first,
        _ => 0.0,
    };
    write_json(
        "wal_commit",
        &serde_json::json!({
            "mutations": MUTATIONS,
            "methodology": "512 add_machine commits through Registry::execute onto a DiskMedia-backed durable engine in a temp dir; group commit simulated by explicit flush every N commits; fsync counts from db.wal.fsyncs",
            "curve": points,
            "group_commit_speedup_max_batch": speedup,
            "convergence_gate": { "kill_points": kill_points, "all_converged": true },
        }),
    );
    assert!(
        speedup >= 1.0,
        "group commit should never be slower than fsync-per-commit (got {speedup:.2}x)"
    );
}
