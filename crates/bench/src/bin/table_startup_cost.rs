//! Experiment E5: the §5.4 connection-startup claim.
//!
//! "One of the limiting factors for Athenareg, Moira's predecessor, is the
//! time it takes to start up the Ingres back end subprocess which it uses
//! to access the database. This was done for every client connection …
//! the Moira server will do this only once, at the start up time of the
//! daemon."
//!
//! The baseline models Athenareg: every client connection pays a full
//! database-backend start (restoring the database from its on-disk form)
//! before it can answer one query. Moira's model connects to the
//! long-running server and pays only the RPC round trips. Absolute numbers
//! are ours, not the VAX's; the *shape* — a large constant per-connection
//! cost eliminated — is the reproduction target.

use std::sync::Arc;

use moira_bench::{write_json, Table};
use moira_client::{MoiraConn, ServerThread};
use moira_core::registry::Registry;
use moira_core::schema::create_all_tables;
use moira_core::seed::seed_capacls;
use moira_core::server::MoiraServer;
use moira_core::state::{Caller, MoiraState};
use moira_db::backup::{mrbackup, mrrestore};
use moira_db::Database;
use moira_sim::{populate, PopulationSpec};

const CONNECTIONS: usize = 25;

fn main() {
    // A mid-size population keeps the Athenareg baseline affordable.
    let spec = PopulationSpec::athena_1988().scaled_users(2_000);
    eprintln!("building a {}-user population…", spec.active_users);
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(moira_common::VClock::new());
    seed_capacls(&mut state, &registry);
    let report = populate(&mut state, &registry, &spec).expect("population");
    let probe_login = report.active_logins[17].clone();
    let disk_image = mrbackup(&state.db);

    // --- Moira model: one persistent backend, many connections. ----------
    let shared = moira_core::state::shared(state);
    let server = MoiraServer::new(shared.clone(), registry.clone(), None);
    let thread = ServerThread::spawn(server);
    let t0 = std::time::Instant::now();
    for _ in 0..CONNECTIONS {
        let mut client = thread.connect();
        client.auth("root", "e5").unwrap();
        let rows = client
            .query_collect("get_user_by_login", &[&probe_login])
            .unwrap();
        assert_eq!(rows.len(), 1);
        client.disconnect().unwrap();
    }
    let moira_total = t0.elapsed();
    drop(thread);

    // --- Athenareg model: spawn the backend per connection. --------------
    let t1 = std::time::Instant::now();
    for _ in 0..CONNECTIONS {
        // "Starting up a backend process is a rather heavyweight
        // operation": open the database from its disk image.
        let mut db = Database::new(moira_common::VClock::new());
        create_all_tables(&mut db);
        mrrestore(&mut db, &disk_image).expect("backend start");
        let mut st = MoiraState::new(moira_common::VClock::new());
        st.db = db;
        let rows = registry
            .execute(
                &mut st,
                &Caller::root("e5"),
                "get_user_by_login",
                std::slice::from_ref(&probe_login),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
    let athenareg_total = t1.elapsed();

    let moira_per = moira_total.as_secs_f64() * 1e3 / CONNECTIONS as f64;
    let athenareg_per = athenareg_total.as_secs_f64() * 1e3 / CONNECTIONS as f64;
    let ratio = athenareg_per / moira_per;

    let mut table = Table::new(&["Model", "Connections", "Total (ms)", "Per connection (ms)"]);
    table.row(&[
        "Athenareg (backend per connection)".into(),
        CONNECTIONS.to_string(),
        format!("{:.1}", athenareg_total.as_secs_f64() * 1e3),
        format!("{athenareg_per:.2}"),
    ]);
    table.row(&[
        "Moira (persistent backend)".into(),
        CONNECTIONS.to_string(),
        format!("{:.1}", moira_total.as_secs_f64() * 1e3),
        format!("{moira_per:.2}"),
    ]);
    table.print("E5 — Connection startup: Athenareg model vs Moira model (§5.4)");
    println!(
        "\nper-connection cost ratio (Athenareg / Moira): {ratio:.0}x — \
         Moira wins: {}",
        ratio > 1.0
    );
    write_json(
        "table_startup_cost",
        &serde_json::json!({
            "connections": CONNECTIONS,
            "athenareg_ms_per_conn": athenareg_per,
            "moira_ms_per_conn": moira_per,
            "ratio": ratio,
            "moira_wins": ratio > 1.0,
        }),
    );
}
