#![warn(missing_docs)]

//! Experiment harness support for the Moira reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see DESIGN.md's per-experiment index); this library holds their
//! shared table-formatting and JSON-emission helpers.

pub mod report;

pub use report::{write_json, Table};
