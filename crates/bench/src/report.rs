//! Table formatting and machine-readable result emission for the
//! experiment binaries.

use std::io::Write;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (short rows are padded).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Adds a row of `&str`s.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===\n");
        print!("{}", self.render());
    }
}

/// Writes a JSON value next to the printed table so EXPERIMENTS.md numbers
/// are reproducible by machines too. Files land in `results/`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(value).unwrap_or_default()
        );
        eprintln!("[results written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Service", "File", "Size"]);
        t.row_str(&["Hesiod", "passwd.db", "712446"]);
        t.row_str(&["NFS", "credentials", "152648"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Service"));
        assert!(lines[2].contains("passwd.db"));
        // Columns align: "File" and "passwd.db" start at the same offset.
        let header_idx = lines[0].find("File").unwrap();
        let row_idx = lines[2].find("passwd.db").unwrap();
        assert_eq!(header_idx, row_idx);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only".to_owned()]);
        assert_eq!(t.rows()[0].len(), 3);
    }
}
