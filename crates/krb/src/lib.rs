#![warn(missing_docs)]

//! A simulated Kerberos substrate.
//!
//! The paper requires that "authentication will be done using Athena's
//! Kerberos private-key authentication system" (§4) and that the user
//! registration flow reserve principals and set passwords through the
//! Kerberos admin server over a "srvtab-srvtab" channel (§5.10). Real
//! Kerberos 4 is proprietary-DES-era infrastructure we neither have nor
//! want; this crate implements the *shape* of it — principals and keys,
//! tickets and authenticators with lifetimes and a replay cache, mutual
//! srvtab authentication, the error-propagating CBC mode the registration
//! authenticators use, and the `crypt()`-style hash the registrar records
//! MIT IDs with — so every authentication code path in Moira is exercised
//! end to end.
//!
//! **None of this is cryptographically secure.** The block cipher is a toy
//! Feistel network standing in for DES; it exists to make tampering,
//! replay, and wrong-key failures *detectable in tests*, not to resist an
//! adversary.

pub mod cipher;
pub mod crypt;
pub mod realm;
pub mod ticket;

pub use cipher::{pcbc_decrypt, pcbc_encrypt, Key};
pub use crypt::crypt;
pub use realm::{Kdc, Principal};
pub use ticket::{Authenticator, Ticket};
