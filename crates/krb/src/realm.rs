//! The KDC: the realm's principal database and ticket-granting service.
//!
//! Provides what Moira needs from Kerberos: initial-ticket issuance (used
//! by clients and by `userreg`'s "is this login free?" probe), principal
//! registration and password setting (the admin-server operations the
//! registration server drives over its srvtab channel), and service-key
//! lookup for verifiers.

use std::collections::HashMap;

use moira_common::clock::VClock;
use parking_lot::Mutex;

use crate::cipher::Key;
use crate::ticket::{seal_ticket, Ticket};

/// A principal name, e.g. `babette@ATHENA.MIT.EDU` (realm implicit here).
pub type Principal = String;

/// Errors from the Kerberos substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrbError {
    /// No such principal in the realm database.
    UnknownPrincipal,
    /// Supplied password/key does not match the principal's key.
    BadPassword,
    /// Principal already registered.
    PrincipalExists,
    /// Ticket failed to unseal or parse.
    BadTicket,
    /// Ticket lifetime exceeded.
    TicketExpired,
    /// Authenticator timestamp outside the permitted skew.
    ClockSkew,
    /// Authenticator already seen.
    Replay,
}

impl std::fmt::Display for KrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KrbError::UnknownPrincipal => "can't find principal",
            KrbError::BadPassword => "incorrect password",
            KrbError::PrincipalExists => "principal already exists",
            KrbError::BadTicket => "ticket unintelligible",
            KrbError::TicketExpired => "ticket expired",
            KrbError::ClockSkew => "clock skew too great",
            KrbError::Replay => "authenticator replayed",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for KrbError {}

/// Default ticket lifetime: the Kerberos 4 maximum of about 21 hours.
pub const DEFAULT_LIFETIME_SECS: i64 = 21 * 3600;

/// The key distribution center for one realm.
pub struct Kdc {
    principals: Mutex<HashMap<Principal, Key>>,
    clock: VClock,
    counter: Mutex<u64>,
}

impl Kdc {
    /// Creates a KDC on the given clock.
    pub fn new(clock: VClock) -> Self {
        Kdc {
            principals: Mutex::new(HashMap::new()),
            clock,
            counter: Mutex::new(0),
        }
    }

    /// The realm clock.
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// Registers a principal with a password-derived key.
    pub fn register(&self, name: &str, password: &str) -> Result<(), KrbError> {
        let mut p = self.principals.lock();
        if p.contains_key(name) {
            return Err(KrbError::PrincipalExists);
        }
        p.insert(name.to_owned(), Key::from_password(password));
        Ok(())
    }

    /// Registers a service principal with a random srvtab key, returning the
    /// key (this is what lands in the service's srvtab file).
    pub fn register_service(&self, name: &str) -> Result<Key, KrbError> {
        let mut c = self.counter.lock();
        *c += 1;
        let key = Key::from_bytes(format!("srvtab:{name}:{}", *c).as_bytes());
        let mut p = self.principals.lock();
        if p.contains_key(name) {
            return Err(KrbError::PrincipalExists);
        }
        p.insert(name.to_owned(), key);
        Ok(key)
    }

    /// True if the principal exists (the `userreg` "name taken?" probe).
    pub fn principal_exists(&self, name: &str) -> bool {
        self.principals.lock().contains_key(name)
    }

    /// Sets a principal's password (admin-server operation).
    pub fn set_password(&self, name: &str, password: &str) -> Result<(), KrbError> {
        let mut p = self.principals.lock();
        match p.get_mut(name) {
            Some(k) => {
                *k = Key::from_password(password);
                Ok(())
            }
            None => Err(KrbError::UnknownPrincipal),
        }
    }

    /// Removes a principal.
    pub fn remove(&self, name: &str) -> Result<(), KrbError> {
        match self.principals.lock().remove(name) {
            Some(_) => Ok(()),
            None => Err(KrbError::UnknownPrincipal),
        }
    }

    fn key_of(&self, name: &str) -> Result<Key, KrbError> {
        self.principals
            .lock()
            .get(name)
            .copied()
            .ok_or(KrbError::UnknownPrincipal)
    }

    fn fresh_session_key(&self) -> Key {
        let mut c = self.counter.lock();
        *c += 1;
        Key::from_bytes(format!("session:{}:{}", *c, self.clock.now()).as_bytes())
    }

    /// Issues an initial ticket for `client` to talk to `service`,
    /// verifying the client's password. Returns the sealed ticket plus the
    /// session key the client shares with the service.
    pub fn initial_ticket(
        &self,
        client: &str,
        password: &str,
        service: &str,
    ) -> Result<(Ticket, Key), KrbError> {
        let ckey = self.key_of(client)?;
        if ckey != Key::from_password(password) {
            return Err(KrbError::BadPassword);
        }
        self.ticket_with_key(client, service)
    }

    /// Issues a ticket for a client that proves possession of its key
    /// directly (the srvtab-srvtab path used by servers, §5.10).
    pub fn srvtab_ticket(
        &self,
        client: &str,
        client_key: Key,
        service: &str,
    ) -> Result<(Ticket, Key), KrbError> {
        let ckey = self.key_of(client)?;
        if ckey != client_key {
            return Err(KrbError::BadPassword);
        }
        self.ticket_with_key(client, service)
    }

    fn ticket_with_key(&self, client: &str, service: &str) -> Result<(Ticket, Key), KrbError> {
        let skey = self.key_of(service)?;
        let session = self.fresh_session_key();
        let ticket = seal_ticket(
            skey,
            client,
            service,
            session,
            self.clock.now(),
            DEFAULT_LIFETIME_SECS,
        );
        Ok((ticket, session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::unseal_ticket;

    fn kdc() -> Kdc {
        let k = Kdc::new(VClock::new());
        k.register("babette", "hunter2").unwrap();
        k.register_service("moira.kiwi").unwrap();
        k
    }

    #[test]
    fn register_and_probe() {
        let k = kdc();
        assert!(k.principal_exists("babette"));
        assert!(!k.principal_exists("nobody"));
        assert_eq!(k.register("babette", "x"), Err(KrbError::PrincipalExists));
    }

    #[test]
    fn initial_ticket_checks_password() {
        let k = kdc();
        assert_eq!(
            k.initial_ticket("babette", "wrong", "moira.kiwi")
                .unwrap_err(),
            KrbError::BadPassword
        );
        assert_eq!(
            k.initial_ticket("nobody", "x", "moira.kiwi").unwrap_err(),
            KrbError::UnknownPrincipal
        );
        let (ticket, session) = k
            .initial_ticket("babette", "hunter2", "moira.kiwi")
            .unwrap();
        // The service can unseal it with its own key and recover the session.
        let skey = k.key_of("moira.kiwi").unwrap();
        let body = unseal_ticket(skey, &ticket).unwrap();
        assert_eq!(body.client, "babette");
        assert_eq!(body.session_key, session);
    }

    #[test]
    fn set_password_changes_key() {
        let k = kdc();
        k.set_password("babette", "newpw").unwrap();
        assert_eq!(
            k.initial_ticket("babette", "hunter2", "moira.kiwi")
                .unwrap_err(),
            KrbError::BadPassword
        );
        assert!(k.initial_ticket("babette", "newpw", "moira.kiwi").is_ok());
        assert_eq!(
            k.set_password("ghost", "x"),
            Err(KrbError::UnknownPrincipal)
        );
    }

    #[test]
    fn srvtab_path() {
        let k = kdc();
        let regkey = k.register_service("reg_svr").unwrap();
        assert!(k.srvtab_ticket("reg_svr", regkey, "moira.kiwi").is_ok());
        let wrong = Key::from_password("nope");
        assert_eq!(
            k.srvtab_ticket("reg_svr", wrong, "moira.kiwi").unwrap_err(),
            KrbError::BadPassword
        );
    }

    #[test]
    fn session_keys_are_fresh() {
        let k = kdc();
        let (_, s1) = k
            .initial_ticket("babette", "hunter2", "moira.kiwi")
            .unwrap();
        let (_, s2) = k
            .initial_ticket("babette", "hunter2", "moira.kiwi")
            .unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn remove_principal() {
        let k = kdc();
        k.remove("babette").unwrap();
        assert!(!k.principal_exists("babette"));
        assert_eq!(k.remove("babette"), Err(KrbError::UnknownPrincipal));
    }
}
