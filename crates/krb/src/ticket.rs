//! Tickets, authenticators, and the verifier's replay cache.
//!
//! A ticket is a statement sealed under the *service's* key: "client C may
//! talk to you with session key K until T". An authenticator is a fresh
//! timestamped statement sealed under the *session* key, proving the sender
//! holds K right now. The verifier enforces lifetime, clock skew, and
//! single use (replay cache) — §4's requirement that Moira be "safe from
//! … replay of transactions".

use std::collections::HashSet;

use moira_common::clock::VClock;
use parking_lot::Mutex;

use crate::cipher::{pcbc_decrypt, pcbc_encrypt, Key};
use crate::realm::KrbError;

/// Permitted clock skew between client and verifier, seconds (Kerberos
/// used five minutes).
pub const MAX_SKEW_SECS: i64 = 300;

/// A sealed ticket (opaque to the client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ticket {
    /// The ciphertext, decryptable only by the service.
    pub sealed: Vec<u8>,
}

/// The plaintext contents of a ticket, visible to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TicketBody {
    /// Client principal.
    pub client: String,
    /// Service principal the ticket is for.
    pub service: String,
    /// Session key shared between client and service.
    pub session_key: Key,
    /// Unix time of issue.
    pub issued: i64,
    /// Validity, seconds from issue.
    pub lifetime: i64,
}

/// Seals a ticket under the service key.
pub fn seal_ticket(
    service_key: Key,
    client: &str,
    service: &str,
    session_key: Key,
    issued: i64,
    lifetime: i64,
) -> Ticket {
    let body = format!(
        "{client}\n{service}\n{}\n{issued}\n{lifetime}",
        session_key.0
    );
    Ticket {
        sealed: pcbc_encrypt(service_key, body.as_bytes()),
    }
}

/// Unseals and parses a ticket with the service key.
pub fn unseal_ticket(service_key: Key, ticket: &Ticket) -> Result<TicketBody, KrbError> {
    let raw = pcbc_decrypt(service_key, &ticket.sealed).ok_or(KrbError::BadTicket)?;
    let text = String::from_utf8(raw).map_err(|_| KrbError::BadTicket)?;
    let mut lines = text.split('\n');
    let client = lines.next().ok_or(KrbError::BadTicket)?.to_owned();
    let service = lines.next().ok_or(KrbError::BadTicket)?.to_owned();
    let key: u64 = lines
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(KrbError::BadTicket)?;
    let issued: i64 = lines
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(KrbError::BadTicket)?;
    let lifetime: i64 = lines
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(KrbError::BadTicket)?;
    Ok(TicketBody {
        client,
        service,
        session_key: Key(key),
        issued,
        lifetime,
    })
}

/// A sealed authenticator accompanying a ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authenticator {
    /// Ciphertext under the session key.
    pub sealed: Vec<u8>,
}

/// Builds an authenticator: `{client, timestamp, nonce}` under the session
/// key. The nonce makes simultaneous requests distinguishable in the replay
/// cache.
pub fn make_authenticator(session_key: Key, client: &str, now: i64, nonce: u64) -> Authenticator {
    let body = format!("{client}\n{now}\n{nonce}");
    Authenticator {
        sealed: pcbc_encrypt(session_key, body.as_bytes()),
    }
}

/// The service-side verifier: checks ticket + authenticator and remembers
/// authenticators to reject replays.
pub struct Verifier {
    service: String,
    service_key: Key,
    clock: VClock,
    replay_cache: Mutex<HashSet<Vec<u8>>>,
}

impl Verifier {
    /// Creates a verifier for `service` holding its srvtab key.
    pub fn new(service: &str, service_key: Key, clock: VClock) -> Self {
        Verifier {
            service: service.to_owned(),
            service_key,
            clock,
            replay_cache: Mutex::new(HashSet::new()),
        }
    }

    /// Verifies a (ticket, authenticator) pair, returning the authenticated
    /// client principal.
    pub fn verify(&self, ticket: &Ticket, auth: &Authenticator) -> Result<String, KrbError> {
        let body = unseal_ticket(self.service_key, ticket)?;
        if body.service != self.service {
            return Err(KrbError::BadTicket);
        }
        let now = self.clock.now();
        if now > body.issued + body.lifetime {
            return Err(KrbError::TicketExpired);
        }
        let raw = pcbc_decrypt(body.session_key, &auth.sealed).ok_or(KrbError::BadTicket)?;
        let text = String::from_utf8(raw).map_err(|_| KrbError::BadTicket)?;
        let mut lines = text.split('\n');
        let client = lines.next().ok_or(KrbError::BadTicket)?.to_owned();
        let stamp: i64 = lines
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(KrbError::BadTicket)?;
        if client != body.client {
            return Err(KrbError::BadTicket);
        }
        if (now - stamp).abs() > MAX_SKEW_SECS {
            return Err(KrbError::ClockSkew);
        }
        if !self.replay_cache.lock().insert(auth.sealed.clone()) {
            return Err(KrbError::Replay);
        }
        Ok(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realm::Kdc;

    fn setup() -> (Kdc, Verifier, VClock) {
        let clock = VClock::new();
        let kdc = Kdc::new(clock.clone());
        kdc.register("babette", "pw").unwrap();
        let skey = kdc.register_service("moira.kiwi").unwrap();
        let verifier = Verifier::new("moira.kiwi", skey, clock.clone());
        (kdc, verifier, clock)
    }

    #[test]
    fn happy_path() {
        let (kdc, verifier, clock) = setup();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        assert_eq!(verifier.verify(&ticket, &auth).unwrap(), "babette");
    }

    #[test]
    fn replay_rejected() {
        let (kdc, verifier, clock) = setup();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        verifier.verify(&ticket, &auth).unwrap();
        assert_eq!(
            verifier.verify(&ticket, &auth).unwrap_err(),
            KrbError::Replay
        );
        // A fresh authenticator on the same ticket is fine.
        let auth2 = make_authenticator(session, "babette", clock.now(), 2);
        assert!(verifier.verify(&ticket, &auth2).is_ok());
    }

    #[test]
    fn expiry_enforced() {
        let (kdc, verifier, clock) = setup();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        clock.advance(crate::realm::DEFAULT_LIFETIME_SECS + 1);
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        assert_eq!(
            verifier.verify(&ticket, &auth).unwrap_err(),
            KrbError::TicketExpired
        );
    }

    #[test]
    fn skew_enforced() {
        let (kdc, verifier, clock) = setup();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        let stale = make_authenticator(session, "babette", clock.now() - MAX_SKEW_SECS - 1, 1);
        assert_eq!(
            verifier.verify(&ticket, &stale).unwrap_err(),
            KrbError::ClockSkew
        );
        let future = make_authenticator(session, "babette", clock.now() + MAX_SKEW_SECS + 1, 2);
        assert_eq!(
            verifier.verify(&ticket, &future).unwrap_err(),
            KrbError::ClockSkew
        );
    }

    #[test]
    fn forged_session_key_rejected() {
        let (kdc, verifier, clock) = setup();
        let (ticket, _session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        let forged = make_authenticator(Key::from_password("guess"), "babette", clock.now(), 1);
        assert_eq!(
            verifier.verify(&ticket, &forged).unwrap_err(),
            KrbError::BadTicket
        );
    }

    #[test]
    fn client_name_mismatch_rejected() {
        let (kdc, verifier, clock) = setup();
        kdc.register("mallory", "mw").unwrap();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        // Mallory steals the session key but claims her own name.
        let auth = make_authenticator(session, "mallory", clock.now(), 1);
        assert_eq!(
            verifier.verify(&ticket, &auth).unwrap_err(),
            KrbError::BadTicket
        );
    }

    #[test]
    fn ticket_for_other_service_rejected() {
        let (kdc, verifier, clock) = setup();
        kdc.register_service("pop.e40").unwrap();
        let (ticket, session) = kdc.initial_ticket("babette", "pw", "pop.e40").unwrap();
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        assert_eq!(
            verifier.verify(&ticket, &auth).unwrap_err(),
            KrbError::BadTicket
        );
    }

    #[test]
    fn tampered_ticket_rejected() {
        let (kdc, verifier, clock) = setup();
        let (mut ticket, session) = kdc.initial_ticket("babette", "pw", "moira.kiwi").unwrap();
        ticket.sealed[4] ^= 0xff;
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        assert_eq!(
            verifier.verify(&ticket, &auth).unwrap_err(),
            KrbError::BadTicket
        );
    }
}
