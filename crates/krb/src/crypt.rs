//! A `crypt(3)`-style salted hash.
//!
//! §5.10: "the encryption algorithm is the UNIX C library `crypt()`
//! function …; the last seven characters of the ID number are encrypted
//! using the first letter of the first name and the first letter of the
//! last name as the 'salt'". This module reproduces the *interface* of
//! classic `crypt`: a two-character salt, a 13-character result whose first
//! two characters are the salt, and an output alphabet of `[./0-9A-Za-z]`.
//! The internals use our toy cipher iterated 25 times the way real `crypt`
//! iterated DES.

use crate::cipher::{encrypt_block, Key};

const ALPHABET: &[u8; 64] = b"./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

/// Hashes `word` under a two-character `salt`, returning the classic
/// 13-character string whose first two characters echo the salt.
///
/// Characters of the salt outside the crypt alphabet are folded into it,
/// as real `crypt` implementations did.
///
/// # Examples
///
/// ```
/// let h = moira_krb::crypt::crypt("2345678", "HF");
/// assert_eq!(h.len(), 13);
/// assert!(h.starts_with("HF"));
/// ```
pub fn crypt(word: &str, salt: &str) -> String {
    let salt_bytes = normalize_salt(salt);
    let key = Key::from_bytes(word.as_bytes());
    let salt_mix = ((salt_bytes[0] as u64) << 8) | salt_bytes[1] as u64;
    let mut block: u64 = salt_mix.wrapping_mul(0x0101_0101_0101_0101);
    for round in 0..25 {
        block = encrypt_block(key, block ^ salt_mix.rotate_left(round));
    }
    let mut out = String::with_capacity(13);
    out.push(salt_bytes[0] as char);
    out.push(salt_bytes[1] as char);
    // Emit 11 characters of 6 bits each from the 64-bit result (with a
    // little stretching for the last two).
    let mut acc = block as u128 | ((block.rotate_left(29) as u128) << 64);
    for _ in 0..11 {
        out.push(ALPHABET[(acc & 63) as usize] as char);
        acc >>= 6;
    }
    out
}

/// Verifies `word` against a full crypt string (salt taken from its first
/// two characters).
pub fn crypt_verify(word: &str, hashed: &str) -> bool {
    if hashed.len() < 2 {
        return false;
    }
    crypt(word, &hashed[..2]) == hashed
}

fn normalize_salt(salt: &str) -> [u8; 2] {
    let mut bytes = [b'.', b'.'];
    for (i, b) in salt.bytes().take(2).enumerate() {
        bytes[i] = if ALPHABET.contains(&b) {
            b
        } else {
            ALPHABET[(b & 63) as usize]
        };
    }
    bytes
}

/// The registrar's MIT-ID hash (§5.10): the last seven characters of the ID
/// number, salted with the first letters of the first and last names.
pub fn hash_mit_id(id_number: &str, first_name: &str, last_name: &str) -> String {
    let digits: String = id_number.chars().filter(|c| c.is_ascii_digit()).collect();
    let tail: String = digits
        .chars()
        .rev()
        .take(7)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let salt: String = [
        first_name.chars().next().unwrap_or('.'),
        last_name.chars().next().unwrap_or('.'),
    ]
    .iter()
    .collect();
    crypt(&tail, &salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_is_classic() {
        let h = crypt("password", "ab");
        assert_eq!(h.len(), 13);
        assert!(h.starts_with("ab"));
        assert!(h.bytes().all(|b| ALPHABET.contains(&b)));
    }

    #[test]
    fn deterministic_and_salt_sensitive() {
        assert_eq!(crypt("x", "aa"), crypt("x", "aa"));
        assert_ne!(crypt("x", "aa"), crypt("x", "ab"));
        assert_ne!(crypt("x", "aa"), crypt("y", "aa"));
    }

    #[test]
    fn verify_works() {
        let h = crypt("2345678", "HF");
        assert!(crypt_verify("2345678", &h));
        assert!(!crypt_verify("2345679", &h));
        assert!(!crypt_verify("2345678", "x"));
    }

    #[test]
    fn weird_salts_normalized() {
        let h = crypt("w", "!!");
        assert_eq!(h.len(), 13);
        assert!(h.bytes().all(|b| ALPHABET.contains(&b)));
        assert!(crypt_verify("w", &h));
    }

    #[test]
    fn mit_id_hash_uses_name_salt() {
        let h = hash_mit_id("123-45-6789", "Harmon", "Fowler");
        assert!(h.starts_with("HF"));
        assert_eq!(
            h,
            hash_mit_id("123456789", "Harmon", "Fowler"),
            "hyphens ignored"
        );
        assert_ne!(h, hash_mit_id("123456789", "Angela", "Barba"));
        // Only the last seven digits matter.
        assert_eq!(h, hash_mit_id("999-34-56789", "Harmon", "Fowler"));
    }

    #[test]
    fn empty_names_salted_with_dots() {
        let h = hash_mit_id("123456789", "", "");
        assert!(h.starts_with(".."));
    }
}
