//! A toy 64-bit block cipher and the error-propagating CBC (PCBC) mode.
//!
//! §5.10 of the paper: registration authenticators are "DES encrypted …
//! \[in\] the error propagating cypher-block-chaining mode of DES, as
//! described in the Kerberos document". PCBC's defining property is that a
//! corrupted ciphertext block garbles *every* subsequent plaintext block, so
//! a verifier checking a trailer detects any earlier tampering. We implement
//! PCBC faithfully over a small Feistel network.
//!
//! **Toy cipher** — see the crate-level warning. The PCBC mode, padding, and
//! verification logic are real; only the block primitive is simplified.

/// A cipher key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key(pub u64);

impl Key {
    /// Derives a key from arbitrary bytes (the `string_to_key` analogue).
    pub fn from_bytes(bytes: &[u8]) -> Key {
        // FNV-1a folded to 64 bits; deterministic and well-spread.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Key(h)
    }

    /// Derives a key from a password string.
    pub fn from_password(password: &str) -> Key {
        Key::from_bytes(password.as_bytes())
    }
}

const ROUNDS: usize = 16;

fn round_key(key: u64, round: usize) -> u32 {
    let mut x = key ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (x >> 32) as u32
}

fn feistel_f(half: u32, rk: u32) -> u32 {
    let mut x = half ^ rk;
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^ (x >> 16)
}

/// Encrypts one 64-bit block.
pub fn encrypt_block(key: Key, block: u64) -> u64 {
    let (mut l, mut r) = ((block >> 32) as u32, block as u32);
    for round in 0..ROUNDS {
        let next_l = r;
        let next_r = l ^ feistel_f(r, round_key(key.0, round));
        l = next_l;
        r = next_r;
    }
    ((r as u64) << 32) | l as u64
}

/// Decrypts one 64-bit block.
pub fn decrypt_block(key: Key, block: u64) -> u64 {
    let (mut r, mut l) = ((block >> 32) as u32, block as u32);
    for round in (0..ROUNDS).rev() {
        let prev_r = l;
        let prev_l = r ^ feistel_f(l, round_key(key.0, round));
        r = prev_r;
        l = prev_l;
    }
    ((l as u64) << 32) | r as u64
}

const IV: u64 = 0x4d6f_6972_6121_3139; // "Moira!19"

fn pad(data: &[u8]) -> Vec<u8> {
    // Length-prefixed padding: 8-byte big-endian length, data, zero fill.
    let mut out = Vec::with_capacity(8 + data.len() + 8);
    out.extend_from_slice(&(data.len() as u64).to_be_bytes());
    out.extend_from_slice(data);
    while out.len() % 8 != 0 {
        out.push(0);
    }
    out
}

fn unpad(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 8 {
        return None;
    }
    let len = u64::from_be_bytes(data[..8].try_into().ok()?) as usize;
    if len > data.len() - 8 {
        return None;
    }
    let body = &data[8..8 + len];
    // The zero fill must actually be zero, or the message was tampered with.
    if data[8 + len..].iter().any(|&b| b != 0) {
        return None;
    }
    Some(body.to_vec())
}

/// Encrypts a byte string in error-propagating CBC mode.
///
/// `c_i = E(p_i ^ p_{i-1} ^ c_{i-1})` with `p_0 ^ c_0` seeded by a fixed IV.
pub fn pcbc_encrypt(key: Key, plaintext: &[u8]) -> Vec<u8> {
    let padded = pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let (mut prev_p, mut prev_c) = (IV, 0u64);
    for chunk in padded.chunks(8) {
        let p = u64::from_be_bytes(chunk.try_into().expect("padded to 8"));
        let c = encrypt_block(key, p ^ prev_p ^ prev_c);
        out.extend_from_slice(&c.to_be_bytes());
        prev_p = p;
        prev_c = c;
    }
    out
}

/// Decrypts an error-propagating-CBC byte string; `None` on any padding or
/// framing failure (which is how tampering manifests).
pub fn pcbc_decrypt(key: Key, ciphertext: &[u8]) -> Option<Vec<u8>> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(8) {
        return None;
    }
    let mut padded = Vec::with_capacity(ciphertext.len());
    let (mut prev_p, mut prev_c) = (IV, 0u64);
    for chunk in ciphertext.chunks(8) {
        let c = u64::from_be_bytes(chunk.try_into().expect("validated length"));
        let p = decrypt_block(key, c) ^ prev_p ^ prev_c;
        padded.extend_from_slice(&p.to_be_bytes());
        prev_p = p;
        prev_c = c;
    }
    unpad(&padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let k = Key::from_password("hunter2");
        for block in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(decrypt_block(k, encrypt_block(k, block)), block);
        }
    }

    #[test]
    fn block_diffusion() {
        let k = Key::from_password("k");
        let a = encrypt_block(k, 0);
        let b = encrypt_block(k, 1);
        assert_ne!(a ^ b, 1, "single-bit input change should diffuse");
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn pcbc_round_trip_various_lengths() {
        let k = Key::from_password("secret");
        for len in [0usize, 1, 7, 8, 9, 63, 64, 200] {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = pcbc_encrypt(k, &msg);
            assert_eq!(ct.len() % 8, 0);
            assert_eq!(pcbc_decrypt(k, &ct).as_deref(), Some(&msg[..]), "len={len}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let ct = pcbc_encrypt(Key::from_password("right"), b"123456789 message");
        assert_eq!(pcbc_decrypt(Key::from_password("wrong"), &ct), None);
    }

    #[test]
    fn tampering_any_block_detected() {
        let k = Key::from_password("key");
        let msg = b"the quick brown fox jumps over the lazy dog, twice over";
        let ct = pcbc_encrypt(k, msg);
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 0x40;
            assert_ne!(pcbc_decrypt(k, &bad).as_deref(), Some(&msg[..]), "byte {i}");
        }
    }

    #[test]
    fn truncation_detected() {
        let k = Key::from_password("key");
        let ct = pcbc_encrypt(k, b"hello world, hello world");
        assert_eq!(pcbc_decrypt(k, &ct[..ct.len() - 8]), None);
        assert_eq!(pcbc_decrypt(k, &ct[..3]), None);
        assert_eq!(pcbc_decrypt(k, &[]), None);
    }

    #[test]
    fn key_derivation_is_stable_and_spread() {
        assert_eq!(Key::from_password("a"), Key::from_password("a"));
        assert_ne!(Key::from_password("a"), Key::from_password("b"));
        assert_ne!(Key::from_bytes(b"ab"), Key::from_bytes(b"ba"));
    }
}
