//! Property-based tests for the Kerberos substrate: cipher round trips,
//! universal tamper detection, and crypt() format invariants.

use moira_krb::cipher::{decrypt_block, encrypt_block, pcbc_decrypt, pcbc_encrypt, Key};
use moira_krb::crypt::{crypt, crypt_verify};
use proptest::prelude::*;

proptest! {
    #[test]
    fn block_cipher_is_a_permutation(key in any::<u64>(), block in any::<u64>()) {
        let k = Key(key);
        prop_assert_eq!(decrypt_block(k, encrypt_block(k, block)), block);
        prop_assert_eq!(encrypt_block(k, decrypt_block(k, block)), block);
    }

    #[test]
    fn pcbc_round_trips(key in ".{0,24}", payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let k = Key::from_password(&key);
        let ct = pcbc_encrypt(k, &payload);
        prop_assert_eq!(ct.len() % 8, 0);
        prop_assert_eq!(pcbc_decrypt(k, &ct), Some(payload));
    }

    #[test]
    fn pcbc_rejects_wrong_key(
        key in "[a-m]{1,12}",
        other in "[n-z]{1,12}",
        payload in prop::collection::vec(any::<u8>(), 1..128),
    ) {
        let ct = pcbc_encrypt(Key::from_password(&key), &payload);
        prop_assert_ne!(pcbc_decrypt(Key::from_password(&other), &ct), Some(payload));
    }

    #[test]
    fn pcbc_detects_single_byte_tampering(
        key in ".{1,12}",
        payload in prop::collection::vec(any::<u8>(), 1..96),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let k = Key::from_password(&key);
        let mut ct = pcbc_encrypt(k, &payload);
        let i = index.index(ct.len());
        ct[i] ^= flip;
        prop_assert_ne!(pcbc_decrypt(k, &ct), Some(payload));
    }

    #[test]
    fn crypt_format_invariants(word in ".{0,24}", salt in "[a-zA-Z0-9./]{2}") {
        let h = crypt(&word, &salt);
        prop_assert_eq!(h.len(), 13);
        prop_assert!(h.starts_with(&salt));
        prop_assert!(h.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'/'));
        prop_assert!(crypt_verify(&word, &h));
    }

    #[test]
    fn crypt_is_word_sensitive(a in "[a-m]{1,10}", b in "[n-z]{1,10}") {
        prop_assert_ne!(crypt(&a, "xy"), crypt(&b, "xy"));
    }
}
