//! Property-based tests: the engine against a naive model, and the backup
//! escaping against arbitrary content.

use moira_common::VClock;
use moira_db::backup::{escape_field, unescape_field};
use moira_db::journal::{Journal, JournalEntry};
use moira_db::schema::{ColumnDef, TableSchema};
use moira_db::{Database, Pred, Table, Value};
use proptest::prelude::*;

fn table() -> Table {
    Table::new(TableSchema::new(
        "t",
        vec![
            ColumnDef::str("name").unique(),
            ColumnDef::int("num").indexed(),
            ColumnDef::boolean("flag"),
        ],
    ))
}

#[derive(Debug, Clone)]
enum Op {
    Append(String, i64, bool),
    UpdateNum(String, i64),
    Delete(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ("[a-d]{1,2}", any::<i64>(), any::<bool>()).prop_map(|(n, i, b)| Op::Append(n, i, b)),
        ("[a-d]{1,2}", any::<i64>()).prop_map(|(n, i)| Op::UpdateNum(n, i)),
        "[a-d]{1,2}".prop_map(Op::Delete),
    ]
}

proptest! {
    /// The table agrees with a Vec-of-rows model under arbitrary mutation,
    /// and its indexes agree with full scans.
    #[test]
    fn table_matches_model(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut t = table();
        let mut model: Vec<(String, i64, bool)> = Vec::new();
        let mut now = 0i64;
        for op in ops {
            now += 1;
            match op {
                Op::Append(name, num, flag) => {
                    let expect_ok = !model.iter().any(|(n, _, _)| n == &name);
                    let result = t.append(
                        vec![name.clone().into(), num.into(), flag.into()],
                        now,
                    );
                    prop_assert_eq!(result.is_ok(), expect_ok);
                    if expect_ok {
                        model.push((name, num, flag));
                    }
                }
                Op::UpdateNum(name, num) => {
                    if let Some(id) = t.select_one(&Pred::Eq("name", name.clone().into())) {
                        t.update(id, &[("num", num.into())], now).unwrap();
                        model.iter_mut().find(|(n, _, _)| n == &name).unwrap().1 = num;
                    }
                }
                Op::Delete(name) => {
                    let gone = t.delete_where(&Pred::Eq("name", name.clone().into()), now);
                    let before = model.len();
                    model.retain(|(n, _, _)| n != &name);
                    prop_assert_eq!(gone, before - model.len());
                }
            }
            // Full-state comparison.
            prop_assert_eq!(t.len(), model.len());
            let mut actual: Vec<(String, i64, bool)> = t
                .iter()
                .map(|(_, row)| (row[0].as_str().to_owned(), row[1].as_int(), row[2].as_bool()))
                .collect();
            actual.sort();
            let mut expected = model.clone();
            expected.sort();
            prop_assert_eq!(actual, expected);
            // Indexed lookups agree with scans for a probe value.
            for probe in [-1i64, 0, 1] {
                let via_index = t.select(&Pred::Eq("num", probe.into())).len();
                let via_scan =
                    model.iter().filter(|(_, n, _)| *n == probe).count();
                prop_assert_eq!(via_index, via_scan);
            }
        }
    }

    #[test]
    fn escape_round_trips(a in ".{0,64}", b in ".{0,64}") {
        let ea = escape_field(&a);
        let eb = escape_field(&b);
        // The escaped form never contains newlines, and every colon is
        // escaped — so joining two fields with ':' is unambiguous.
        prop_assert!(!ea.contains('\n'));
        prop_assert_eq!(unescape_field(&ea).unwrap(), a.clone());
        let line = format!("{ea}:{eb}");
        // Split on unescaped colons the way restore does.
        let bytes = line.as_bytes();
        let mut fields = Vec::new();
        let (mut start, mut i) = (0usize, 0usize);
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b':' => {
                    fields.push(&line[start..i]);
                    start = i + 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        fields.push(&line[start..]);
        prop_assert_eq!(fields.len(), 2);
        prop_assert_eq!(unescape_field(fields[0]).unwrap(), a);
        prop_assert_eq!(unescape_field(fields[1]).unwrap(), b);
    }

    #[test]
    fn journal_round_trips(
        time in any::<i64>(),
        who in ".{0,16}",
        query in "[a-z_]{1,24}",
        args in prop::collection::vec(".{0,16}", 0..6),
    ) {
        let entry = JournalEntry { time, who, with: "prop".into(), query, args };
        let mut j = Journal::new();
        j.log(entry.clone());
        let back = Journal::from_text(&j.to_text()).unwrap();
        // Zero-arg entries gain one empty arg through the text form (the
        // trailing field); content is otherwise identical.
        let e = &back.entries()[0];
        prop_assert_eq!(e.time, entry.time);
        prop_assert_eq!(&e.who, &entry.who);
        prop_assert_eq!(&e.query, &entry.query);
        if !entry.args.is_empty() {
            prop_assert_eq!(&e.args, &entry.args);
        }
    }

    #[test]
    fn backup_restore_round_trips(rows in prop::collection::vec(
        ("[a-z:\\\\]{1,8}", any::<i64>(), any::<bool>()), 0..40)) {
        let mut db = Database::new(VClock::new());
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::str("name"), ColumnDef::int("num"), ColumnDef::boolean("flag")],
        ));
        for (name, num, flag) in &rows {
            db.append("t", vec![name.as_str().into(), (*num).into(), (*flag).into()]).unwrap();
        }
        let backup = moira_db::backup::mrbackup(&db);
        let mut fresh = Database::new(VClock::new());
        fresh.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::str("name"), ColumnDef::int("num"), ColumnDef::boolean("flag")],
        ));
        moira_db::backup::mrrestore(&mut fresh, &backup).unwrap();
        let original: Vec<Vec<Value>> = db.table("t").iter().map(|(_, r)| r.to_vec()).collect();
        let restored: Vec<Vec<Value>> = fresh.table("t").iter().map(|(_, r)| r.to_vec()).collect();
        prop_assert_eq!(original, restored);
    }
}

mod wal_props {
    use moira_db::journal::JournalEntry;
    use moira_db::wal::{encode_frame, scan_frames, MAX_FRAME_LEN};
    use proptest::prelude::*;

    /// Adversarial journal entries: arbitrary unicode in every field,
    /// including the separators the wire form escapes.
    fn entry_strategy() -> impl Strategy<Value = JournalEntry> {
        (
            any::<i64>(),
            ".{0,24}",
            ".{0,24}",
            "[a-z_]{1,24}",
            prop::collection::vec(".{0,24}", 1..6),
        )
            .prop_map(|(time, who, with, query, args)| JournalEntry {
                time,
                who,
                with,
                query,
                args,
            })
    }

    proptest! {
        /// Frames round-trip through the scanner, byte for byte.
        #[test]
        fn frames_round_trip(entries in prop::collection::vec((any::<u64>(), entry_strategy()), 0..12)) {
            let mut log = Vec::new();
            for (seq, entry) in &entries {
                log.extend_from_slice(&encode_frame(*seq, entry));
            }
            let (frames, scan) = scan_frames(&log);
            prop_assert_eq!(scan.recovered_frames as usize, entries.len());
            prop_assert_eq!(scan.torn_tail_truncations, 0);
            prop_assert_eq!(scan.clean_len, log.len());
            prop_assert_eq!(frames.len(), entries.len());
            for ((seq, entry), (got_seq, got)) in entries.iter().zip(&frames) {
                prop_assert_eq!(seq, got_seq);
                prop_assert_eq!(&entry.to_line(), &got.to_line());
            }
        }

        /// Scanning is total: any byte soup yields a clean prefix and never
        /// panics, and rescanning the clean prefix is a fixed point.
        #[test]
        fn scan_is_total_on_arbitrary_bytes(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
            let (frames, scan) = scan_frames(&garbage);
            prop_assert!(scan.clean_len <= garbage.len());
            let (again, rescan) = scan_frames(&garbage[..scan.clean_len]);
            prop_assert_eq!(again.len(), frames.len());
            prop_assert_eq!(rescan.torn_tail_truncations, 0);
            prop_assert_eq!(rescan.clean_len, scan.clean_len);
        }

        /// A good log with a corrupted or truncated tail recovers exactly
        /// the frames before the damage.
        #[test]
        fn tail_damage_never_loses_the_prefix(
            entries in prop::collection::vec((any::<u64>(), entry_strategy()), 1..8),
            cut_back in 0usize..64,
            flip in any::<u8>(),
        ) {
            let mut log = Vec::new();
            let mut frame_ends = Vec::new();
            for (seq, entry) in &entries {
                log.extend_from_slice(&encode_frame(*seq, entry));
                frame_ends.push(log.len());
            }
            // Torn write: drop bytes off the tail.
            let cut = log.len() - cut_back.min(log.len());
            let mut torn = log[..cut].to_vec();
            // And flip a bit somewhere in what remains of the last frame.
            if let Some(&start) = frame_ends.iter().rev().find(|&&e| e <= cut).or(Some(&0)) {
                if start < torn.len() {
                    let idx = start + (flip as usize) % (torn.len() - start);
                    torn[idx] ^= 1 << (flip % 8);
                }
            }
            let (frames, scan) = scan_frames(&torn);
            let intact = frame_ends.iter().filter(|&&e| e <= scan.clean_len).count();
            // Every frame wholly inside the clean prefix is recovered with
            // its original payload.
            prop_assert!(frames.len() >= intact);
            for (i, (seq, got)) in frames.iter().enumerate().take(intact) {
                prop_assert_eq!(*seq, entries[i].0);
                prop_assert_eq!(got.to_line(), entries[i].1.to_line());
            }
        }

        /// Length-prefix sanity: a frame header can claim any length, but
        /// the scanner never reads past the buffer or accepts an oversized
        /// claim.
        #[test]
        fn oversized_length_claims_are_rejected(claim in MAX_FRAME_LEN + 1..u32::MAX, pad in 0usize..32) {
            let mut log = Vec::new();
            log.extend_from_slice(&claim.to_le_bytes());
            log.extend_from_slice(&0u32.to_le_bytes());
            log.extend(std::iter::repeat_n(0xAA, pad));
            let (frames, scan) = scan_frames(&log);
            prop_assert!(frames.is_empty());
            prop_assert_eq!(scan.clean_len, 0);
            prop_assert_eq!(scan.torn_tail_truncations, 1);
        }
    }
}

mod plan_props {
    use moira_db::schema::{ColumnDef, TableSchema};
    use moira_db::{Pred, Table, Value};
    use proptest::prelude::*;

    /// Deterministic splitmix-style mixer: the proptest shim has no
    /// recursive strategies, so nested predicate shapes derive from
    /// arbitrary `u64` seeds instead.
    fn mix(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mixed-case pool with deliberate case-fold collisions ("a" vs "A",
    /// "aB" vs "Ab") so the folded index and `EqCi`/`LikeCi` disagree
    /// with the case-sensitive forms whenever the planner gets it wrong.
    const NAMES: &[&str] = &["a", "A", "b", "B", "ab", "aB", "Ab", "BA"];

    fn rand_name(s: &mut u64) -> &'static str {
        NAMES[(mix(s) as usize) % NAMES.len()]
    }

    fn rand_pattern(s: &mut u64) -> String {
        let base = rand_name(s);
        match mix(s) % 4 {
            0 => format!("{base}*"),
            1 => format!("{base}?"),
            2 => format!("*{base}"),
            _ => base.to_owned(),
        }
    }

    fn rand_pred(s: &mut u64, depth: u32) -> Pred {
        let n = if depth == 0 { mix(s) % 7 } else { mix(s) % 10 };
        match n {
            0 => Pred::Eq("name", Value::from(rand_name(s))),
            1 => Pred::Eq("num", (((mix(s) % 5) as i64) - 2).into()),
            2 => Pred::Eq("flag", mix(s).is_multiple_of(2).into()),
            3 => Pred::EqCi("name", rand_name(s).to_owned()),
            4 => Pred::Like("name", rand_pattern(s)),
            5 => Pred::LikeCi("name", rand_pattern(s)),
            6 => Pred::True,
            7 => Pred::And(vec![rand_pred(s, depth - 1), rand_pred(s, depth - 1)]),
            8 => Pred::Or(vec![rand_pred(s, depth - 1), rand_pred(s, depth - 1)]),
            _ => Pred::Not(Box::new(rand_pred(s, depth - 1))),
        }
    }

    /// One of four index layouts: every combination of name/num carrying
    /// a secondary index. Non-unique indexes, so buckets grow multi-entry.
    fn build_table(indexed: u8) -> Table {
        let name = if indexed & 1 != 0 {
            ColumnDef::str("name").indexed()
        } else {
            ColumnDef::str("name")
        };
        let num = if indexed & 2 != 0 {
            ColumnDef::int("num").indexed()
        } else {
            ColumnDef::int("num")
        };
        Table::new(TableSchema::new(
            "t",
            vec![name, num, ColumnDef::boolean("flag")],
        ))
    }

    #[derive(Debug, Clone)]
    enum Churn {
        Append(u64, i64, bool),
        Update(u64, i64),
        Delete(u64),
    }

    fn churn() -> impl Strategy<Value = Churn> {
        prop_oneof![
            (any::<u64>(), -2i64..3, any::<bool>()).prop_map(|(s, n, f)| Churn::Append(s, n, f)),
            (any::<u64>(), -2i64..3).prop_map(|(s, n)| Churn::Update(s, n)),
            any::<u64>().prop_map(Churn::Delete),
        ]
    }

    /// `select(pred)` must agree with the forced naive scan, however the
    /// planner chose to serve it — and so must `count` and `select_one`.
    fn assert_oracle(t: &Table, pred: &Pred) -> Result<(), TestCaseError> {
        let mut via_plan = t.select(pred);
        let mut via_scan = t.select_scan(pred);
        via_plan.sort_unstable();
        via_scan.sort_unstable();
        prop_assert_eq!(
            &via_plan,
            &via_scan,
            "plan {} diverged from scan for {:?}",
            t.plan(pred).describe(),
            pred
        );
        prop_assert_eq!(t.count(pred), via_scan.len());
        prop_assert_eq!(t.select_one(pred), via_scan.first().copied());
        Ok(())
    }

    proptest! {
        /// The soundness oracle the planner docs promise: a plan only
        /// narrows the candidate set, so whatever access path `choose`
        /// picks — point, folded point, intersect, range, or scan — the
        /// results equal a forced slab scan. Runs across every index
        /// layout, under slot-reusing mutation churn, over point, folded,
        /// wildcard, and boolean-combined predicates.
        #[test]
        fn any_plan_equals_forced_scan(
            indexed in 0u8..4,
            pred_seeds in prop::collection::vec(any::<u64>(), 1..16),
            ops in prop::collection::vec(churn(), 0..60),
        ) {
            let mut t = build_table(indexed);
            let preds: Vec<Pred> = pred_seeds
                .iter()
                .map(|&s| rand_pred(&mut { s }, 2))
                .collect();
            let mut now = 0i64;
            for (i, op) in ops.iter().enumerate() {
                now += 1;
                match op {
                    Churn::Append(s, num, flag) => {
                        let name = rand_name(&mut { *s });
                        t.append(vec![name.into(), (*num).into(), (*flag).into()], now)
                            .unwrap();
                    }
                    Churn::Update(s, num) => {
                        let name = rand_name(&mut { *s });
                        if let Some(id) = t.select_one(&Pred::Eq("name", name.into())) {
                            t.update(id, &[("num", (*num).into())], now).unwrap();
                        }
                    }
                    Churn::Delete(s) => {
                        let name = rand_name(&mut { *s });
                        t.delete_where(&Pred::Eq("name", name.into()), now);
                    }
                }
                // Mid-churn probe: catches index corruption that a final
                // sweep would miss once later ops overwrite the slot.
                assert_oracle(&t, &preds[i % preds.len()])?;
            }
            for pred in &preds {
                assert_oracle(&t, pred)?;
                if indexed == 0 {
                    prop_assert_eq!(t.plan(pred).kind(), "scan");
                }
            }
        }
    }
}

mod intern_props {
    use std::collections::HashMap;
    use std::sync::Arc;

    use moira_common::VClock;
    use moira_db::journal::{Journal, JournalEntry};
    use moira_db::schema::{ColumnDef, TableSchema};
    use moira_db::snapshot::{decode_snapshot, encode_snapshot};
    use moira_db::wal::{encode_frame, scan_frames};
    use moira_db::{Database, Value};
    use proptest::prelude::*;

    fn schema() -> Vec<TableSchema> {
        vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::str("name").indexed(),
                ColumnDef::str("val"),
                ColumnDef::int("n"),
            ],
        )]
    }

    proptest! {
        /// Interning is invisible to durability. Rows are built from a
        /// small pool of adversarial strings (unicode, colons,
        /// backslashes), so the same `Arc<str>` backs many cells; the
        /// snapshot of that database decodes, applies onto a recovered
        /// database, and re-encodes byte-identically, the rebuilt rows
        /// share one allocation per distinct string, and WAL frames
        /// carrying the same pool round-trip through the frame scanner.
        #[test]
        fn interned_snapshot_and_wal_round_trip_byte_identically(
            pool in prop::collection::vec(".{1,12}", 1..6),
            picks in prop::collection::vec((any::<u64>(), any::<u64>(), any::<i64>()), 1..40),
        ) {
            let mut db = Database::new(VClock::new());
            for s in schema() {
                db.create_table(s);
            }
            for (a, b, n) in &picks {
                let name = &pool[(*a as usize) % pool.len()];
                let val = &pool[(*b as usize) % pool.len()];
                db.append("t", vec![name.as_str().into(), val.as_str().into(), (*n).into()])
                    .unwrap();
            }
            let mut journal = Journal::new();
            journal.log(JournalEntry {
                time: db.now(),
                who: "ops:root".into(),
                with: "prop".into(),
                query: "add_thing".into(),
                args: vec!["co:lon".into(), "b\\ck".into()],
            });

            // Snapshot: decode + apply + re-encode is a byte-level fixed
            // point even though every string cell went through the
            // interner on both sides.
            let text = encode_snapshot(&db, &journal, 5);
            let image = decode_snapshot(&text).unwrap();
            let mut back = Database::recovered(VClock::starting_at(image.now), image.epoch);
            for s in schema() {
                back.create_table(s);
            }
            image.apply(&mut back).unwrap();
            prop_assert_eq!(encode_snapshot(&back, &journal, 5), text);

            // Pointer-level dedupe: in the rebuilt table, equal strings
            // share one allocation.
            let mut seen: HashMap<String, *const u8> = HashMap::new();
            for (_, row) in back.table("t").iter() {
                for v in row.iter() {
                    if let Value::Str(s) = v {
                        let ptr = Arc::as_ptr(s) as *const u8;
                        match seen.get(s.as_ref()) {
                            Some(&p) => prop_assert_eq!(
                                p, ptr,
                                "two cells holding {:?} have separate allocations",
                                s
                            ),
                            None => {
                                seen.insert(s.as_ref().to_owned(), ptr);
                            }
                        }
                    }
                }
            }

            // WAL torture with the same pool: frames whose entries carry
            // interned-origin strings round-trip through the scanner.
            let entries: Vec<JournalEntry> = pool
                .iter()
                .enumerate()
                .map(|(i, s)| JournalEntry {
                    time: i as i64,
                    who: s.clone(),
                    with: "prop".into(),
                    query: "q".into(),
                    args: vec![s.clone(), s.clone()],
                })
                .collect();
            let mut log = Vec::new();
            for (i, e) in entries.iter().enumerate() {
                log.extend_from_slice(&encode_frame(i as u64, e));
            }
            let (frames, scan) = scan_frames(&log);
            prop_assert_eq!(scan.torn_tail_truncations, 0);
            prop_assert_eq!(frames.len(), entries.len());
            for (e, (_, got)) in entries.iter().zip(&frames) {
                prop_assert_eq!(e.to_line(), got.to_line());
            }
        }
    }
}

mod lock_props {
    use moira_db::lock::{LockManager, LockMode};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum LockOp {
        Acquire(u8, u8, bool),
        Release(u8, u8),
        ReleaseAll(u8),
    }

    fn lock_op() -> impl Strategy<Value = LockOp> {
        prop_oneof![
            (0u8..4, 0u8..3, any::<bool>()).prop_map(|(o, r, x)| LockOp::Acquire(o, r, x)),
            (0u8..4, 0u8..3).prop_map(|(o, r)| LockOp::Release(o, r)),
            (0u8..4).prop_map(LockOp::ReleaseAll),
        ]
    }

    proptest! {
        /// Under arbitrary acquire/release sequences: an exclusive holder
        /// is always alone, and the manager never deadlocks itself (every
        /// call returns).
        #[test]
        fn exclusion_invariant(ops in prop::collection::vec(lock_op(), 0..200)) {
            let mut lm = LockManager::new();
            // The generated schedules have no ordering discipline — the
            // property under test is exclusion, so the order witness is
            // explicitly off regardless of MOIRA_LOCK_ORDER.
            lm.set_order_mode(moira_common::lockorder::OrderMode::Off);
            // Model: resource -> (exclusive holder, shared holders).
            let mut model: std::collections::HashMap<String, (Option<String>, std::collections::HashSet<String>)> =
                std::collections::HashMap::new();
            for op in ops {
                match op {
                    LockOp::Acquire(o, r, exclusive) => {
                        let owner = format!("o{o}");
                        let resource = format!("r{r}");
                        let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                        let got = lm.try_acquire(&owner, &resource, mode);
                        let entry = model.entry(resource.clone()).or_default();
                        if got {
                            if exclusive {
                                // Nobody else may hold it in any mode.
                                prop_assert!(
                                    entry.0.as_deref().is_none_or(|h| h == owner),
                                    "exclusive grant over exclusive holder"
                                );
                                prop_assert!(
                                    entry.1.iter().all(|h| *h == owner),
                                    "exclusive grant over shared holders"
                                );
                                entry.1.remove(&owner);
                                entry.0 = Some(owner);
                            } else {
                                prop_assert!(
                                    entry.0.as_deref().is_none_or(|h| h == owner),
                                    "shared grant against exclusive holder"
                                );
                                if entry.0.as_deref() != Some(owner.as_str()) {
                                    entry.1.insert(owner);
                                }
                            }
                        }
                    }
                    LockOp::Release(o, r) => {
                        let owner = format!("o{o}");
                        let resource = format!("r{r}");
                        lm.release(&owner, &resource);
                        if let Some(entry) = model.get_mut(&resource) {
                            if entry.0.as_deref() == Some(owner.as_str()) {
                                entry.0 = None;
                            }
                            entry.1.remove(&owner);
                        }
                    }
                    LockOp::ReleaseAll(o) => {
                        let owner = format!("o{o}");
                        lm.release_all(&owner);
                        for entry in model.values_mut() {
                            if entry.0.as_deref() == Some(owner.as_str()) {
                                entry.0 = None;
                            }
                            entry.1.remove(&owner);
                        }
                    }
                }
                // Cross-check `holds` against the model.
                for (resource, (excl, shared)) in &model {
                    for o in 0..4u8 {
                        let owner = format!("o{o}");
                        let expected = excl.as_deref() == Some(owner.as_str())
                            || shared.contains(&owner);
                        prop_assert_eq!(lm.holds(&owner, resource), expected);
                    }
                }
            }
        }
    }
}
