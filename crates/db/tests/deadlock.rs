//! Runtime complement of moira-lint's lock-discipline pass: two sessions
//! taking table locks in opposite order must terminate with exactly one
//! of them receiving `MrError::Deadlock` — never by hanging.

use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::Duration;

use moira_common::errors::MrError;
use moira_db::lock::{LockManager, LockMode};
use parking_lot::Mutex;

/// Deterministic shape first: session `a` holds `table:users` and waits on
/// `table:list`; session `b` holds `table:list` and closes the cycle, so
/// `b` is the victim. `a`'s own wait stays a plain `InUse`.
#[test]
fn opposite_order_table_locks_deadlock_detected() {
    let mut lm = LockManager::new();

    lm.acquire("session-a", "table:users", LockMode::Exclusive)
        .expect("a takes users first");
    lm.acquire("session-b", "table:list", LockMode::Exclusive)
        .expect("b takes list first");

    // a now wants b's table: busy, and a is registered as waiting.
    assert_eq!(
        lm.acquire("session-a", "table:list", LockMode::Exclusive),
        Err(MrError::InUse)
    );
    // b wanting a's table closes the wait-for cycle: detected, not hung.
    assert_eq!(
        lm.acquire("session-b", "table:users", LockMode::Exclusive),
        Err(MrError::Deadlock)
    );

    // The victim backs off; the survivor's retry goes through.
    lm.release_all("session-b");
    lm.acquire("session-a", "table:list", LockMode::Exclusive)
        .expect("survivor proceeds once the victim releases");
    assert!(lm.holds("session-a", "table:users"));
    assert!(lm.holds("session-a", "table:list"));
}

/// The same collision from two real threads, with a watchdog instead of a
/// trust-me comment: both sessions must finish inside the timeout, exactly
/// one as the deadlock victim, and the survivor must end up holding both
/// tables.
#[test]
fn concurrent_sessions_never_hang() {
    let lm = Arc::new(Mutex::new(LockManager::new()));
    let (done_tx, done_rx) = mpsc::channel();
    // Both sessions must hold their first table before either tries the
    // second, or one can win both locks outright and no cycle ever forms.
    let both_hold_first = Arc::new(Barrier::new(2));

    let spawn_session = |owner: &'static str, first: &'static str, second: &'static str| {
        let lm = Arc::clone(&lm);
        let done = done_tx.clone();
        let barrier = Arc::clone(&both_hold_first);
        thread::spawn(move || {
            lm.lock()
                .acquire(owner, first, LockMode::Exclusive)
                .expect("first table is uncontended");
            barrier.wait();
            let victim = loop {
                let got_second = lm.lock().acquire(owner, second, LockMode::Exclusive);
                match got_second {
                    Ok(()) => break false,
                    Err(MrError::Deadlock) => {
                        // The protocol the server follows: the victim drops
                        // everything so the other session can finish.
                        lm.lock().release_all(owner);
                        break true;
                    }
                    // Back off off-mutex: a bare yield can starve the
                    // other session of the manager mutex entirely.
                    Err(_) => thread::sleep(Duration::from_millis(1)),
                }
            };
            done.send((owner, victim)).unwrap();
        })
    };

    let a = spawn_session("session-a", "table:users", "table:list");
    let b = spawn_session("session-b", "table:list", "table:users");

    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let outcome = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("a session hung instead of getting the deadlock error");
        outcomes.push(outcome);
    }
    a.join().unwrap();
    b.join().unwrap();

    let victims: Vec<&str> = outcomes
        .iter()
        .filter(|(_, victim)| *victim)
        .map(|(owner, _)| *owner)
        .collect();
    assert_eq!(victims.len(), 1, "exactly one victim, got {outcomes:?}");

    let survivor = outcomes
        .iter()
        .find(|(_, victim)| !victim)
        .map(|(owner, _)| *owner)
        .unwrap();
    let lm = lm.lock();
    assert!(lm.holds(survivor, "table:users"));
    assert!(lm.holds(survivor, "table:list"));
}
