//! Named shared/exclusive locks with deadlock detection.
//!
//! The DCM locks services and server-hosts (§5.7.1): an exclusive lock on a
//! service while generating files, shared locks during host scans of unique
//! services (exclusive for replicated ones), and an exclusive per-host lock
//! during each update. The database layer can return `MR_DEADLOCK`
//! ("Database deadlock; try again later", §7.1); this lock manager is where
//! that comes from: acquisition conflicts register a wait-for edge, and a
//! cycle in the wait-for graph is reported as deadlock rather than ever
//! blocking.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use moira_common::errors::{MrError, MrResult};
use moira_common::lockorder::{order_mode, OrderMode};

/// Locking mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Multiple holders allowed.
    Shared,
    /// Single holder, excludes everyone else.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    exclusive: Option<String>,
    shared: HashSet<String>,
}

impl LockState {
    fn holders(&self) -> impl Iterator<Item = &String> {
        self.exclusive.iter().chain(self.shared.iter())
    }

    fn held_by(&self, owner: &str) -> bool {
        self.exclusive.as_deref() == Some(owner) || self.shared.contains(owner)
    }

    fn is_free_for(&self, owner: &str, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                self.exclusive.is_none() || self.exclusive.as_deref() == Some(owner)
            }
            LockMode::Exclusive => {
                let others_shared = self.shared.iter().any(|o| o != owner);
                let others_excl = self.exclusive.as_deref().is_some_and(|o| o != owner);
                !others_shared && !others_excl
            }
        }
    }
}

/// The lockdep-style runtime order witness. `record(a, b)` notes that `b`
/// was granted while `a` was held; if a path `b ⇒* a` already exists, the
/// two resources have been taken in both orders across the process
/// lifetime — a latent deadlock even when no single run interleaves them.
/// The wait-for detector above catches deadlocks that *happen*; this
/// catches orderings that merely *could* deadlock, on the first run that
/// exercises both sides.
#[derive(Debug)]
pub struct OrderGraph {
    mode: OrderMode,
    /// `held -> {granted while it was held}`. BTree so dumps are sorted
    /// and deterministic.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// First inversion observed (observe mode keeps it; strict panics).
    violation: Option<String>,
}

impl Default for OrderGraph {
    fn default() -> Self {
        OrderGraph {
            mode: order_mode(),
            edges: BTreeMap::new(),
            violation: None,
        }
    }
}

impl OrderGraph {
    fn record(&mut self, held: &str, granted: &str) {
        if held == granted {
            // Re-grant / upgrade of the same resource, not an ordering.
            return;
        }
        let new_edge = self
            .edges
            .entry(held.to_owned())
            .or_default()
            .insert(granted.to_owned());
        if !new_edge || self.violation.is_some() {
            return;
        }
        if self.path_exists(granted, held) {
            let msg = format!(
                "lock-order cycle: `{granted}` granted while `{held}` was held, but the \
                 recorded order already reaches `{held}` from `{granted}` — these resources \
                 have been taken in both orders\n  acquired-while-held edges:\n{}",
                self.dump()
            );
            if self.mode == OrderMode::Strict {
                panic!("{msg}");
            }
            self.violation = Some(msg);
        }
    }

    /// True when `edges` already contain a path `from ⇒* to`.
    fn path_exists(&self, from: &str, to: &str) -> bool {
        let mut frontier = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(cur) = frontier.pop() {
            if cur == to {
                return true;
            }
            let Some(nexts) = self.edges.get(cur) else {
                continue;
            };
            for n in nexts {
                if seen.insert(n) {
                    frontier.push(n);
                }
            }
        }
        false
    }

    fn dump(&self) -> String {
        self.edges
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |b| format!("    {a} -> {b}")))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<String, LockState>,
    /// `owner -> resource it is waiting for`.
    waits: HashMap<String, String>,
    /// `owner -> clock nanos of its first conflicted attempt`, so a later
    /// successful acquire can report how long the owner spent retrying.
    wait_since: HashMap<String, u64>,
    /// Instrumentation sink; `None` on unwired managers (tests, tools).
    obs: Option<moira_obs::Registry>,
    /// Runtime order witness (mode from `MOIRA_LOCK_ORDER`).
    order: OrderGraph,
}

impl LockManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a manager reporting wait times and abort counts to `obs`
    /// (`db.lock.wait_ns`, `db.lock.acquired` / `conflicts` / `deadlocks`).
    pub fn with_obs(obs: moira_obs::Registry) -> Self {
        LockManager {
            obs: Some(obs),
            ..Self::default()
        }
    }

    /// Attempts to acquire; returns `Ok(true)` on success, `Ok(false)` if
    /// the resource is busy (no wait is recorded).
    pub fn try_acquire(&mut self, owner: &str, resource: &str, mode: LockMode) -> bool {
        if let Some(state) = self.locks.get(resource) {
            if !state.is_free_for(owner, mode) {
                return false;
            }
        }
        // Order witness: only SUCCESSFUL grants order resources — a denied
        // attempt (the wait-for detector's territory) establishes nothing.
        if self.order.mode != OrderMode::Off {
            let held: Vec<String> = self
                .locks
                .iter()
                .filter(|(r, s)| r.as_str() != resource && s.held_by(owner))
                .map(|(r, _)| r.clone())
                .collect();
            for h in held {
                self.order.record(&h, resource);
            }
        }
        let state = self.locks.entry(resource.to_owned()).or_default();
        match mode {
            LockMode::Shared => {
                if state.exclusive.as_deref() != Some(owner) {
                    state.shared.insert(owner.to_owned());
                }
            }
            LockMode::Exclusive => {
                state.shared.remove(owner);
                state.exclusive = Some(owner.to_owned());
            }
        }
        true
    }

    /// Acquires with deadlock detection.
    ///
    /// On conflict the owner is recorded as waiting for the resource; if
    /// that wait would close a cycle in the wait-for graph the wait is
    /// cancelled and `MR_DEADLOCK` returned, otherwise `MR_IN_USE` is
    /// returned and the caller is expected to retry later (the DCM's "tagged
    /// for retry" behaviour).
    pub fn acquire(&mut self, owner: &str, resource: &str, mode: LockMode) -> MrResult<()> {
        if self.try_acquire(owner, resource, mode) {
            self.waits.remove(owner);
            if let Some(obs) = &self.obs {
                // Wait time is measured from the owner's first conflicted
                // attempt on this acquisition (0 for an uncontended grant).
                let waited = self
                    .wait_since
                    .remove(owner)
                    .map(|since| obs.now_nanos().saturating_sub(since))
                    .unwrap_or(0);
                obs.histogram("db.lock.wait_ns").record(waited);
                obs.counter("db.lock.acquired").inc();
            }
            return Ok(());
        }
        self.waits.insert(owner.to_owned(), resource.to_owned());
        if self.wait_cycle_from(owner) {
            self.waits.remove(owner);
            if let Some(obs) = &self.obs {
                self.wait_since.remove(owner);
                obs.counter("db.lock.deadlocks").inc();
            }
            return Err(MrError::Deadlock);
        }
        if let Some(obs) = &self.obs {
            let now = obs.now_nanos();
            self.wait_since.entry(owner.to_owned()).or_insert(now);
            obs.counter("db.lock.conflicts").inc();
        }
        Err(MrError::InUse)
    }

    fn wait_cycle_from(&self, start: &str) -> bool {
        // Follow owner -> awaited resource -> holders -> their awaited
        // resources; a return to `start` is a cycle.
        let mut frontier = vec![start.to_owned()];
        let mut seen = HashSet::new();
        while let Some(owner) = frontier.pop() {
            let Some(resource) = self.waits.get(&owner) else {
                continue;
            };
            let Some(state) = self.locks.get(resource) else {
                continue;
            };
            for holder in state.holders() {
                if holder == start {
                    return true;
                }
                if seen.insert(holder.clone()) {
                    frontier.push(holder.clone());
                }
            }
        }
        false
    }

    /// Releases one lock held by `owner`.
    pub fn release(&mut self, owner: &str, resource: &str) {
        if let Some(state) = self.locks.get_mut(resource) {
            if state.exclusive.as_deref() == Some(owner) {
                state.exclusive = None;
            }
            state.shared.remove(owner);
        }
        self.waits.remove(owner);
        self.wait_since.remove(owner);
    }

    /// Releases everything `owner` holds or waits for (crash cleanup).
    pub fn release_all(&mut self, owner: &str) {
        for state in self.locks.values_mut() {
            if state.exclusive.as_deref() == Some(owner) {
                state.exclusive = None;
            }
            state.shared.remove(owner);
        }
        self.waits.remove(owner);
        self.wait_since.remove(owner);
    }

    /// True if `owner` currently holds `resource` in any mode.
    pub fn holds(&self, owner: &str, resource: &str) -> bool {
        self.locks
            .get(resource)
            .is_some_and(|s| s.exclusive.as_deref() == Some(owner) || s.shared.contains(owner))
    }

    /// Overrides the witness mode for this manager (tests and tools; the
    /// process default comes from `MOIRA_LOCK_ORDER`).
    pub fn set_order_mode(&mut self, mode: OrderMode) {
        self.order.mode = mode;
    }

    /// Every acquired-while-held edge the witness has recorded, sorted.
    pub fn order_edges(&self) -> Vec<(String, String)> {
        self.order
            .edges
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    /// The first lock-order inversion observed, if any. Strict mode panics
    /// at the violation site instead of recording it here.
    pub fn order_violation(&self) -> Option<&str> {
        self.order.violation.as_deref()
    }

    /// True when nothing is held and nobody is waiting — the clean state
    /// the adversarial connection tests assert after slow-loris, stalled,
    /// or mid-frame-disconnect clients are torn down.
    pub fn is_idle(&self) -> bool {
        self.waits.is_empty()
            && self
                .locks
                .values()
                .all(|s| s.exclusive.is_none() && s.shared.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert!(lm.try_acquire("a", "svc:HESIOD", LockMode::Shared));
        assert!(lm.try_acquire("b", "svc:HESIOD", LockMode::Shared));
        assert!(!lm.try_acquire("c", "svc:HESIOD", LockMode::Exclusive));
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new();
        assert!(lm.try_acquire("a", "r", LockMode::Exclusive));
        assert!(!lm.try_acquire("b", "r", LockMode::Shared));
        assert!(!lm.try_acquire("b", "r", LockMode::Exclusive));
        lm.release("a", "r");
        assert!(lm.try_acquire("b", "r", LockMode::Shared));
    }

    #[test]
    fn reentrant_upgrade_for_sole_holder() {
        let mut lm = LockManager::new();
        assert!(lm.try_acquire("a", "r", LockMode::Shared));
        assert!(lm.try_acquire("a", "r", LockMode::Exclusive));
        assert!(lm.holds("a", "r"));
        assert!(!lm.try_acquire("b", "r", LockMode::Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", "r", LockMode::Shared);
        lm.try_acquire("b", "r", LockMode::Shared);
        assert!(!lm.try_acquire("a", "r", LockMode::Exclusive));
    }

    #[test]
    fn busy_is_in_use() {
        let mut lm = LockManager::new();
        lm.acquire("a", "r", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("b", "r", LockMode::Exclusive),
            Err(MrError::InUse)
        );
    }

    #[test]
    fn two_party_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("a", "r2", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        // b waiting on r1 (held by a, which waits on r2 held by b) closes
        // the cycle.
        assert_eq!(
            lm.acquire("b", "r1", LockMode::Exclusive),
            Err(MrError::Deadlock)
        );
    }

    #[test]
    fn three_party_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        lm.acquire("c", "r3", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("a", "r2", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        assert_eq!(
            lm.acquire("b", "r3", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        assert_eq!(
            lm.acquire("c", "r1", LockMode::Exclusive),
            Err(MrError::Deadlock)
        );
    }

    #[test]
    fn successful_acquire_clears_wait() {
        let mut lm = LockManager::new();
        lm.acquire("a", "r", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("b", "r", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        lm.release("a", "r");
        lm.acquire("b", "r", LockMode::Exclusive).unwrap();
        assert!(lm.holds("b", "r"));
    }

    #[test]
    fn obs_reports_waits_and_deadlocks() {
        let obs = moira_obs::Registry::new();
        let clock = moira_common::clock::VClock::new();
        obs.set_virtual_clock(clock.clone());
        let mut lm = LockManager::with_obs(obs.clone());
        lm.acquire("a", "r", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("b", "r", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        clock.advance(3);
        lm.release("a", "r");
        lm.acquire("b", "r", LockMode::Exclusive).unwrap();
        // Opposite-order acquisition closes a deadlock cycle.
        lm.acquire("a", "r2", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.acquire("b", "r2", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        assert_eq!(
            lm.acquire("a", "r", LockMode::Exclusive),
            Err(MrError::Deadlock)
        );
        let snap = obs.snapshot();
        assert_eq!(snap.counter("db.lock.acquired"), 3);
        assert_eq!(snap.counter("db.lock.conflicts"), 2);
        assert_eq!(snap.counter("db.lock.deadlocks"), 1);
        let waits = snap.histogram("db.lock.wait_ns").expect("wait histogram");
        assert_eq!(waits.count, 3);
        // b's grant waited the 3 virtual seconds between its conflicted
        // attempt and the release.
        assert_eq!(waits.max, 3_000_000_000);
    }

    #[test]
    fn order_witness_records_acquired_while_held_edges() {
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Observe);
        lm.acquire("dcm", "svc:NFS", LockMode::Exclusive).unwrap();
        lm.acquire("dcm", "host:CHARON", LockMode::Exclusive)
            .unwrap();
        assert_eq!(
            lm.order_edges(),
            vec![("svc:NFS".to_owned(), "host:CHARON".to_owned())]
        );
        assert!(lm.order_violation().is_none());
    }

    #[test]
    fn order_witness_detects_inversion_across_runs() {
        // Neither run deadlocks by itself — the two owners never overlap —
        // but together they take r1 and r2 in both orders. The wait-for
        // detector can never see this; the order witness must.
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Observe);
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("a", "r2", LockMode::Exclusive).unwrap();
        lm.release_all("a");
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r1", LockMode::Exclusive).unwrap();
        let v = lm.order_violation().expect("inversion recorded");
        assert!(v.contains("r1") && v.contains("r2"), "{v}");
        assert!(v.contains("r1 -> r2"), "edge dump missing: {v}");
    }

    #[test]
    fn order_witness_detects_transitive_inversion() {
        // r1 -> r2 and r2 -> r3 are each fine; r3 -> r1 closes the loop
        // only through the transitive path.
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Observe);
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("a", "r2", LockMode::Shared).unwrap();
        lm.release_all("a");
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r3", LockMode::Exclusive).unwrap();
        lm.release_all("b");
        lm.acquire("c", "r3", LockMode::Exclusive).unwrap();
        assert!(lm.order_violation().is_none());
        lm.acquire("c", "r1", LockMode::Exclusive).unwrap();
        assert!(lm.order_violation().is_some());
    }

    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn strict_mode_panics_on_seeded_inversion() {
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Strict);
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("a", "r2", LockMode::Exclusive).unwrap();
        lm.release_all("a");
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r1", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Off);
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("a", "r2", LockMode::Exclusive).unwrap();
        assert!(lm.order_edges().is_empty());
    }

    #[test]
    fn failed_acquire_establishes_no_order() {
        let mut lm = LockManager::new();
        lm.set_order_mode(OrderMode::Observe);
        lm.acquire("a", "r1", LockMode::Exclusive).unwrap();
        lm.acquire("b", "r2", LockMode::Exclusive).unwrap();
        // Denied: r1 is a's. The witness must not record r2 -> r1.
        assert_eq!(
            lm.acquire("b", "r1", LockMode::Exclusive),
            Err(MrError::InUse)
        );
        assert_eq!(
            lm.order_edges(),
            Vec::<(String, String)>::new(),
            "denied grant must not order resources"
        );
    }

    #[test]
    fn release_all_cleans_up() {
        let mut lm = LockManager::new();
        lm.acquire("dcm", "svc:NFS", LockMode::Exclusive).unwrap();
        lm.acquire("dcm", "host:CHARON", LockMode::Exclusive)
            .unwrap();
        lm.release_all("dcm");
        assert!(!lm.holds("dcm", "svc:NFS"));
        assert!(lm.try_acquire("other", "host:CHARON", LockMode::Exclusive));
    }
}
