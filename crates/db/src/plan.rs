//! The predicate planner.
//!
//! Given a [`Pred`] and the index statistics of one table, the planner picks
//! an access path: a single index bucket, a linear merge of two buckets, a
//! prefix walk over the ordered index, or the full-scan fallback. The chosen
//! [`Plan`] only narrows the *candidate* set — execution re-evaluates the
//! whole predicate against every candidate row, so a plan can never change
//! results, only cost (the property the proptest oracle pins down).
//!
//! Costs are counted in abstract row-work units: evaluating the predicate
//! against a fetched candidate costs [`EVAL_COST`]; stepping a sorted-bucket
//! merge costs 1. Cardinalities come live from the index buckets themselves
//! (exact, not sampled — a `BTreeMap` bucket knows its length), and the scan
//! baseline from the table's slab length, so the model needs no statistics
//! refresh step. Prefix ranges are costed by a bounded walk capped at the
//! scan cost: pathological prefixes ("a*" over a million logins) price
//! themselves out without the planner itself going linear.

use crate::query::Pred;
use crate::value::Value;

/// Work units to fetch a candidate row and evaluate the predicate on it,
/// relative to one sorted-merge step.
pub(crate) const EVAL_COST: usize = 4;

/// Bucket size above which a second conjunct's bucket is worth merging.
pub(crate) const INTERSECT_MIN_BUCKET: usize = 16;

/// An access path chosen for one predicate against one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// One exact-value bucket of a secondary index. `ci` selects the
    /// case-folded index; the value then holds the folded key.
    IndexPoint {
        /// Indexed column.
        col: &'static str,
        /// Bucket key (folded lowercase when `ci`).
        value: Value,
        /// Use the case-folded index.
        ci: bool,
    },
    /// Linear merge of two sorted exact-value buckets; candidates are the
    /// ids present in both.
    IndexIntersect {
        /// The two `(column, key)` buckets, smallest first.
        terms: Vec<(&'static str, Value)>,
    },
    /// All buckets whose string key starts with a literal prefix — the
    /// `name_match("ab*")` shape — walked in key order over the `BTreeMap`
    /// index. `ci` walks the case-folded index with a folded prefix.
    IndexRange {
        /// Indexed string column.
        col: &'static str,
        /// Literal prefix (folded lowercase when `ci`).
        prefix: String,
        /// Use the case-folded index.
        ci: bool,
    },
    /// Full slab scan.
    Scan,
}

impl Plan {
    /// The obs counter suffix and EXPLAIN head for this plan shape.
    pub fn kind(&self) -> &'static str {
        match self {
            Plan::IndexPoint { .. } => "point",
            Plan::IndexIntersect { .. } => "intersect",
            Plan::IndexRange { .. } => "range",
            Plan::Scan => "scan",
        }
    }

    /// EXPLAIN-style one-line description, e.g.
    /// `IndexPoint(login="kit")`, `IndexIntersect(list_id=7 & member_id=44)`,
    /// `IndexRange(name ci "w*")`, `Scan`.
    pub fn describe(&self) -> String {
        match self {
            Plan::IndexPoint { col, value, ci } => {
                let fold = if *ci { " ci" } else { "" };
                format!("IndexPoint({col}{fold}={value})")
            }
            Plan::IndexIntersect { terms } => {
                let parts: Vec<String> = terms.iter().map(|(c, v)| format!("{c}={v}")).collect();
                format!("IndexIntersect({})", parts.join(" & "))
            }
            Plan::IndexRange { col, prefix, ci } => {
                let fold = if *ci { " ci" } else { "" };
                format!("IndexRange({col}{fold} \"{prefix}*\")")
            }
            Plan::Scan => "Scan".to_owned(),
        }
    }
}

/// Live index statistics the cost model reads. Implemented by `Table`; the
/// planner itself stays free of storage details so the proptest oracle can
/// drive it through the public API.
pub trait PlanStats {
    /// True when `col` carries a secondary index.
    fn is_indexed(&self, col: &str) -> bool;
    /// True when `col` carries the case-folded companion index (indexed
    /// string columns only).
    fn has_folded_index(&self, col: &str) -> bool;
    /// Exact bucket length for `col = value` (0 when the key is absent).
    fn bucket_len(&self, col: &str, value: &Value) -> usize;
    /// Exact bucket length in the folded index for a folded key.
    fn folded_bucket_len(&self, col: &str, folded: &str) -> usize;
    /// Total ids under the keys starting with `prefix`, walking the index in
    /// order and giving up once the running total reaches `budget`
    /// (returns at least `budget` in that case).
    fn range_len(&self, col: &str, prefix: &str, ci: bool, budget: usize) -> usize;
    /// Slab length — live rows plus free slots, the cost of a full scan.
    fn slab_len(&self) -> usize;
    /// Live row count, for intersection selectivity.
    fn live_len(&self) -> usize;
}

/// One indexable conjunct found in the predicate.
enum Cand {
    /// `Eq` on an indexed column: bucket key, candidate count.
    Point(&'static str, Value, usize),
    /// `EqCi` on a folded-indexed column: folded key, candidate count.
    PointCi(&'static str, String, usize),
    /// `Like`/`LikeCi` with a literal prefix: folded flag, candidate count.
    Range(&'static str, String, bool, usize),
}

impl Cand {
    fn rows(&self) -> usize {
        match *self {
            Cand::Point(_, _, n) | Cand::PointCi(_, _, n) | Cand::Range(_, _, _, n) => n,
        }
    }
}

/// The literal text before the first wildcard of a pattern, or `None` when
/// the pattern starts with a wildcard (no useful range).
pub(crate) fn literal_prefix(pat: &str) -> Option<&str> {
    let end = pat.find(['*', '?']).unwrap_or(pat.len());
    if end == 0 {
        None
    } else {
        Some(&pat[..end])
    }
}

/// Appends the top-level conjuncts of `pred` (flattening nested `And`s).
fn conjuncts<'p>(pred: &'p Pred, out: &mut Vec<&'p Pred>) {
    match pred {
        Pred::And(ps) => {
            for p in ps {
                conjuncts(p, out);
            }
        }
        p => out.push(p),
    }
}

/// Chooses an access path for `pred` over the table described by `stats`.
pub fn choose(pred: &Pred, stats: &dyn PlanStats) -> Plan {
    let scan_cost = stats.slab_len().saturating_mul(EVAL_COST);
    let mut flat = Vec::new();
    conjuncts(pred, &mut flat);

    let mut cands: Vec<Cand> = Vec::new();
    for p in &flat {
        match p {
            Pred::Eq(col, v) if stats.is_indexed(col) => {
                cands.push(Cand::Point(col, v.clone(), stats.bucket_len(col, v)));
            }
            Pred::EqCi(col, s) if stats.has_folded_index(col) => {
                let folded = s.to_ascii_lowercase();
                let n = stats.folded_bucket_len(col, &folded);
                cands.push(Cand::PointCi(col, folded, n));
            }
            Pred::Like(col, pat) if stats.is_indexed(col) => {
                if let Some(prefix) = literal_prefix(pat) {
                    let n = stats.range_len(col, prefix, false, stats.slab_len());
                    cands.push(Cand::Range(col, prefix.to_owned(), false, n));
                }
            }
            Pred::LikeCi(col, pat) if stats.has_folded_index(col) => {
                if let Some(prefix) = literal_prefix(pat) {
                    let folded = prefix.to_ascii_lowercase();
                    let n = stats.range_len(col, &folded, true, stats.slab_len());
                    cands.push(Cand::Range(col, folded, true, n));
                }
            }
            _ => {}
        }
    }
    if cands.is_empty() {
        return Plan::Scan;
    }

    cands.sort_by_key(Cand::rows);
    let best_cost = cands[0].rows().saturating_mul(EVAL_COST);

    // A merge of the two smallest exact buckets beats filtering the single
    // best bucket when both buckets are substantial and the expected
    // intersection is tiny (independent-selectivity estimate).
    let mut points: Vec<(&'static str, &Value, usize)> = cands
        .iter()
        .filter_map(|c| match c {
            Cand::Point(col, v, n) => Some((*col, v, *n)),
            _ => None,
        })
        .collect();
    points.sort_by_key(|&(_, _, n)| n);
    // Two buckets on the same column never intersect usefully.
    let second = points
        .iter()
        .skip(1)
        .find(|&&(col, _, _)| col != points[0].0);
    if let (Some(&(c1, v1, n1)), Some(&(c2, v2, n2))) = (points.first(), second) {
        if n1 >= INTERSECT_MIN_BUCKET {
            let live = stats.live_len().max(1);
            let expected = ((n1.saturating_mul(n2)) / live).max(1);
            let merge_cost = n1 + n2 + expected.saturating_mul(EVAL_COST);
            if merge_cost < best_cost && merge_cost < scan_cost {
                return Plan::IndexIntersect {
                    terms: vec![(c1, v1.clone()), (c2, v2.clone())],
                };
            }
        }
    }

    if best_cost >= scan_cost {
        return Plan::Scan;
    }
    match &cands[0] {
        Cand::Point(col, v, _) => Plan::IndexPoint {
            col,
            value: v.clone(),
            ci: false,
        },
        Cand::PointCi(col, folded, _) => Plan::IndexPoint {
            col,
            value: Value::Str(folded.as_str().into()),
            ci: true,
        },
        Cand::Range(col, prefix, ci, _) => Plan::IndexRange {
            col,
            prefix: prefix.clone(),
            ci: *ci,
        },
    }
}

/// The exclusive upper bound of the range of strings starting with
/// `prefix`, or `None` when the range is unbounded above. Works in char
/// space — UTF-8 byte order equals code-point order, so bumping the last
/// char bounds every continuation of the prefix.
pub(crate) fn prefix_upper_bound(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(&last) = chars.last() {
        if let Some(next) = next_char(last) {
            *chars.last_mut().expect("nonempty") = next;
            return Some(chars.into_iter().collect());
        }
        chars.pop();
    }
    None
}

/// The next code point after `c`, skipping the surrogate gap.
fn next_char(c: char) -> Option<char> {
    let mut u = c as u32 + 1;
    if u == 0xD800 {
        u = 0xE000;
    }
    char::from_u32(u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_prefix_extraction() {
        assert_eq!(literal_prefix("ab*"), Some("ab"));
        assert_eq!(literal_prefix("ab?cd*"), Some("ab"));
        assert_eq!(literal_prefix("exact"), Some("exact"));
        assert_eq!(literal_prefix("*ab"), None);
        assert_eq!(literal_prefix("?"), None);
    }

    #[test]
    fn prefix_bounds() {
        assert_eq!(prefix_upper_bound("ab").as_deref(), Some("ac"));
        assert_eq!(prefix_upper_bound("a\u{7f}").as_deref(), Some("a\u{80}"));
        assert_eq!(
            prefix_upper_bound(&format!("a{}", char::MAX)).as_deref(),
            Some("b")
        );
        assert_eq!(prefix_upper_bound(""), None);
        assert_eq!(prefix_upper_bound(&char::MAX.to_string()), None);
    }

    #[test]
    fn describe_shapes() {
        let p = Plan::IndexPoint {
            col: "login",
            value: "kit".into(),
            ci: false,
        };
        assert_eq!(p.describe(), "IndexPoint(login=kit)");
        assert_eq!(p.kind(), "point");
        let r = Plan::IndexRange {
            col: "name",
            prefix: "w".into(),
            ci: true,
        };
        assert_eq!(r.describe(), "IndexRange(name ci \"w*\")");
        assert_eq!(Plan::Scan.describe(), "Scan");
    }
}
