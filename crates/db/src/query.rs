//! The predicate language of the engine.
//!
//! Query handles (§7) translate their arguments into these predicates. The
//! language is intentionally small — equality, case-insensitive equality,
//! wildcard matching (for all the "may contain wildcards" queries), integer
//! comparison, and boolean combination — because the paper's design rule is
//! to "maximize local processing in applications": the server never
//! evaluates complex requests.

use crate::value::Value;
use moira_common::wildcard;

/// A row predicate over named columns.
#[derive(Debug, Clone)]
pub enum Pred {
    /// Matches every row.
    True,
    /// Column equals value exactly.
    Eq(&'static str, Value),
    /// String column equals, ASCII case-insensitively.
    EqCi(&'static str, String),
    /// String column matches a `*`/`?` wildcard pattern.
    Like(&'static str, String),
    /// String column matches a wildcard pattern case-insensitively.
    LikeCi(&'static str, String),
    /// Integer column compares `< / <= / > / >=` against a bound.
    Cmp(&'static str, CmpOp, i64),
    /// All sub-predicates hold.
    And(Vec<Pred>),
    /// Any sub-predicate holds.
    Or(Vec<Pred>),
    /// Sub-predicate does not hold.
    Not(Box<Pred>),
}

/// Comparison operators for [`Pred::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
}

impl Pred {
    /// Convenience: conjunction of two predicates.
    pub fn and(self, other: Pred) -> Pred {
        match self {
            Pred::And(mut v) => {
                v.push(other);
                Pred::And(v)
            }
            p => Pred::And(vec![p, other]),
        }
    }

    /// Builds an `Eq` or `Like` predicate depending on whether the argument
    /// contains wildcards — the standard treatment of "may contain
    /// wildcards" query arguments.
    pub fn name_match(col: &'static str, arg: &str) -> Pred {
        if wildcard::has_wildcards(arg) {
            Pred::Like(col, arg.to_owned())
        } else {
            Pred::Eq(col, Value::Str(arg.into()))
        }
    }

    /// Case-insensitive variant of [`Pred::name_match`] (machines,
    /// services).
    pub fn name_match_ci(col: &'static str, arg: &str) -> Pred {
        if wildcard::has_wildcards(arg) {
            Pred::LikeCi(col, arg.to_owned())
        } else {
            Pred::EqCi(col, arg.to_owned())
        }
    }

    /// Evaluates the predicate against a row, resolving column names through
    /// `col_of`.
    pub fn eval(&self, row: &[Value], col_of: &dyn Fn(&str) -> usize) -> bool {
        match self {
            Pred::True => true,
            Pred::Eq(col, v) => &row[col_of(col)] == v,
            Pred::EqCi(col, s) => match &row[col_of(col)] {
                Value::Str(t) => t.eq_ignore_ascii_case(s),
                _ => false,
            },
            Pred::Like(col, pat) => match &row[col_of(col)] {
                Value::Str(t) => wildcard::matches(pat, t),
                _ => false,
            },
            Pred::LikeCi(col, pat) => match &row[col_of(col)] {
                Value::Str(t) => wildcard::matches_ci(pat, t),
                _ => false,
            },
            Pred::Cmp(col, op, bound) => match &row[col_of(col)] {
                Value::Int(i) => match op {
                    CmpOp::Lt => i < bound,
                    CmpOp::Le => i <= bound,
                    CmpOp::Gt => i > bound,
                    CmpOp::Ge => i >= bound,
                },
                _ => false,
            },
            Pred::And(ps) => ps.iter().all(|p| p.eval(row, col_of)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval(row, col_of)),
            Pred::Not(p) => !p.eval(row, col_of),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Str("babette".into()),
            Value::Int(6530),
            Value::Bool(true),
        ]
    }

    fn cols(name: &str) -> usize {
        match name {
            "login" => 0,
            "uid" => 1,
            "active" => 2,
            _ => panic!("bad col {name}"),
        }
    }

    #[test]
    fn eq_and_like() {
        assert!(Pred::Eq("login", "babette".into()).eval(&row(), &cols));
        assert!(Pred::Like("login", "bab*".into()).eval(&row(), &cols));
        assert!(!Pred::Like("login", "z*".into()).eval(&row(), &cols));
    }

    #[test]
    fn case_insensitive() {
        assert!(Pred::EqCi("login", "BABETTE".into()).eval(&row(), &cols));
        assert!(Pred::LikeCi("login", "BAB*".into()).eval(&row(), &cols));
    }

    #[test]
    fn comparisons() {
        assert!(Pred::Cmp("uid", CmpOp::Gt, 6000).eval(&row(), &cols));
        assert!(!Pred::Cmp("uid", CmpOp::Lt, 6000).eval(&row(), &cols));
        assert!(Pred::Cmp("uid", CmpOp::Ge, 6530).eval(&row(), &cols));
        assert!(Pred::Cmp("uid", CmpOp::Le, 6530).eval(&row(), &cols));
    }

    #[test]
    fn boolean_combinators() {
        let p = Pred::Eq("active", true.into()).and(Pred::Like("login", "b*".into()));
        assert!(p.eval(&row(), &cols));
        let q = Pred::Or(vec![
            Pred::Eq("uid", 1.into()),
            Pred::Eq("uid", 6530.into()),
        ]);
        assert!(q.eval(&row(), &cols));
        assert!(!Pred::Not(Box::new(Pred::True)).eval(&row(), &cols));
    }

    #[test]
    fn name_match_chooses_representation() {
        assert!(matches!(Pred::name_match("login", "bab*"), Pred::Like(..)));
        assert!(matches!(Pred::name_match("login", "babette"), Pred::Eq(..)));
    }
}
