//! `mrbackup` / `mrrestore` — the ASCII dump format of §5.2.2.
//!
//! Each relation is copied to an ASCII file, one line per row, fields
//! separated by colons. Colons and backslashes inside fields become `\:` and
//! `\\`; non-printing characters become `\nnn` with `nnn` the octal ASCII
//! code. The paper chose this over INGRES's own checkpointing because "the
//! only known cure \[for binary corruption\] is to dump the entire database
//! to text files, and recreate it from scratch from the text files".
//!
//! `nightly` reproduces the `nightly.sh` rotation that keeps the last three
//! backups on line.

use std::collections::BTreeMap;

use moira_common::errors::{MrError, MrResult};

use crate::database::Database;
use crate::value::{ColType, Value};

/// Escapes one field: `\:`, `\\`, and `\nnn` octal for non-printing bytes.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b':' => out.push_str("\\:"),
            b'\\' => out.push_str("\\\\"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\{b:03o}")),
        }
    }
    out
}

/// Reverses [`escape_field`].
pub fn unescape_field(s: &str) -> MrResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            if i + 1 >= bytes.len() {
                return Err(MrError::Internal);
            }
            match bytes[i + 1] {
                b':' => {
                    out.push(b':');
                    i += 2;
                }
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                d if d.is_ascii_digit() => {
                    if i + 3 >= bytes.len() {
                        return Err(MrError::Internal);
                    }
                    let oct = &s[i + 1..i + 4];
                    let val = u8::from_str_radix(oct, 8).map_err(|_| MrError::Internal)?;
                    out.push(val);
                    i += 4;
                }
                _ => return Err(MrError::Internal),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| MrError::Internal)
}

/// Dumps one table to its ASCII representation.
pub fn dump_table(db: &Database, table: &str) -> String {
    let t = db.table(table);
    let mut out = String::new();
    for (_, row) in t.iter() {
        let line: Vec<String> = row.iter().map(|v| escape_field(&v.render())).collect();
        out.push_str(&line.join(":"));
        out.push('\n');
    }
    out
}

/// Dumps every table; returns `relation name -> ASCII contents`.
pub fn mrbackup(db: &Database) -> BTreeMap<String, String> {
    db.table_names()
        .into_iter()
        .map(|name| (name.to_owned(), dump_table(db, name)))
        .collect()
}

/// Total size in bytes of a backup (the paper reports ~3.2 MB for the full
/// production database).
pub fn backup_size(backup: &BTreeMap<String, String>) -> usize {
    backup.values().map(|v| v.len()).sum()
}

/// Restores one table's rows from its ASCII dump into an *empty* table of
/// the same schema (the `mrrestore` precondition: "Have you initialized an
/// empty database?").
pub fn restore_table(db: &mut Database, table: &str, dump: &str) -> MrResult<usize> {
    if !db.table(table).is_empty() {
        return Err(MrError::Exists);
    }
    let types: Vec<ColType> = db
        .table(table)
        .schema()
        .columns
        .iter()
        .map(|c| c.ty)
        .collect();
    let mut count = 0;
    for line in dump.lines() {
        if line.is_empty() {
            continue;
        }
        let raw_fields = split_unescaped_colons(line);
        if raw_fields.len() != types.len() {
            return Err(MrError::Internal);
        }
        let mut row = Vec::with_capacity(types.len());
        for (raw, &ty) in raw_fields.iter().zip(&types) {
            let text = unescape_field(raw)?;
            row.push(Value::parse(ty, &text).ok_or(MrError::Internal)?);
        }
        db.append(table, row)?;
        count += 1;
    }
    Ok(count)
}

/// Restores a full backup into an empty database with the schema already
/// created.
pub fn mrrestore(db: &mut Database, backup: &BTreeMap<String, String>) -> MrResult<usize> {
    let mut total = 0;
    for (table, dump) in backup {
        if !db.has_table(table) {
            return Err(MrError::Internal);
        }
        total += restore_table(db, table, dump)?;
    }
    Ok(total)
}

fn split_unescaped_colons(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b':' => {
                fields.push(&line[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields.push(&line[start..]);
    fields
}

/// A three-generation rotation of on-line backups, as `nightly.sh` kept.
#[derive(Debug, Default)]
pub struct NightlyRotation {
    generations: Vec<BTreeMap<String, String>>,
}

impl NightlyRotation {
    /// Creates an empty rotation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a backup of `db` and rotates it in, discarding the oldest when
    /// more than three are held.
    pub fn run_nightly(&mut self, db: &Database) {
        self.generations.insert(0, mrbackup(db));
        self.generations.truncate(3);
    }

    /// Backup generations, newest first.
    pub fn generations(&self) -> &[BTreeMap<String, String>] {
        &self.generations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use moira_common::clock::VClock;

    fn sample_db() -> Database {
        let mut db = Database::new(VClock::new());
        db.create_table(TableSchema::new(
            "users",
            vec![
                ColumnDef::str("login").unique(),
                ColumnDef::int("uid"),
                ColumnDef::boolean("active"),
                ColumnDef::str("fullname"),
            ],
        ));
        db
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a:b\\c\nd\te";
        let escaped = escape_field(nasty);
        assert!(!escaped.contains('\n'));
        assert_eq!(escaped, "a\\:b\\\\c\\012d\\011e");
        assert_eq!(unescape_field(&escaped).unwrap(), nasty);
    }

    #[test]
    fn unescape_rejects_garbage() {
        assert!(unescape_field("trailing\\").is_err());
        assert!(unescape_field("bad\\x").is_err());
        assert!(unescape_field("short\\01").is_err());
    }

    #[test]
    fn dump_and_restore_round_trip() {
        let mut db = sample_db();
        db.append(
            "users",
            vec![
                "babette".into(),
                6530.into(),
                true.into(),
                "Harmon C Fowler".into(),
            ],
        )
        .unwrap();
        db.append(
            "users",
            vec![
                "co:lon".into(),
                6531.into(),
                false.into(),
                "Weird: Name\\".into(),
            ],
        )
        .unwrap();
        let backup = mrbackup(&db);
        assert!(backup_size(&backup) > 0);

        let mut fresh = sample_db();
        let restored = mrrestore(&mut fresh, &backup).unwrap();
        assert_eq!(restored, 2);
        let t = fresh.table("users");
        let rows: Vec<_> = t.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r[0] == Value::Str("co:lon".into())
            && r[3] == Value::Str("Weird: Name\\".into())
            && r[2] == Value::Bool(false)));
    }

    #[test]
    fn restore_requires_empty_table() {
        let mut db = sample_db();
        db.append("users", vec!["x".into(), 1.into(), true.into(), "X".into()])
            .unwrap();
        let backup = mrbackup(&db);
        assert_eq!(mrrestore(&mut db, &backup), Err(MrError::Exists));
    }

    #[test]
    fn restore_rejects_wrong_arity() {
        let mut db = sample_db();
        assert_eq!(
            restore_table(&mut db, "users", "only:two\n"),
            Err(MrError::Internal)
        );
    }

    #[test]
    fn nightly_keeps_three() {
        let mut db = sample_db();
        let mut rot = NightlyRotation::new();
        for i in 0..5 {
            db.append(
                "users",
                vec![format!("u{i}").into(), i.into(), true.into(), "U".into()],
            )
            .unwrap();
            rot.run_nightly(&db);
        }
        assert_eq!(rot.generations().len(), 3);
        // Newest generation has all five users; oldest kept has three.
        assert_eq!(rot.generations()[0]["users"].lines().count(), 5);
        assert_eq!(rot.generations()[2]["users"].lines().count(), 3);
    }
}
