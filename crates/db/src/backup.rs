//! `mrbackup` / `mrrestore` — the ASCII dump format of §5.2.2.
//!
//! Each relation is copied to an ASCII file, one line per row, fields
//! separated by colons. Colons and backslashes inside fields become `\:` and
//! `\\`; non-printing characters become `\nnn` with `nnn` the octal ASCII
//! code. The paper chose this over INGRES's own checkpointing because "the
//! only known cure \[for binary corruption\] is to dump the entire database
//! to text files, and recreate it from scratch from the text files".
//!
//! `nightly` reproduces the `nightly.sh` rotation that keeps the last three
//! backups on line.

use std::collections::BTreeMap;

use moira_common::errors::{MrError, MrResult};

use crate::database::Database;
use crate::storage::Media;
use crate::value::{ColType, Value};

/// Escapes one field: `\:`, `\\`, and `\nnn` octal for non-printing bytes.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b':' => out.push_str("\\:"),
            b'\\' => out.push_str("\\\\"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\{b:03o}")),
        }
    }
    out
}

/// Reverses [`escape_field`].
pub fn unescape_field(s: &str) -> MrResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            if i + 1 >= bytes.len() {
                return Err(MrError::Internal);
            }
            match bytes[i + 1] {
                b':' => {
                    out.push(b':');
                    i += 2;
                }
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                d if d.is_ascii_digit() => {
                    if i + 3 >= bytes.len() {
                        return Err(MrError::Internal);
                    }
                    let oct = &s[i + 1..i + 4];
                    let val = u8::from_str_radix(oct, 8).map_err(|_| MrError::Internal)?;
                    out.push(val);
                    i += 4;
                }
                _ => return Err(MrError::Internal),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| MrError::Internal)
}

/// Dumps one table to its ASCII representation.
pub fn dump_table(db: &Database, table: &str) -> String {
    let t = db.table(table);
    let mut out = String::new();
    for (_, row) in t.iter() {
        let line: Vec<String> = row.iter().map(|v| escape_field(&v.render())).collect();
        out.push_str(&line.join(":"));
        out.push('\n');
    }
    out
}

/// Dumps every table; returns `relation name -> ASCII contents`.
pub fn mrbackup(db: &Database) -> BTreeMap<String, String> {
    db.table_names()
        .into_iter()
        .map(|name| (name.to_owned(), dump_table(db, name)))
        .collect()
}

/// Total size in bytes of a backup (the paper reports ~3.2 MB for the full
/// production database).
pub fn backup_size(backup: &BTreeMap<String, String>) -> usize {
    backup.values().map(|v| v.len()).sum()
}

/// Restores one table's rows from its ASCII dump into an *empty* table of
/// the same schema (the `mrrestore` precondition: "Have you initialized an
/// empty database?").
pub fn restore_table(db: &mut Database, table: &str, dump: &str) -> MrResult<usize> {
    if !db.table(table).is_empty() {
        return Err(MrError::Exists);
    }
    let types: Vec<ColType> = db
        .table(table)
        .schema()
        .columns
        .iter()
        .map(|c| c.ty)
        .collect();
    let mut count = 0;
    for line in dump.lines() {
        if line.is_empty() {
            continue;
        }
        let raw_fields = split_unescaped_colons(line);
        if raw_fields.len() != types.len() {
            return Err(MrError::Internal);
        }
        let mut row = Vec::with_capacity(types.len());
        for (raw, &ty) in raw_fields.iter().zip(&types) {
            let text = unescape_field(raw)?;
            row.push(Value::parse(ty, &text).ok_or(MrError::Internal)?);
        }
        db.append(table, row)?;
        count += 1;
    }
    Ok(count)
}

/// Restores a full backup into an empty database with the schema already
/// created.
pub fn mrrestore(db: &mut Database, backup: &BTreeMap<String, String>) -> MrResult<usize> {
    let mut total = 0;
    for (table, dump) in backup {
        if !db.has_table(table) {
            return Err(MrError::Internal);
        }
        total += restore_table(db, table, dump)?;
    }
    Ok(total)
}

pub(crate) fn split_unescaped_colons(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b':' => {
                fields.push(&line[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields.push(&line[start..]);
    fields
}

/// A three-generation rotation of on-line backups, as `nightly.sh` kept.
#[derive(Debug, Default)]
pub struct NightlyRotation {
    generations: Vec<BTreeMap<String, String>>,
}

impl NightlyRotation {
    /// Creates an empty rotation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a backup of `db` and rotates it in, discarding the oldest when
    /// more than three are held.
    pub fn run_nightly(&mut self, db: &Database) {
        self.generations.insert(0, mrbackup(db));
        self.generations.truncate(3);
    }

    /// Backup generations, newest first.
    pub fn generations(&self) -> &[BTreeMap<String, String>] {
        &self.generations
    }
}

/// One-file encoding of a full backup, suitable for atomic replacement on
/// durable media.
pub fn encode_backup(backup: &BTreeMap<String, String>) -> String {
    let mut out = String::from("moira-backup:1\n");
    for (table, dump) in backup {
        out.push_str("table:");
        out.push_str(&escape_field(table));
        out.push('\n');
        out.push_str(dump);
        out.push_str("endtable\n");
    }
    out.push_str("end\n");
    out
}

/// Reverses [`encode_backup`]. Every failure is [`MrError::Durability`]: a
/// backup that does not parse in full — including a missing `end` seal —
/// is treated as media corruption, never partially trusted.
pub fn decode_backup(text: &str) -> MrResult<BTreeMap<String, String>> {
    let mut lines = text.lines();
    if lines.next() != Some("moira-backup:1") {
        return Err(MrError::Durability);
    }
    let mut backup = BTreeMap::new();
    let mut sealed = false;
    while let Some(line) = lines.next() {
        if line == "end" {
            sealed = true;
            break;
        }
        let name = line.strip_prefix("table:").ok_or(MrError::Durability)?;
        let name = unescape_field(name).map_err(|_| MrError::Durability)?;
        let mut dump = String::new();
        loop {
            match lines.next() {
                Some("endtable") => break,
                Some(row) => {
                    dump.push_str(row);
                    dump.push('\n');
                }
                None => return Err(MrError::Durability),
            }
        }
        if backup.insert(name, dump).is_some() {
            return Err(MrError::Durability);
        }
    }
    if !sealed || lines.next().is_some() {
        return Err(MrError::Durability);
    }
    Ok(backup)
}

/// On-line backup file names, newest first — `nightly.sh`'s three
/// generations.
pub const BACKUP_GENERATIONS: [&str; 3] = ["backup.1", "backup.2", "backup.3"];
/// Scratch name for the atomic-replace protocol.
pub const BACKUP_TMP: &str = "backup.tmp";

/// The three-generation rotation written to durable [`Media`] with the
/// same crash discipline as the snapshot path: the new backup is written
/// to a temp file and fsynced *before* any rename, the generation shifts
/// are renames (atomic, made durable by the closing directory fsync), and
/// a crash at any point leaves every surviving generation fully decodable
/// — never a torn or half-rotated file.
#[derive(Debug)]
pub struct MediaRotation<M: Media> {
    media: M,
}

impl<M: Media> MediaRotation<M> {
    /// Wraps `media`; existing generations on it are picked up as-is.
    pub fn new(media: M) -> Self {
        Self { media }
    }

    /// Takes a backup of `db` and rotates it in as `backup.1`, shifting
    /// the older generations down and discarding the fourth-oldest.
    pub fn run_nightly(&mut self, db: &Database) -> MrResult<()> {
        // A stale temp file from a crashed previous run is garbage.
        if self.media.read(BACKUP_TMP)?.is_some() {
            self.media.remove(BACKUP_TMP)?;
        }
        let encoded = encode_backup(&mrbackup(db));
        self.media.write_new(BACKUP_TMP, encoded.as_bytes())?;
        self.media.fsync(BACKUP_TMP)?;
        // Shift oldest-first so no generation is overwritten before it has
        // been moved out of the way.
        if self.media.read(BACKUP_GENERATIONS[1])?.is_some() {
            self.media
                .rename(BACKUP_GENERATIONS[1], BACKUP_GENERATIONS[2])?;
        }
        if self.media.read(BACKUP_GENERATIONS[0])?.is_some() {
            self.media
                .rename(BACKUP_GENERATIONS[0], BACKUP_GENERATIONS[1])?;
        }
        self.media.rename(BACKUP_TMP, BACKUP_GENERATIONS[0])?;
        self.media.fsync_dir()
    }

    /// Decodes every generation present on the media, newest first. A
    /// generation that fails to decode is an error — rotation crashes must
    /// never leave a torn file behind.
    pub fn generations(&self) -> MrResult<Vec<BTreeMap<String, String>>> {
        let mut out = Vec::new();
        for name in BACKUP_GENERATIONS {
            if let Some(bytes) = self.media.read(name)? {
                let text = String::from_utf8(bytes).map_err(|_| MrError::Durability)?;
                out.push(decode_backup(&text)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::storage::{OpKind, SimMedia};
    use moira_common::clock::VClock;

    fn sample_db() -> Database {
        let mut db = Database::new(VClock::new());
        db.create_table(TableSchema::new(
            "users",
            vec![
                ColumnDef::str("login").unique(),
                ColumnDef::int("uid"),
                ColumnDef::boolean("active"),
                ColumnDef::str("fullname"),
            ],
        ));
        db
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a:b\\c\nd\te";
        let escaped = escape_field(nasty);
        assert!(!escaped.contains('\n'));
        assert_eq!(escaped, "a\\:b\\\\c\\012d\\011e");
        assert_eq!(unescape_field(&escaped).unwrap(), nasty);
    }

    #[test]
    fn unescape_rejects_garbage() {
        assert!(unescape_field("trailing\\").is_err());
        assert!(unescape_field("bad\\x").is_err());
        assert!(unescape_field("short\\01").is_err());
    }

    #[test]
    fn dump_and_restore_round_trip() {
        let mut db = sample_db();
        db.append(
            "users",
            vec![
                "babette".into(),
                6530.into(),
                true.into(),
                "Harmon C Fowler".into(),
            ],
        )
        .unwrap();
        db.append(
            "users",
            vec![
                "co:lon".into(),
                6531.into(),
                false.into(),
                "Weird: Name\\".into(),
            ],
        )
        .unwrap();
        let backup = mrbackup(&db);
        assert!(backup_size(&backup) > 0);

        let mut fresh = sample_db();
        let restored = mrrestore(&mut fresh, &backup).unwrap();
        assert_eq!(restored, 2);
        let t = fresh.table("users");
        let rows: Vec<_> = t.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r[0] == Value::Str("co:lon".into())
            && r[3] == Value::Str("Weird: Name\\".into())
            && r[2] == Value::Bool(false)));
    }

    #[test]
    fn restore_requires_empty_table() {
        let mut db = sample_db();
        db.append("users", vec!["x".into(), 1.into(), true.into(), "X".into()])
            .unwrap();
        let backup = mrbackup(&db);
        assert_eq!(mrrestore(&mut db, &backup), Err(MrError::Exists));
    }

    #[test]
    fn restore_rejects_wrong_arity() {
        let mut db = sample_db();
        assert_eq!(
            restore_table(&mut db, "users", "only:two\n"),
            Err(MrError::Internal)
        );
    }

    #[test]
    fn nightly_keeps_three() {
        let mut db = sample_db();
        let mut rot = NightlyRotation::new();
        for i in 0..5 {
            db.append(
                "users",
                vec![format!("u{i}").into(), i.into(), true.into(), "U".into()],
            )
            .unwrap();
            rot.run_nightly(&db);
        }
        assert_eq!(rot.generations().len(), 3);
        // Newest generation has all five users; oldest kept has three.
        assert_eq!(rot.generations()[0]["users"].lines().count(), 5);
        assert_eq!(rot.generations()[2]["users"].lines().count(), 3);
    }

    #[test]
    fn backup_document_round_trip_and_rejects_torn() {
        let mut db = sample_db();
        db.append(
            "users",
            vec!["co:lon".into(), 1.into(), true.into(), "A\\B".into()],
        )
        .unwrap();
        let backup = mrbackup(&db);
        let text = encode_backup(&backup);
        assert_eq!(decode_backup(&text).unwrap(), backup);
        // Any truncation — a torn write — must fail, not half-parse.
        for cut in 0..text.len() - 1 {
            assert!(decode_backup(&text[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_backup(&format!("{text}junk\n")).is_err());
    }

    #[test]
    fn media_rotation_keeps_three_decodable_generations() {
        let mut db = sample_db();
        let mut rot = MediaRotation::new(SimMedia::new());
        for i in 0..5 {
            db.append(
                "users",
                vec![format!("u{i}").into(), i.into(), true.into(), "U".into()],
            )
            .unwrap();
            rot.run_nightly(&db).unwrap();
        }
        let gens = rot.generations().unwrap();
        assert_eq!(gens.len(), 3);
        assert_eq!(gens[0]["users"].lines().count(), 5);
        assert_eq!(gens[2]["users"].lines().count(), 3);
    }

    #[test]
    fn crash_between_renames_preserves_old_generations() {
        let mut db = sample_db();
        let media = SimMedia::new();
        let mut rot = MediaRotation::new(media.clone());
        for i in 0..3 {
            db.append(
                "users",
                vec![format!("u{i}").into(), i.into(), true.into(), "U".into()],
            )
            .unwrap();
            rot.run_nightly(&db).unwrap();
        }
        let before = rot.generations().unwrap();

        // Every rename in the rotation is a kill point: shift 2→3, shift
        // 1→2, and the tmp→1 replacement itself.
        for nth in 0..3 {
            media.arm_crash(OpKind::Rename, nth);
            db.append(
                "users",
                vec![
                    format!("crash{nth}").into(),
                    (100 + nth as i64).into(),
                    true.into(),
                    "C".into(),
                ],
            )
            .unwrap();
            assert_eq!(
                rot.run_nightly(&db),
                Err(MrError::Durability),
                "rename #{nth}"
            );
            media.power_cycle();
            // The directory fsync never ran, so no rename became durable:
            // the old trio is intact and every file still decodes.
            assert_eq!(rot.generations().unwrap(), before, "rename #{nth}");
        }

        // The next nightly run converges: stale tmp is discarded and the
        // new backup (with all crash-era rows) becomes generation one.
        rot.run_nightly(&db).unwrap();
        let after = rot.generations().unwrap();
        assert_eq!(after.len(), 3);
        assert!(after[0]["users"].contains("crash2"));
        assert_eq!(after[1], before[0]);
    }
}
