#![warn(missing_docs)]

//! An embedded relational engine — the substrate standing in for RTI INGRES.
//!
//! The paper (§5.2) is explicit that "Moira does not depend on any special
//! feature of INGRES … Moira can easily utilize other relational databases":
//! every access goes through predefined query handles layered over plain
//! retrieve/append/update/delete operations. This crate supplies exactly that
//! operation set:
//!
//! - [`value`] / [`schema`] — typed columns and table schemas.
//! - [`table`] — slab-stored rows, secondary indexes, predicate selection,
//!   and per-table statistics (the TBLSTATS relation's raw material).
//! - [`query`] — the predicate language (equality, wildcard `Like`,
//!   conjunction/disjunction) used by the query-handle layer.
//! - [`plan`] — the predicate planner: point/intersect/range index access
//!   chosen by a cost model over live bucket cardinalities, with the scan
//!   fallback and EXPLAIN descriptions.
//! - [`database`] — the named-table container with a shared virtual clock.
//! - [`lock`] — the shared/exclusive named lock manager with deadlock
//!   detection (`MR_DEADLOCK`), used by the DCM's service/host locking.
//! - [`backup`] — `mrbackup`/`mrrestore`: the colon-separated ASCII dump
//!   format with `\:`, `\\` and `\nnn` escapes, plus three-generation
//!   rotation (§5.2.2).
//! - [`journal`] — the append-only journal of successful changes that closes
//!   the "no more than a day's transactions" recovery gap (§5.2.2).
//! - [`wal`] / [`snapshot`] / [`storage`] — the durable engine: CRC-framed
//!   write-ahead log with group commit, atomic snapshot documents, and
//!   crash recovery that preserves the epoch and per-row generations the
//!   delta-DCM cursors depend on.

pub mod backup;
pub mod database;
pub mod journal;
pub mod lock;
pub mod plan;
pub mod query;
pub mod schema;
pub mod snapshot;
pub mod storage;
pub mod table;
pub mod value;
pub mod wal;

pub use database::{Database, GenCursor};
pub use plan::Plan;
pub use query::Pred;
pub use schema::{ColumnDef, TableSchema};
pub use storage::{
    DiskMedia, DurableEngine, GroupCommitConfig, Media, NullStorage, OpKind, RecoveredImage,
    SimMedia, Storage,
};
pub use table::{RowChange, RowId, Table};
pub use value::{ColType, Symbols, Value};
