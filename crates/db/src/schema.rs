//! Table schemas: column definitions with types, length limits, uniqueness
//! and index declarations.

use crate::value::ColType;

/// Definition of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name.
    pub name: &'static str,
    /// Storage class.
    pub ty: ColType,
    /// Maximum rendered length for string columns (0 = unlimited). Exceeding
    /// it yields `MR_ARG_TOO_LONG` at the query layer.
    pub max_len: usize,
    /// If true, the engine rejects duplicate values in this column
    /// (`MR_EXISTS`).
    pub unique: bool,
    /// If true, the table maintains a secondary index on this column.
    pub indexed: bool,
}

impl ColumnDef {
    /// A plain column of the given type.
    pub fn new(name: &'static str, ty: ColType) -> Self {
        ColumnDef {
            name,
            ty,
            max_len: 0,
            unique: false,
            indexed: false,
        }
    }

    /// Shorthand for an integer column.
    pub fn int(name: &'static str) -> Self {
        Self::new(name, ColType::Int)
    }

    /// Shorthand for a string column.
    pub fn str(name: &'static str) -> Self {
        Self::new(name, ColType::Str)
    }

    /// Shorthand for a boolean column.
    pub fn boolean(name: &'static str) -> Self {
        Self::new(name, ColType::Bool)
    }

    /// Sets the maximum string length.
    pub fn max_len(mut self, n: usize) -> Self {
        self.max_len = n;
        self
    }

    /// Marks the column unique (implies indexed).
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self.indexed = true;
        self
    }

    /// Marks the column indexed.
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// A named table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table (relation) name.
    pub name: &'static str,
    /// Columns in storage order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: &'static str, columns: Vec<ColumnDef>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<_> = columns.iter().map(|c| c.name).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate column in table {name}"
        );
        TableSchema { name, columns }
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_lookup() {
        let s = TableSchema::new(
            "users",
            vec![
                ColumnDef::str("login").unique(),
                ColumnDef::int("uid").indexed(),
            ],
        );
        assert_eq!(s.col("login"), Some(0));
        assert_eq!(s.col("uid"), Some(1));
        assert_eq!(s.col("nope"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn unique_implies_indexed() {
        let c = ColumnDef::str("login").unique();
        assert!(c.unique && c.indexed);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        TableSchema::new("t", vec![ColumnDef::int("a"), ColumnDef::int("a")]);
    }
}
