//! Typed column values.
//!
//! The Moira schema (§6) uses three storage classes: integers (ids, uids,
//! flags, unix times), short text fields, and booleans (stored as 0/1 in
//! INGRES but typed here). `Value` is the dynamic cell type flowing through
//! the engine; query handles convert to and from the counted strings of the
//! wire protocol at the edge.

use std::cmp::Ordering;
use std::fmt;

/// The storage class of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit signed integer (also used for unix times).
    Int,
    /// Text.
    Str,
    /// Boolean (rendered as 0/1 at the protocol edge, as INGRES stored it).
    Bool,
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer cell.
    Int(i64),
    /// A string cell.
    Str(String),
    /// A boolean cell.
    Bool(bool),
}

impl Value {
    /// The storage class of this value.
    pub fn col_type(&self) -> ColType {
        match self {
            Value::Int(_) => ColType::Int,
            Value::Str(_) => ColType::Str,
            Value::Bool(_) => ColType::Bool,
        }
    }

    /// The integer contents; panics if not an [`Value::Int`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-integer value — schema mismatches are
    /// programming errors inside the engine, not runtime conditions.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The string contents; panics if not a [`Value::Str`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-string value.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    /// The boolean contents; panics if not a [`Value::Bool`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-boolean value.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Renders the value the way the protocol sends it: integers in decimal,
    /// booleans as `0`/`1`, strings verbatim.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => if *b { "1" } else { "0" }.to_owned(),
        }
    }

    /// Parses a protocol string into a value of the requested type.
    pub fn parse(ty: ColType, s: &str) -> Option<Value> {
        match ty {
            ColType::Int => s.trim().parse::<i64>().ok().map(Value::Int),
            ColType::Str => Some(Value::Str(s.to_owned())),
            ColType::Bool => match s.trim() {
                "0" => Some(Value::Bool(false)),
                "1" => Some(Value::Bool(true)),
                _ => s.trim().parse::<i64>().ok().map(|i| Value::Bool(i != 0)),
            },
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            // Cross-type ordering is arbitrary but total: Int < Str < Bool.
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Str(_) => 1,
        Value::Bool(_) => 2,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_int() {
        let v = Value::Int(-42);
        assert_eq!(v.render(), "-42");
        assert_eq!(Value::parse(ColType::Int, "-42"), Some(v));
        assert_eq!(Value::parse(ColType::Int, "x"), None);
    }

    #[test]
    fn render_and_parse_bool() {
        assert_eq!(Value::Bool(true).render(), "1");
        assert_eq!(Value::parse(ColType::Bool, "0"), Some(Value::Bool(false)));
        assert_eq!(Value::parse(ColType::Bool, "7"), Some(Value::Bool(true)));
        assert_eq!(Value::parse(ColType::Bool, "maybe"), None);
    }

    #[test]
    fn parse_str_is_verbatim() {
        assert_eq!(
            Value::parse(ColType::Str, "  spaced  "),
            Some(Value::Str("  spaced  ".into()))
        );
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn ordering_total_across_types() {
        let mut vals = [
            Value::Bool(true),
            Value::Str("m".into()),
            Value::Int(3),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[3], Value::Bool(true));
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_mismatch() {
        Value::Str("x".into()).as_int();
    }
}
