//! Typed column values and the per-database string interner.
//!
//! The Moira schema (§6) uses three storage classes: integers (ids, uids,
//! flags, unix times), short text fields, and booleans (stored as 0/1 in
//! INGRES but typed here). `Value` is the dynamic cell type flowing through
//! the engine; query handles convert to and from the counted strings of the
//! wire protocol at the edge.
//!
//! String cells are `Arc<str>`: at production scale the same handful of
//! strings (machine types, cluster names, shell paths, the owning login
//! repeated across a user's list/filesys/quota rows) would otherwise be
//! heap-allocated millions of times. A [`Symbols`] table shared by every
//! table of one database dedupes them at append/update/import time, so a
//! row costs one pointer per string cell and the text itself is stored
//! once. Interning is invisible to every observer — equality, ordering,
//! hashing, rendering, and the snapshot/WAL wire form are all by content.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// The storage class of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit signed integer (also used for unix times).
    Int,
    /// Text.
    Str,
    /// Boolean (rendered as 0/1 at the protocol edge, as INGRES stored it).
    Bool,
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer cell.
    Int(i64),
    /// A string cell. Cheap to clone; deduped per database by [`Symbols`].
    Str(Arc<str>),
    /// A boolean cell.
    Bool(bool),
}

impl Value {
    /// The storage class of this value.
    pub fn col_type(&self) -> ColType {
        match self {
            Value::Int(_) => ColType::Int,
            Value::Str(_) => ColType::Str,
            Value::Bool(_) => ColType::Bool,
        }
    }

    /// The integer contents; panics if not an [`Value::Int`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-integer value — schema mismatches are
    /// programming errors inside the engine, not runtime conditions.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The string contents; panics if not a [`Value::Str`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-string value.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    /// The boolean contents; panics if not a [`Value::Bool`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-boolean value.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Renders the value the way the protocol sends it: integers in decimal,
    /// booleans as `0`/`1`, strings verbatim.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => s.as_ref().to_owned(),
            Value::Bool(b) => if *b { "1" } else { "0" }.to_owned(),
        }
    }

    /// Parses a protocol string into a value of the requested type.
    pub fn parse(ty: ColType, s: &str) -> Option<Value> {
        match ty {
            ColType::Int => s.trim().parse::<i64>().ok().map(Value::Int),
            ColType::Str => Some(Value::Str(Arc::from(s))),
            ColType::Bool => match s.trim() {
                "0" => Some(Value::Bool(false)),
                "1" => Some(Value::Bool(true)),
                _ => s.trim().parse::<i64>().ok().map(|i| Value::Bool(i != 0)),
            },
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            // Cross-type ordering is arbitrary but total: Int < Str < Bool.
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Str(_) => 1,
        Value::Bool(_) => 2,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Interner state: the canonical `Arc<str>` per distinct string, plus the
/// high-water mark that triggers the next dead-symbol sweep.
struct SymbolsInner {
    set: HashSet<Arc<str>>,
    sweep_at: usize,
}

/// A per-database symbol table deduplicating [`Value::Str`] payloads.
///
/// Every table of one [`crate::Database`] shares a handle (clones share the
/// underlying set), so the same login/host/type string stored across
/// relations resolves to one allocation. The table holds one strong
/// reference per distinct symbol; when the set doubles past its high-water
/// mark, symbols no longer referenced by any row (`strong_count == 1`) are
/// swept, so deleted rows do not pin their strings forever.
#[derive(Clone)]
pub struct Symbols {
    inner: Arc<Mutex<SymbolsInner>>,
}

impl Symbols {
    /// Initial sweep threshold; doubles as the set grows.
    const SWEEP_FLOOR: usize = 4096;

    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Symbols {
            inner: Arc::new(Mutex::new(SymbolsInner {
                set: HashSet::new(),
                sweep_at: Self::SWEEP_FLOOR,
            })),
        }
    }

    /// Returns the canonical `Arc` for `s`, inserting it if new.
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut inner = self.inner.lock();
        if let Some(a) = inner.set.get(s) {
            return a.clone();
        }
        if inner.set.len() >= inner.sweep_at {
            inner.set.retain(|a| Arc::strong_count(a) > 1);
            inner.sweep_at = (inner.set.len() * 2).max(Self::SWEEP_FLOOR);
        }
        let a: Arc<str> = Arc::from(s);
        inner.set.insert(a.clone());
        a
    }

    /// Rewrites a string value to its canonical `Arc` in place; other value
    /// kinds pass through untouched. Already-canonical values return their
    /// own `Arc` without allocating.
    pub fn intern_value(&self, v: &mut Value) {
        if let Value::Str(s) = v {
            if let Some(a) = self.inner.lock().set.get(s.as_ref()) {
                *s = a.clone();
                return;
            }
            *s = self.intern(s.as_ref());
        }
    }

    /// Number of distinct symbols currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().set.len()
    }

    /// True when no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Symbols {
    fn default() -> Self {
        Symbols::new()
    }
}

impl fmt::Debug for Symbols {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Symbols").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_int() {
        let v = Value::Int(-42);
        assert_eq!(v.render(), "-42");
        assert_eq!(Value::parse(ColType::Int, "-42"), Some(v));
        assert_eq!(Value::parse(ColType::Int, "x"), None);
    }

    #[test]
    fn render_and_parse_bool() {
        assert_eq!(Value::Bool(true).render(), "1");
        assert_eq!(Value::parse(ColType::Bool, "0"), Some(Value::Bool(false)));
        assert_eq!(Value::parse(ColType::Bool, "7"), Some(Value::Bool(true)));
        assert_eq!(Value::parse(ColType::Bool, "maybe"), None);
    }

    #[test]
    fn parse_str_is_verbatim() {
        assert_eq!(
            Value::parse(ColType::Str, "  spaced  "),
            Some(Value::Str("  spaced  ".into()))
        );
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn ordering_total_across_types() {
        let mut vals = [
            Value::Bool(true),
            Value::Str("m".into()),
            Value::Int(3),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[3], Value::Bool(true));
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_mismatch() {
        Value::Str("x".into()).as_int();
    }

    #[test]
    fn interning_dedupes_by_pointer() {
        let syms = Symbols::new();
        let a = syms.intern("athena");
        let b = syms.intern("athena");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(syms.len(), 1);

        let mut v = Value::Str("athena".into());
        let before = match &v {
            Value::Str(s) => s.clone(),
            _ => unreachable!(),
        };
        assert!(!Arc::ptr_eq(&before, &a));
        syms.intern_value(&mut v);
        match &v {
            Value::Str(s) => assert!(Arc::ptr_eq(s, &a)),
            _ => unreachable!(),
        }
        // Non-string values pass through.
        let mut i = Value::Int(3);
        syms.intern_value(&mut i);
        assert_eq!(i, Value::Int(3));
    }

    #[test]
    fn interning_preserves_equality_and_order() {
        let syms = Symbols::new();
        let mut a = Value::Str("zeta".into());
        let b = Value::Str("zeta".into());
        syms.intern_value(&mut a);
        assert_eq!(a, b);
        assert_eq!(a.render(), "zeta");
        assert!(Value::Str("alpha".into()) < a);
    }

    #[test]
    fn sweep_drops_unreferenced_symbols() {
        let syms = Symbols::new();
        let kept = syms.intern("alive");
        // Flood with symbols nobody holds: the sweeps along the way drop
        // them but never the live one.
        for i in 0..2 * Symbols::SWEEP_FLOOR {
            let _ = syms.intern(&format!("dead{i}"));
        }
        assert!(
            syms.len() <= Symbols::SWEEP_FLOOR + 1,
            "sweep ran, len = {}",
            syms.len()
        );
        assert!(Arc::ptr_eq(&kept, &syms.intern("alive")));
    }
}
