//! The database: a collection of named tables sharing one virtual clock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use moira_common::clock::VClock;
use moira_common::errors::{MrError, MrResult};

use crate::query::Pred;
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::value::{Symbols, Value};

/// Process-wide source of database epochs. Every `Database::new` gets a
/// distinct epoch, so a state rebuilt from backup + journal replay is
/// distinguishable from the live state it replaces even when the replayed
/// generation counters happen to line up.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// A consistent snapshot of per-table mutation generations, taken for a
/// fixed set of tables. Consumers (the DCM's incremental generators) hold a
/// cursor and later ask whether it is still valid against the live database
/// and which tables advanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenCursor {
    /// Epoch of the database the cursor was cut from.
    pub epoch: u64,
    /// `table name -> generation` at cut time.
    pub gens: BTreeMap<&'static str, u64>,
}

impl GenCursor {
    /// True if deltas taken relative to this cursor are meaningful against
    /// `db`: same epoch, and no table's generation has moved *backwards*
    /// (which would mean the table was rebuilt under us).
    pub fn valid_for(&self, db: &Database) -> bool {
        self.epoch == db.epoch()
            && self
                .gens
                .iter()
                .all(|(name, &g)| db.table(name).generation() >= g)
    }

    /// The cursor's tables whose generation has advanced past the cursor.
    pub fn advanced_tables(&self, db: &Database) -> Vec<&'static str> {
        self.gens
            .iter()
            .filter(|&(name, &g)| db.table(name).generation() > g)
            .map(|(&name, _)| name)
            .collect()
    }

    /// True if the cursor is valid and nothing it covers has changed.
    pub fn unchanged_in(&self, db: &Database) -> bool {
        self.valid_for(db)
            && self
                .gens
                .iter()
                .all(|(name, &g)| db.table(name).generation() == g)
    }
}

/// A named-table database with a shared virtual clock for modtimes.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<&'static str, Table>,
    clock: VClock,
    epoch: u64,
    /// The shared string interner every table of this database dedupes
    /// `Value::Str` payloads through. Clones of the database share it (a
    /// clone carries the same content, so sharing symbols is free).
    symbols: Symbols,
    /// Obs registry handed to tables as they are created.
    obs: Option<moira_obs::Registry>,
}

impl Database {
    /// Creates an empty database on the given clock.
    pub fn new(clock: VClock) -> Self {
        Database {
            tables: BTreeMap::new(),
            clock,
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            symbols: Symbols::new(),
            obs: None,
        }
    }

    /// Creates an empty database carrying an *explicit* epoch — the
    /// crash-recovery constructor.
    ///
    /// `Database::new` mints a fresh epoch, which is exactly right for a
    /// rebuild-from-ASCII restore (every cached DCM build must be
    /// invalidated) and exactly wrong for durable recovery: a snapshot +
    /// WAL replay reconstructs the *same* history, so consumers holding a
    /// [`GenCursor`] cut before the crash must find it still valid. The
    /// process-wide epoch counter is advanced past the recovered value so
    /// databases created later can never collide with it.
    pub fn recovered(clock: VClock, epoch: u64) -> Self {
        NEXT_EPOCH.fetch_max(epoch.saturating_add(1), Ordering::Relaxed);
        Database {
            tables: BTreeMap::new(),
            clock,
            epoch,
            symbols: Symbols::new(),
            obs: None,
        }
    }

    /// This database's epoch. Distinct per `Database::new`; preserved by
    /// `Clone` (a clone carries the same content and history).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cuts a generation cursor over the named tables.
    ///
    /// # Panics
    ///
    /// Panics on unknown table names, like [`Database::table`].
    pub fn cursor(&self, tables: &[&'static str]) -> GenCursor {
        GenCursor {
            epoch: self.epoch,
            gens: tables
                .iter()
                .map(|&name| (name, self.table(name).generation()))
                .collect(),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// Current time in unix seconds (shorthand for `clock().now()`).
    pub fn now(&self) -> i64 {
        self.clock.now()
    }

    /// Creates a table; replaces any previous table of the same name. The
    /// new table shares the database's string interner and obs registry.
    pub fn create_table(&mut self, schema: TableSchema) {
        let mut table = Table::new(schema);
        table.set_symbols(self.symbols.clone());
        if let Some(reg) = &self.obs {
            table.set_obs(reg);
        }
        self.tables.insert(table.schema().name, table);
    }

    /// Attaches an obs registry: every table (current and future) records
    /// its plan choices (`db.plan.*`) and `db.select.rows_examined` there.
    pub fn set_obs(&mut self, reg: &moira_obs::Registry) {
        for table in self.tables.values_mut() {
            table.set_obs(reg);
        }
        self.obs = Some(reg.clone());
    }

    /// The database's string interner.
    pub fn symbols(&self) -> &Symbols {
        &self.symbols
    }

    /// EXPLAIN: the plan description `pred` would run under on `table`.
    ///
    /// # Panics
    ///
    /// Panics on unknown table names, like [`Database::table`].
    pub fn explain(&self, table: &str, pred: &Pred) -> String {
        self.table(table).explain(pred)
    }

    /// Borrows a table.
    ///
    /// # Panics
    ///
    /// Panics on unknown table names — the schema is fixed at startup, so an
    /// unknown name is a programming error.
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no table {name}"))
    }

    /// Mutably borrows a table.
    ///
    /// # Panics
    ///
    /// Panics on unknown table names.
    pub fn table_mut(&mut self, name: &str) -> &mut Table {
        self.tables
            .get_mut(name)
            .unwrap_or_else(|| panic!("no table {name}"))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&'static str> {
        self.tables.keys().copied().collect()
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Appends a row, stamping the table's modtime with the current time.
    pub fn append(&mut self, table: &str, row: Vec<Value>) -> MrResult<RowId> {
        let now = self.now();
        self.table_mut(table).append(row, now)
    }

    /// Updates columns of a row, stamping the modtime.
    pub fn update(&mut self, table: &str, id: RowId, changes: &[(&str, Value)]) -> MrResult<()> {
        let now = self.now();
        self.table_mut(table).update(id, changes, now)
    }

    /// Deletes a row, stamping the modtime.
    pub fn delete(&mut self, table: &str, id: RowId) -> MrResult<()> {
        let now = self.now();
        self.table_mut(table).delete(id, now)
    }

    /// Selects matching row ids.
    pub fn select(&self, table: &str, pred: &Pred) -> Vec<RowId> {
        self.table(table).select(pred)
    }

    /// Deletes every matching row, stamping the modtime; returns the count.
    pub fn delete_where(&mut self, table: &str, pred: &Pred) -> usize {
        let now = self.now();
        self.table_mut(table).delete_where(pred, now)
    }

    /// Selects, requiring the result to identify *exactly one* row — the
    /// pervasive "must match exactly one" rule of the query catalog.
    ///
    /// Returns `not_found` when nothing matches and `MR_NOT_UNIQUE` when
    /// more than one row matches.
    pub fn select_exactly_one(
        &self,
        table: &str,
        pred: &Pred,
        not_found: MrError,
    ) -> MrResult<RowId> {
        let ids = self.select(table, pred);
        match ids.len() {
            0 => Err(not_found),
            1 => Ok(ids[0]),
            _ => Err(MrError::NotUnique),
        }
    }

    /// The value of `col` in row `id` of `table`.
    pub fn cell(&self, table: &str, id: RowId, col: &str) -> Value {
        self.table(table).cell(id, col).clone()
    }

    /// Total mutations (appends + updates + deletes) ever applied across all
    /// tables — a cheap generation counter: if it is unchanged across a
    /// handler invocation, the handler did not touch the database.
    pub fn mutation_count(&self) -> u64 {
        self.tables
            .values()
            .map(|t| {
                let s = t.stats();
                s.appends + s.updates + s.deletes
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn db() -> Database {
        let mut db = Database::new(VClock::new());
        db.create_table(TableSchema::new(
            "machine",
            vec![ColumnDef::str("name").unique(), ColumnDef::str("type")],
        ));
        db
    }

    #[test]
    fn crud_through_database() {
        let mut d = db();
        let id = d
            .append("machine", vec!["KIWI.MIT.EDU".into(), "VAX".into()])
            .unwrap();
        assert_eq!(d.cell("machine", id, "type"), Value::Str("VAX".into()));
        d.update("machine", id, &[("type", "RT".into())]).unwrap();
        assert_eq!(d.cell("machine", id, "type"), Value::Str("RT".into()));
        d.delete("machine", id).unwrap();
        assert!(d.select("machine", &Pred::True).is_empty());
    }

    #[test]
    fn modtime_tracks_clock() {
        let mut d = db();
        d.clock().set(777);
        d.append("machine", vec!["A".into(), "VAX".into()]).unwrap();
        assert_eq!(d.table("machine").stats().modtime, 777);
    }

    #[test]
    fn exactly_one_semantics() {
        let mut d = db();
        assert_eq!(
            d.select_exactly_one("machine", &Pred::True, MrError::Machine),
            Err(MrError::Machine)
        );
        let id = d.append("machine", vec!["A".into(), "VAX".into()]).unwrap();
        assert_eq!(
            d.select_exactly_one("machine", &Pred::True, MrError::Machine),
            Ok(id)
        );
        d.append("machine", vec!["B".into(), "VAX".into()]).unwrap();
        assert_eq!(
            d.select_exactly_one("machine", &Pred::True, MrError::Machine),
            Err(MrError::NotUnique)
        );
    }

    #[test]
    fn table_names_sorted() {
        let mut d = db();
        d.create_table(TableSchema::new("alias", vec![ColumnDef::str("name")]));
        assert_eq!(d.table_names(), vec!["alias", "machine"]);
        assert!(d.has_table("alias"));
        assert!(!d.has_table("bogus"));
    }

    #[test]
    #[should_panic(expected = "no table")]
    fn unknown_table_panics() {
        db().table("users");
    }

    #[test]
    fn epochs_distinct_per_database_but_shared_by_clones() {
        let a = db();
        let b = db();
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a.clone().epoch(), a.epoch());
    }

    #[test]
    fn recovered_epoch_is_explicit_and_reserved() {
        let original = db();
        let epoch = original.epoch();
        let back = Database::recovered(VClock::new(), epoch);
        assert_eq!(back.epoch(), epoch);
        // Later fresh databases never reuse a recovered epoch.
        assert!(db().epoch() > epoch);
        let far = Database::recovered(VClock::new(), epoch + 500);
        assert!(db().epoch() > far.epoch());
    }

    #[test]
    fn cursor_survives_recovered_database_with_same_epoch() {
        let mut d = db();
        d.append("machine", vec!["A".into(), "VAX".into()]).unwrap();
        let cur = d.cursor(&["machine"]);

        // Recovery path: same epoch, table state imported, then one more
        // mutation replayed on top.
        let mut back = Database::recovered(VClock::new(), d.epoch());
        back.create_table(d.table("machine").schema().clone());
        back.table_mut("machine")
            .import_image(&d.table("machine").export_image())
            .unwrap();
        assert!(cur.valid_for(&back));
        assert!(cur.unchanged_in(&back));

        back.append("machine", vec!["B".into(), "VAX".into()])
            .unwrap();
        assert!(cur.valid_for(&back));
        assert_eq!(cur.advanced_tables(&back), vec!["machine"]);

        // Contrast: a restore into a *fresh* database invalidates it.
        assert!(!cur.valid_for(&db()));
    }

    #[test]
    fn cursor_tracks_advancement_and_epoch() {
        let mut d = db();
        d.append("machine", vec!["A".into(), "VAX".into()]).unwrap();
        let cur = d.cursor(&["machine"]);
        assert!(cur.valid_for(&d));
        assert!(cur.unchanged_in(&d));
        assert!(cur.advanced_tables(&d).is_empty());

        d.append("machine", vec!["B".into(), "VAX".into()]).unwrap();
        assert!(cur.valid_for(&d));
        assert!(!cur.unchanged_in(&d));
        assert_eq!(cur.advanced_tables(&d), vec!["machine"]);

        // A freshly built database (restore/replay) has a new epoch: the
        // cursor is invalid even if the generation counters line up.
        let mut fresh = db();
        fresh
            .append("machine", vec!["A".into(), "VAX".into()])
            .unwrap();
        fresh
            .append("machine", vec!["B".into(), "VAX".into()])
            .unwrap();
        assert!(!cur.valid_for(&fresh));
        assert!(!cur.unchanged_in(&fresh));
    }
}
