//! Tables: slab-stored rows, secondary indexes, planner-driven predicate
//! selection, and the per-table statistics behind the TBLSTATS relation (§6).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

use moira_common::errors::{MrError, MrResult};

use crate::plan::{self, Plan, PlanStats};
use crate::query::Pred;
use crate::schema::TableSchema;
use crate::value::{ColType, Symbols, Value};

/// Identifier of a row within one table (stable across updates, reused only
/// after deletion).
pub type RowId = usize;

/// Mutation counters for one table — the raw material of TBLSTATS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Rows appended over the table's lifetime.
    pub appends: u64,
    /// In-place updates.
    pub updates: u64,
    /// Deletions.
    pub deletes: u64,
    /// Unix time of the last append/update/delete.
    pub modtime: i64,
    /// Monotonic mutation generation: bumped exactly once per
    /// append/update/delete, so per-table generations sum to
    /// `Database::mutation_count`. Unlike `modtime` (seconds granularity)
    /// two mutations can never share a generation.
    pub generation: u64,
}

/// One entry of a [`Table::changed_since`] cursor read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowChange {
    /// The row is live and was appended or updated after the cursor.
    /// A reused slot reports as `Upserted` — consumers replace by id.
    Upserted(RowId),
    /// The row was deleted after the cursor and its slot is still free.
    Deleted(RowId),
}

impl RowChange {
    /// The row id the change applies to.
    pub fn id(&self) -> RowId {
        match *self {
            RowChange::Upserted(id) | RowChange::Deleted(id) => id,
        }
    }
}

/// A faithful copy of a table's mutation state, for durable snapshots.
///
/// Unlike the ASCII backup dump (which keeps only live row *values*), an
/// image preserves everything `changed_since` and slot reuse depend on: row
/// ids, per-row generation stamps, tombstones, the free-list *order* (the
/// slab hands slots back LIFO, so order decides which ids future appends
/// get), and the lifetime statistics. Importing an image and replaying the
/// same mutations therefore lands every row in the same slot with the same
/// generation as the original — the property the crash-recovery torture
/// test asserts byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableImage {
    /// Live rows: `(slot id, generation stamp, values)`, in id order.
    pub rows: Vec<(RowId, u64, Vec<Value>)>,
    /// Tombstones: `(slot id, generation of the delete)`.
    pub dead: Vec<(RowId, u64)>,
    /// The free list, bottom of the stack first (appends pop from the end).
    pub free: Vec<RowId>,
    /// Lifetime mutation statistics.
    pub stats: TableStats,
}

/// Cached obs handles for the planner instruments, resolved once when the
/// registry is attached so the hot select path does not look names up.
#[derive(Clone)]
struct PlanObs {
    point: moira_obs::Counter,
    intersect: moira_obs::Counter,
    range: moira_obs::Counter,
    scan: moira_obs::Counter,
    rows_examined: moira_obs::Histo,
}

impl PlanObs {
    fn new(reg: &moira_obs::Registry) -> Self {
        PlanObs {
            point: reg.counter("db.plan.point"),
            intersect: reg.counter("db.plan.intersect"),
            range: reg.counter("db.plan.range"),
            scan: reg.counter("db.plan.scan"),
            rows_examined: reg.histogram("db.select.rows_examined"),
        }
    }
}

impl fmt::Debug for PlanObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PlanObs")
    }
}

/// A table: schema, row slab, secondary indexes, statistics.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Vec<Value>>>,
    /// Parallel to `rows`: the table generation at which each slot last
    /// changed (stamp taken after the bump, so stamps start at 1).
    row_gens: Vec<u64>,
    free: Vec<RowId>,
    live: usize,
    /// Tombstones: slot -> generation of the delete. Cleared when the slab
    /// free-list hands the slot back out, at which point the reused slot
    /// reports as `Upserted` instead.
    dead: BTreeMap<RowId, u64>,
    /// `column index -> value -> row ids`, ids kept sorted within a bucket
    /// so `select` needs no post-sort, `select_one` takes the first
    /// survivor, and `IndexIntersect` merges buckets linearly.
    indexes: BTreeMap<usize, BTreeMap<Value, Vec<RowId>>>,
    /// Case-folded companions for indexed *string* columns:
    /// `column index -> lowercased value -> row ids` (sorted). These serve
    /// the `EqCi`/`LikeCi` predicates (machine and service names), which
    /// would otherwise scan no matter what.
    indexes_ci: BTreeMap<usize, BTreeMap<String, Vec<RowId>>>,
    /// The owning database's string interner (a private one until the table
    /// is attached via [`Table::set_symbols`]).
    symbols: Symbols,
    obs: Option<PlanObs>,
    stats: TableStats,
}

impl Table {
    /// Creates an empty table from a schema.
    pub fn new(schema: TableSchema) -> Self {
        let indexes = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed)
            .map(|(i, _)| (i, BTreeMap::new()))
            .collect();
        let indexes_ci = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed && c.ty == ColType::Str)
            .map(|(i, _)| (i, BTreeMap::new()))
            .collect();
        Table {
            schema,
            rows: Vec::new(),
            row_gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            dead: BTreeMap::new(),
            indexes,
            indexes_ci,
            symbols: Symbols::new(),
            obs: None,
            stats: TableStats::default(),
        }
    }

    /// Points the table at a shared string interner. The database attaches
    /// its per-database [`Symbols`] when the table is created, before any
    /// row exists; already-stored rows are not re-interned.
    pub fn set_symbols(&mut self, symbols: Symbols) {
        self.symbols = symbols;
    }

    /// Attaches an obs registry: plan-choice counters
    /// (`db.plan.{point,intersect,range,scan}`) and the
    /// `db.select.rows_examined` histogram.
    pub fn set_obs(&mut self, reg: &moira_obs::Registry) {
        self.obs = Some(PlanObs::new(reg));
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Mutation statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Current mutation generation (0 for a pristine table).
    pub fn generation(&self) -> u64 {
        self.stats.generation
    }

    /// Every row whose last change is newer than `gen`, in id order.
    ///
    /// Live rows stamped after the cursor report as [`RowChange::Upserted`]
    /// (covering both fresh appends and in-place updates); freed slots whose
    /// delete landed after the cursor report as [`RowChange::Deleted`].
    /// `changed_since(0)` enumerates every live row plus outstanding
    /// tombstones, and `changed_since(self.generation())` is empty.
    pub fn changed_since(&self, gen: u64) -> Vec<RowChange> {
        let mut changes: Vec<RowChange> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(id, row)| row.is_some() && self.row_gens[*id] > gen)
            .map(|(id, _)| RowChange::Upserted(id))
            .collect();
        changes.extend(
            self.dead
                .iter()
                .filter(|&(_, &g)| g > gen)
                .map(|(&id, _)| RowChange::Deleted(id)),
        );
        changes.sort_unstable_by_key(|c| c.id());
        changes
    }

    /// Index of a column; panics on unknown names (schema bugs, not runtime
    /// conditions).
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist in this table.
    pub fn col(&self, name: &str) -> usize {
        self.schema
            .col(name)
            .unwrap_or_else(|| panic!("no column {name} in table {}", self.schema.name))
    }

    fn check_row(&self, row: &[Value]) -> MrResult<()> {
        if row.len() != self.schema.arity() {
            return Err(MrError::Internal);
        }
        for (val, def) in row.iter().zip(&self.schema.columns) {
            if val.col_type() != def.ty {
                return Err(MrError::Internal);
            }
            if def.max_len > 0 {
                if let Value::Str(s) = val {
                    if s.len() > def.max_len {
                        return Err(MrError::ArgTooLong);
                    }
                }
            }
        }
        Ok(())
    }

    fn check_unique(&self, row: &[Value], exempt: Option<RowId>) -> MrResult<()> {
        for (i, def) in self.schema.columns.iter().enumerate() {
            if !def.unique {
                continue;
            }
            if let Some(ids) = self.indexes.get(&i).and_then(|ix| ix.get(&row[i])) {
                if ids.iter().any(|&id| Some(id) != exempt) {
                    return Err(MrError::Exists);
                }
            }
        }
        Ok(())
    }

    fn index_insert(&mut self, id: RowId, row: &[Value]) {
        for (&col, index) in self.indexes.iter_mut() {
            let ids = index.entry(row[col].clone()).or_default();
            if let Err(pos) = ids.binary_search(&id) {
                ids.insert(pos, id);
            }
        }
        for (&col, index) in self.indexes_ci.iter_mut() {
            if let Value::Str(s) = &row[col] {
                let ids = index.entry(s.to_ascii_lowercase()).or_default();
                if let Err(pos) = ids.binary_search(&id) {
                    ids.insert(pos, id);
                }
            }
        }
    }

    fn index_remove(&mut self, id: RowId, row: &[Value]) {
        for (&col, index) in self.indexes.iter_mut() {
            if let Some(ids) = index.get_mut(&row[col]) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    index.remove(&row[col]);
                }
            }
        }
        for (&col, index) in self.indexes_ci.iter_mut() {
            if let Value::Str(s) = &row[col] {
                let folded = s.to_ascii_lowercase();
                if let Some(ids) = index.get_mut(&folded) {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        index.remove(&folded);
                    }
                }
            }
        }
    }

    /// Appends a row, returning its id.
    ///
    /// Fails with `MR_EXISTS` on unique-column conflicts, `MR_ARG_TOO_LONG`
    /// on over-long strings, and `MR_INTERNAL` on arity or type mismatch.
    pub fn append(&mut self, mut row: Vec<Value>, now: i64) -> MrResult<RowId> {
        self.check_row(&row)?;
        self.check_unique(&row, None)?;
        for v in &mut row {
            self.symbols.intern_value(v);
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.dead.remove(&id);
                id
            }
            None => {
                self.rows.push(None);
                self.row_gens.push(0);
                self.rows.len() - 1
            }
        };
        self.index_insert(id, &row);
        self.rows[id] = Some(row);
        self.live += 1;
        self.stats.appends += 1;
        self.stats.modtime = now;
        self.stats.generation += 1;
        self.row_gens[id] = self.stats.generation;
        Ok(id)
    }

    /// Borrows a live row.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.rows.get(id).and_then(|r| r.as_deref())
    }

    /// Chooses an access path for `pred` — see [`crate::plan`].
    pub fn plan(&self, pred: &Pred) -> Plan {
        plan::choose(pred, self)
    }

    /// EXPLAIN: the one-line description of the plan `pred` would run
    /// under, e.g. `IndexPoint(login=kit)` or `Scan`.
    pub fn explain(&self, pred: &Pred) -> String {
        self.plan(pred).describe()
    }

    /// The candidate row ids a plan narrows to, sorted ascending, or `None`
    /// for the scan fallback. Candidates still need predicate evaluation —
    /// a plan only bounds where matches can live.
    fn plan_candidates(&self, plan: &Plan) -> Option<Vec<RowId>> {
        match plan {
            Plan::IndexPoint { col, value, ci } => {
                let c = self.col(col);
                let bucket = if *ci {
                    self.indexes_ci
                        .get(&c)
                        .and_then(|ix| ix.get(value.as_str()))
                } else {
                    self.indexes.get(&c).and_then(|ix| ix.get(value))
                };
                Some(bucket.cloned().unwrap_or_default())
            }
            Plan::IndexIntersect { terms } => {
                let mut merged: Option<Vec<RowId>> = None;
                for (col, value) in terms {
                    let c = self.col(col);
                    let bucket = self
                        .indexes
                        .get(&c)
                        .and_then(|ix| ix.get(value))
                        .map(|ids| ids.as_slice())
                        .unwrap_or(&[]);
                    merged = Some(match merged {
                        None => bucket.to_vec(),
                        Some(prev) => intersect_sorted(&prev, bucket),
                    });
                }
                Some(merged.unwrap_or_default())
            }
            Plan::IndexRange { col, prefix, ci } => {
                let c = self.col(col);
                let mut ids: Vec<RowId> = Vec::new();
                if *ci {
                    if let Some(ix) = self.indexes_ci.get(&c) {
                        for (_, bucket) in range_ci(ix, prefix) {
                            ids.extend_from_slice(bucket);
                        }
                    }
                } else if let Some(ix) = self.indexes.get(&c) {
                    for (_, bucket) in range_cs(ix, prefix) {
                        ids.extend_from_slice(bucket);
                    }
                }
                // Buckets are sorted but interleave across keys.
                ids.sort_unstable();
                Some(ids)
            }
            Plan::Scan => None,
        }
    }

    /// Records the plan choice and the rows actually examined.
    fn note_plan(&self, plan: &Plan, examined: usize) {
        if let Some(obs) = &self.obs {
            match plan {
                Plan::IndexPoint { .. } => obs.point.inc(),
                Plan::IndexIntersect { .. } => obs.intersect.inc(),
                Plan::IndexRange { .. } => obs.range.inc(),
                Plan::Scan => obs.scan.inc(),
            }
            obs.rows_examined.record(examined as u64);
        }
    }

    /// Returns the ids of rows matching a predicate, in id order, through
    /// the planner: an index bucket, a bucket merge, a prefix walk, or the
    /// scan fallback — whichever the cost model picks.
    pub fn select(&self, pred: &Pred) -> Vec<RowId> {
        let col_of = |name: &str| self.col(name);
        let plan = self.plan(pred);
        match self.plan_candidates(&plan) {
            Some(cands) => {
                self.note_plan(&plan, cands.len());
                cands
                    .into_iter()
                    .filter(|&id| self.get(id).is_some_and(|row| pred.eval(row, &col_of)))
                    .collect()
            }
            None => {
                self.note_plan(&plan, self.live);
                self.select_scan(pred)
            }
        }
    }

    /// Forced full-scan evaluation, bypassing the planner — the oracle the
    /// property tests and the bench baseline compare plans against.
    pub fn select_scan(&self, pred: &Pred) -> Vec<RowId> {
        let col_of = |name: &str| self.col(name);
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(id, row)| row.as_ref().filter(|r| pred.eval(r, &col_of)).map(|_| id))
            .collect()
    }

    /// Returns the lowest matching row id, if any, without materializing
    /// the full match set: candidates come sorted from the plan (buckets
    /// are kept sorted), so the first survivor is the minimum; the scan
    /// path stops at the first hit.
    pub fn select_one(&self, pred: &Pred) -> Option<RowId> {
        let col_of = |name: &str| self.col(name);
        let plan = self.plan(pred);
        let mut examined = 0usize;
        let hit = match self.plan_candidates(&plan) {
            Some(cands) => cands.into_iter().find(|&id| {
                examined += 1;
                self.get(id).is_some_and(|row| pred.eval(row, &col_of))
            }),
            None => self.rows.iter().enumerate().find_map(|(id, row)| {
                row.as_ref()
                    .filter(|r| {
                        examined += 1;
                        pred.eval(r, &col_of)
                    })
                    .map(|_| id)
            }),
        };
        self.note_plan(&plan, examined);
        hit
    }

    /// Counts matching rows without materializing ids.
    pub fn count(&self, pred: &Pred) -> usize {
        let col_of = |name: &str| self.col(name);
        let plan = self.plan(pred);
        match self.plan_candidates(&plan) {
            Some(cands) => {
                self.note_plan(&plan, cands.len());
                cands
                    .iter()
                    .filter(|&&id| self.get(id).is_some_and(|row| pred.eval(row, &col_of)))
                    .count()
            }
            None => {
                self.note_plan(&plan, self.live);
                self.rows
                    .iter()
                    .filter(|row| row.as_ref().is_some_and(|r| pred.eval(r, &col_of)))
                    .count()
            }
        }
    }

    /// Updates named columns of a row in place.
    pub fn update(&mut self, id: RowId, changes: &[(&str, Value)], now: i64) -> MrResult<()> {
        let old = self
            .rows
            .get(id)
            .and_then(|r| r.clone())
            .ok_or(MrError::NoMatch)?;
        let mut new = old.clone();
        for (name, value) in changes {
            let col = self.schema.col(name).ok_or(MrError::Internal)?;
            let mut v = value.clone();
            self.symbols.intern_value(&mut v);
            new[col] = v;
        }
        self.check_row(&new)?;
        self.check_unique(&new, Some(id))?;
        self.index_remove(id, &old);
        self.index_insert(id, &new);
        self.rows[id] = Some(new);
        self.stats.updates += 1;
        self.stats.modtime = now;
        self.stats.generation += 1;
        self.row_gens[id] = self.stats.generation;
        Ok(())
    }

    /// Deletes a row.
    pub fn delete(&mut self, id: RowId, now: i64) -> MrResult<()> {
        let old = self
            .rows
            .get(id)
            .and_then(|r| r.clone())
            .ok_or(MrError::NoMatch)?;
        self.index_remove(id, &old);
        self.rows[id] = None;
        self.free.push(id);
        self.live -= 1;
        self.stats.deletes += 1;
        self.stats.modtime = now;
        self.stats.generation += 1;
        self.row_gens[id] = self.stats.generation;
        self.dead.insert(id, self.stats.generation);
        Ok(())
    }

    /// Deletes every row matching the predicate, returning how many went.
    pub fn delete_where(&mut self, pred: &Pred, now: i64) -> usize {
        let ids = self.select(pred);
        let n = ids.len();
        for id in ids {
            let _ = self.delete(id, now);
        }
        n
    }

    /// Iterates `(id, row)` over live rows in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_deref().map(|row| (id, row)))
    }

    /// Exports the table's full mutation state for a durable snapshot.
    pub fn export_image(&self) -> TableImage {
        TableImage {
            rows: self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(id, r)| r.as_ref().map(|row| (id, self.row_gens[id], row.clone())))
                .collect(),
            dead: self.dead.iter().map(|(&id, &g)| (id, g)).collect(),
            free: self.free.clone(),
            stats: self.stats,
        }
    }

    /// Restores the state captured by [`Table::export_image`] into this
    /// (pristine) table: rows land in their original slots with their
    /// original generation stamps, tombstones and free-list order return,
    /// and the statistics resume where they left off.
    ///
    /// Fails with `MR_EXISTS` if the table has ever been mutated, and
    /// `MR_INTERNAL` on arity/type mismatches or ids that overlap between
    /// the live and free sets — a corrupt image must not half-apply.
    pub fn import_image(&mut self, image: &TableImage) -> MrResult<()> {
        if self.stats.generation != 0 || !self.is_empty() {
            return Err(MrError::Exists);
        }
        for (_, _, row) in &image.rows {
            self.check_row(row)?;
        }
        let slab_len = image
            .rows
            .iter()
            .map(|&(id, _, _)| id + 1)
            .chain(image.free.iter().map(|&id| id + 1))
            .max()
            .unwrap_or(0);
        let mut rows: Vec<Option<Vec<Value>>> = vec![None; slab_len];
        let mut row_gens = vec![0u64; slab_len];
        for &(id, gen, ref values) in &image.rows {
            if rows[id].is_some() {
                return Err(MrError::Internal);
            }
            let mut row = values.clone();
            for v in &mut row {
                self.symbols.intern_value(v);
            }
            rows[id] = Some(row);
            row_gens[id] = gen;
        }
        for &(id, gen) in &image.dead {
            if id >= slab_len || rows[id].is_some() {
                return Err(MrError::Internal);
            }
            row_gens[id] = gen;
        }
        for &id in &image.free {
            if id >= slab_len || rows[id].is_some() {
                return Err(MrError::Internal);
            }
        }
        self.rows = rows;
        self.row_gens = row_gens;
        self.free = image.free.clone();
        self.live = image.rows.len();
        self.dead = image.dead.iter().copied().collect();
        self.stats = image.stats;
        // Index from the interned copies so index keys share the row Arcs.
        let inserts: Vec<(RowId, Vec<Value>)> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_ref().map(|row| (id, row.clone())))
            .collect();
        for (id, row) in inserts {
            self.index_insert(id, &row);
        }
        Ok(())
    }

    /// Convenience: the value of `col` in row `id`.
    ///
    /// # Panics
    ///
    /// Panics if the row is dead or the column unknown.
    pub fn cell(&self, id: RowId, col: &str) -> &Value {
        let c = self.col(col);
        &self.get(id).expect("live row")[c]
    }
}

impl PlanStats for Table {
    fn is_indexed(&self, col: &str) -> bool {
        self.schema
            .col(col)
            .is_some_and(|c| self.indexes.contains_key(&c))
    }

    fn has_folded_index(&self, col: &str) -> bool {
        self.schema
            .col(col)
            .is_some_and(|c| self.indexes_ci.contains_key(&c))
    }

    fn bucket_len(&self, col: &str, value: &Value) -> usize {
        self.schema
            .col(col)
            .and_then(|c| self.indexes.get(&c))
            .and_then(|ix| ix.get(value))
            .map_or(0, Vec::len)
    }

    fn folded_bucket_len(&self, col: &str, folded: &str) -> usize {
        self.schema
            .col(col)
            .and_then(|c| self.indexes_ci.get(&c))
            .and_then(|ix| ix.get(folded))
            .map_or(0, Vec::len)
    }

    fn range_len(&self, col: &str, prefix: &str, ci: bool, budget: usize) -> usize {
        let Some(c) = self.schema.col(col) else {
            return 0;
        };
        let mut total = 0usize;
        if ci {
            if let Some(ix) = self.indexes_ci.get(&c) {
                for (_, bucket) in range_ci(ix, prefix) {
                    total += bucket.len();
                    if total >= budget {
                        break;
                    }
                }
            }
        } else if let Some(ix) = self.indexes.get(&c) {
            for (_, bucket) in range_cs(ix, prefix) {
                total += bucket.len();
                if total >= budget {
                    break;
                }
            }
        }
        total
    }

    fn slab_len(&self) -> usize {
        self.rows.len()
    }

    fn live_len(&self) -> usize {
        self.live
    }
}

/// Intersection of two ascending id slices, two-pointer merge.
fn intersect_sorted(a: &[RowId], b: &[RowId]) -> Vec<RowId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The entries of a case-sensitive string index whose key starts with
/// `prefix`, in key order.
fn range_cs<'a>(
    ix: &'a BTreeMap<Value, Vec<RowId>>,
    prefix: &str,
) -> impl Iterator<Item = (&'a Value, &'a Vec<RowId>)> {
    let start = Bound::Included(Value::Str(prefix.into()));
    let end = match plan::prefix_upper_bound(prefix) {
        Some(upper) => Bound::Excluded(Value::Str(upper.as_str().into())),
        None => Bound::Unbounded,
    };
    ix.range((start, end))
        .filter(|(k, _)| matches!(k, Value::Str(_)))
}

/// The entries of a case-folded index whose (lowercased) key starts with
/// the (lowercased) `prefix`, in key order.
fn range_ci<'a>(
    ix: &'a BTreeMap<String, Vec<RowId>>,
    prefix: &str,
) -> impl Iterator<Item = (&'a String, &'a Vec<RowId>)> {
    let start = Bound::Included(prefix.to_owned());
    let end = match plan::prefix_upper_bound(prefix) {
        Some(upper) => Bound::Excluded(upper),
        None => Bound::Unbounded,
    };
    ix.range((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn users_table() -> Table {
        Table::new(TableSchema::new(
            "users",
            vec![
                ColumnDef::str("login").unique().max_len(8),
                ColumnDef::int("uid").indexed(),
                ColumnDef::boolean("active"),
            ],
        ))
    }

    fn row(login: &str, uid: i64, active: bool) -> Vec<Value> {
        vec![login.into(), uid.into(), active.into()]
    }

    #[test]
    fn append_and_get() {
        let mut t = users_table();
        let id = t.append(row("babette", 6530, true), 100).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[0], Value::Str("babette".into()));
        assert_eq!(t.stats().appends, 1);
        assert_eq!(t.stats().modtime, 100);
    }

    #[test]
    fn unique_violation() {
        let mut t = users_table();
        t.append(row("babette", 6530, true), 0).unwrap();
        assert_eq!(
            t.append(row("babette", 6531, true), 0),
            Err(MrError::Exists)
        );
    }

    #[test]
    fn arg_too_long() {
        let mut t = users_table();
        assert_eq!(
            t.append(row("waytoolongname", 1, true), 0),
            Err(MrError::ArgTooLong)
        );
    }

    #[test]
    fn type_mismatch_is_internal() {
        let mut t = users_table();
        let bad = vec![Value::Int(1), Value::Int(2), Value::Bool(true)];
        assert_eq!(t.append(bad, 0), Err(MrError::Internal));
    }

    #[test]
    fn select_by_index_and_scan() {
        let mut t = users_table();
        for i in 0..100 {
            t.append(row(&format!("u{i}"), 6000 + i, i % 2 == 0), 0)
                .unwrap();
        }
        let hits = t.select(&Pred::Eq("uid", 6042.into()));
        assert_eq!(hits.len(), 1);
        assert_eq!(t.cell(hits[0], "login"), &Value::Str("u42".into()));
        // Wildcard forces a scan.
        let scans = t.select(&Pred::Like("login", "u4?".into()));
        assert_eq!(scans.len(), 10);
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = users_table();
        let id = t.append(row("old", 1, true), 0).unwrap();
        t.update(id, &[("login", "new".into()), ("uid", Value::Int(2))], 5)
            .unwrap();
        assert!(t.select(&Pred::Eq("login", "old".into())).is_empty());
        assert_eq!(t.select(&Pred::Eq("login", "new".into())), vec![id]);
        assert_eq!(t.select(&Pred::Eq("uid", 2.into())), vec![id]);
        assert_eq!(t.stats().updates, 1);
        assert_eq!(t.stats().modtime, 5);
    }

    #[test]
    fn update_unique_conflict_leaves_row_unchanged() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.append(row("b", 2, true), 0).unwrap();
        assert_eq!(
            t.update(a, &[("login", "b".into())], 0),
            Err(MrError::Exists)
        );
        assert_eq!(t.cell(a, "login"), &Value::Str("a".into()));
    }

    #[test]
    fn update_to_same_unique_value_allowed() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.update(a, &[("login", "a".into()), ("uid", Value::Int(9))], 0)
            .unwrap();
        assert_eq!(t.cell(a, "uid"), &Value::Int(9));
    }

    #[test]
    fn delete_frees_and_reuses_slots() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.delete(a, 1).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(a), None);
        assert_eq!(t.delete(a, 1), Err(MrError::NoMatch));
        let b = t.append(row("b", 2, true), 2).unwrap();
        assert_eq!(b, a, "slot reused");
        // The unique value of the deleted row is free again.
        t.append(row("a", 3, true), 3).unwrap();
    }

    #[test]
    fn delete_where_counts() {
        let mut t = users_table();
        for i in 0..10 {
            t.append(row(&format!("u{i}"), i, i % 2 == 0), 0).unwrap();
        }
        let gone = t.delete_where(&Pred::Eq("active", false.into()), 9);
        assert_eq!(gone, 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.stats().deletes, 5);
    }

    #[test]
    fn select_one_and_count_agree_with_select() {
        let mut t = users_table();
        for i in 0..50 {
            t.append(row(&format!("u{i}"), 6000 + (i % 7), i % 2 == 0), 0)
                .unwrap();
        }
        // Delete a few so the slab has holes and the index buckets shrink.
        for id in t.select(&Pred::Eq("uid", 6003.into())) {
            t.delete(id, 1).unwrap();
        }
        let preds = [
            Pred::True,
            Pred::Eq("uid", 6002.into()),      // indexed column
            Pred::Eq("uid", 9999.into()),      // indexed, no matches
            Pred::Eq("active", true.into()),   // unindexed scan
            Pred::Like("login", "u1?".into()), // wildcard scan
            Pred::Like("login", "zz*".into()), // scan, no matches
        ];
        for pred in &preds {
            let full = t.select(pred);
            assert_eq!(t.select_one(pred), full.first().copied(), "{pred:?}");
            assert_eq!(t.count(pred), full.len(), "{pred:?}");
        }
    }

    #[test]
    fn index_buckets_stay_sorted_across_slot_reuse() {
        let mut t = users_table();
        // Slot 0 freed and reused later: insertion order into the uid-7000
        // bucket is 0, 1, 2, then 0 again — the bucket must come back
        // sorted so select needs no post-sort and select_one takes the
        // first survivor.
        let a = t.append(row("gone", 7000, true), 0).unwrap();
        t.append(row("b", 7000, true), 0).unwrap();
        t.append(row("c", 7000, true), 0).unwrap();
        t.delete(a, 0).unwrap();
        let reused = t.append(row("d", 7000, true), 0).unwrap();
        assert_eq!(reused, a);
        assert_eq!(t.select(&Pred::Eq("uid", 7000.into())), vec![0, 1, 2]);
        assert_eq!(t.select_one(&Pred::Eq("uid", 7000.into())), Some(a));
        assert_eq!(
            t.select_one(&Pred::Eq("uid", 7000.into())),
            t.select(&Pred::Eq("uid", 7000.into())).first().copied()
        );
    }

    fn members_table() -> Table {
        Table::new(TableSchema::new(
            "members",
            vec![
                ColumnDef::int("list_id").indexed(),
                ColumnDef::int("member_id").indexed(),
                ColumnDef::str("tag"),
            ],
        ))
    }

    #[test]
    fn explain_picks_point_range_and_scan() {
        let mut t = users_table();
        for i in 0..200 {
            t.append(row(&format!("u{i}"), 6000 + i, true), 0).unwrap();
        }
        assert_eq!(
            t.explain(&Pred::Eq("uid", 6042.into())),
            "IndexPoint(uid=6042)"
        );
        assert_eq!(
            t.explain(&Pred::Like("login", "u4?".into())),
            "IndexRange(login \"u4*\")"
        );
        // No literal prefix, and no index on `active` — scans.
        assert_eq!(t.explain(&Pred::Like("login", "*4".into())), "Scan");
        assert_eq!(t.explain(&Pred::Eq("active", true.into())), "Scan");
        assert_eq!(t.explain(&Pred::True), "Scan");
    }

    #[test]
    fn range_plan_matches_scan_results() {
        let mut t = users_table();
        for i in 0..300 {
            t.append(row(&format!("u{i}"), 6000 + i, i % 3 == 0), 0)
                .unwrap();
        }
        let pred = Pred::Like("login", "u1*".into());
        assert!(t.explain(&pred).starts_with("IndexRange"));
        let via_plan = t.select(&pred);
        assert_eq!(via_plan, t.select_scan(&pred));
        assert_eq!(via_plan.len(), 111); // u1, u10..u19, u100..u199
        assert_eq!(t.select_one(&pred), via_plan.first().copied());
        assert_eq!(t.count(&pred), via_plan.len());
    }

    #[test]
    fn case_insensitive_predicates_use_folded_index() {
        let mut t = Table::new(TableSchema::new(
            "machine",
            vec![ColumnDef::str("name").unique(), ColumnDef::str("type")],
        ));
        for i in 0..100 {
            t.append(vec![format!("HOST{i}.MIT.EDU").into(), "VAX".into()], 0)
                .unwrap();
        }
        let eq = Pred::EqCi("name", "host42.mit.edu".into());
        assert_eq!(t.explain(&eq), "IndexPoint(name ci=host42.mit.edu)");
        assert_eq!(t.select(&eq), t.select_scan(&eq));
        assert_eq!(t.select(&eq).len(), 1);

        let like = Pred::LikeCi("name", "host9*".into());
        assert_eq!(t.explain(&like), "IndexRange(name ci \"host9*\")");
        assert_eq!(t.select(&like), t.select_scan(&like));
        assert_eq!(t.select(&like).len(), 11); // HOST9, HOST90..HOST99

        // The folded index tracks updates and deletes.
        let id = t.select_one(&eq).unwrap();
        t.update(id, &[("name", "RENAMED.MIT.EDU".into())], 1)
            .unwrap();
        assert!(t.select(&eq).is_empty());
        let renamed = Pred::EqCi("name", "renamed.mit.edu".into());
        assert_eq!(t.select(&renamed), vec![id]);
        t.delete(id, 2).unwrap();
        assert!(t.select(&renamed).is_empty());
    }

    #[test]
    fn conjunction_intersects_two_buckets() {
        let mut t = members_table();
        // 64 lists x 64 members: every bucket holds 64 ids, any pair
        // intersects in exactly one row.
        for list in 0..64 {
            for member in 0..64 {
                t.append(vec![list.into(), member.into(), "m".into()], 0)
                    .unwrap();
            }
        }
        let pred = Pred::And(vec![
            Pred::Eq("list_id", 7.into()),
            Pred::Eq("member_id", 44.into()),
        ]);
        assert_eq!(t.explain(&pred), "IndexIntersect(list_id=7 & member_id=44)");
        assert_eq!(t.select(&pred), t.select_scan(&pred));
        assert_eq!(t.select(&pred).len(), 1);
        assert_eq!(t.count(&pred), 1);
        assert_eq!(t.select_one(&pred), t.select(&pred).first().copied());
    }

    #[test]
    fn tiny_buckets_skip_the_intersect_overhead() {
        let mut t = members_table();
        for member in 0..8 {
            t.append(vec![1.into(), member.into(), "m".into()], 0)
                .unwrap();
        }
        // Both buckets are small — a single point lookup wins.
        let pred = Pred::And(vec![
            Pred::Eq("list_id", 1.into()),
            Pred::Eq("member_id", 3.into()),
        ]);
        assert!(t.explain(&pred).starts_with("IndexPoint"));
        assert_eq!(t.select(&pred), t.select_scan(&pred));
    }

    #[test]
    fn planner_never_changes_results_under_mutation_churn() {
        let mut t = users_table();
        for i in 0..120 {
            t.append(row(&format!("u{i}"), 6000 + (i % 11), i % 2 == 0), 0)
                .unwrap();
        }
        for id in t.select(&Pred::Eq("uid", 6003.into())) {
            t.delete(id, 1).unwrap();
        }
        for i in 0..30 {
            t.append(row(&format!("r{i}"), 6003, true), 2).unwrap();
        }
        let preds = [
            Pred::True,
            Pred::Eq("uid", 6003.into()),
            Pred::And(vec![
                Pred::Eq("uid", 6003.into()),
                Pred::Eq("active", true.into()),
            ]),
            Pred::Like("login", "u1*".into()),
            Pred::Like("login", "r*".into()),
            Pred::Or(vec![
                Pred::Eq("uid", 6001.into()),
                Pred::Eq("uid", 6002.into()),
            ]),
            Pred::Not(Box::new(Pred::Eq("active", true.into()))),
        ];
        for pred in &preds {
            let scan = t.select_scan(pred);
            assert_eq!(t.select(pred), scan, "{pred:?} / {}", t.explain(pred));
            assert_eq!(t.select_one(pred), scan.first().copied(), "{pred:?}");
            assert_eq!(t.count(pred), scan.len(), "{pred:?}");
        }
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut t = users_table();
        assert_eq!(t.generation(), 0);
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.update(a, &[("uid", Value::Int(2))], 0).unwrap();
        t.delete(a, 0).unwrap();
        assert_eq!(t.generation(), 3);
        let s = t.stats();
        assert_eq!(s.appends + s.updates + s.deletes, s.generation);
    }

    #[test]
    fn changed_since_reports_upserts_and_tombstones() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        let b = t.append(row("b", 2, true), 0).unwrap();
        let cursor = t.generation();
        assert_eq!(t.changed_since(cursor), vec![]);
        t.update(b, &[("uid", Value::Int(9))], 1).unwrap();
        t.delete(a, 1).unwrap();
        let c = t.append(row("c", 3, true), 1).unwrap();
        assert_eq!(c, a, "slot reused");
        // The reused slot reports Upserted, not Deleted: the tombstone is
        // cleared when the free list hands the slot back out.
        assert_eq!(
            t.changed_since(cursor),
            vec![RowChange::Upserted(a), RowChange::Upserted(b)]
        );
        // From zero, every live row is visible.
        assert_eq!(
            t.changed_since(0),
            vec![RowChange::Upserted(a), RowChange::Upserted(b)]
        );
        // At the current generation, nothing.
        assert_eq!(t.changed_since(t.generation()), vec![]);
    }

    #[test]
    fn changed_since_keeps_tombstone_until_reuse() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.append(row("b", 2, true), 0).unwrap();
        let cursor = t.generation();
        t.delete(a, 1).unwrap();
        assert_eq!(t.changed_since(cursor), vec![RowChange::Deleted(a)]);
        // An older cursor sees the delete too; a newer one does not.
        assert_eq!(
            t.changed_since(0),
            vec![RowChange::Deleted(a), RowChange::Upserted(1),]
        );
        assert_eq!(t.changed_since(t.generation()), vec![]);
    }

    #[test]
    fn same_second_mutations_have_distinct_generations() {
        let mut t = users_table();
        // Both writes land in second 100 — modtime cannot tell them apart,
        // generations can.
        t.append(row("a", 1, true), 100).unwrap();
        let g1 = t.generation();
        t.append(row("b", 2, true), 100).unwrap();
        assert_eq!(t.stats().modtime, 100);
        assert_eq!(t.changed_since(g1).len(), 1);
    }

    #[test]
    fn image_round_trip_preserves_slots_gens_and_reuse_order() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 10).unwrap();
        let b = t.append(row("b", 2, false), 11).unwrap();
        t.append(row("c", 3, true), 12).unwrap();
        t.update(b, &[("uid", Value::Int(9))], 13).unwrap();
        t.delete(a, 14).unwrap();
        t.delete(b, 15).unwrap();

        let image = t.export_image();
        let mut back = users_table();
        back.import_image(&image).unwrap();

        assert_eq!(back.export_image(), image);
        assert_eq!(back.stats(), t.stats());
        assert_eq!(back.changed_since(0), t.changed_since(0));
        assert_eq!(back.changed_since(3), t.changed_since(3));
        // Index state survives: lookups and uniqueness behave identically.
        assert_eq!(
            back.select(&Pred::Eq("uid", 3.into())),
            t.select(&Pred::Eq("uid", 3.into()))
        );
        assert_eq!(
            back.append(row("c", 7, true), 16),
            Err(MrError::Exists),
            "unique index restored"
        );
        // Free-list order survives: the next two appends reuse the same
        // slots in the same order on both tables.
        let n1 = t.append(row("x", 20, true), 17).unwrap();
        let n2 = t.append(row("y", 21, true), 17).unwrap();
        assert_eq!(back.append(row("x", 20, true), 17).unwrap(), n1);
        assert_eq!(back.append(row("y", 21, true), 17).unwrap(), n2);
        assert_eq!((n1, n2), (b, a), "LIFO reuse");
    }

    #[test]
    fn import_image_rejects_mutated_table_and_corrupt_images() {
        let mut t = users_table();
        t.append(row("a", 1, true), 0).unwrap();
        let image = t.export_image();
        assert_eq!(t.import_image(&image), Err(MrError::Exists));

        let mut bad = image.clone();
        bad.free.push(0); // overlaps the live row in slot 0
        let mut fresh = users_table();
        assert_eq!(fresh.import_image(&bad), Err(MrError::Internal));

        let mut wrong_arity = image.clone();
        wrong_arity.rows[0].2.pop();
        let mut fresh = users_table();
        assert_eq!(fresh.import_image(&wrong_arity), Err(MrError::Internal));
    }

    #[test]
    fn iter_skips_dead_rows() {
        let mut t = users_table();
        let a = t.append(row("a", 1, true), 0).unwrap();
        t.append(row("b", 2, true), 0).unwrap();
        t.delete(a, 0).unwrap();
        let logins: Vec<String> = t.iter().map(|(_, r)| r[0].as_str().to_owned()).collect();
        assert_eq!(logins, vec!["b"]);
    }
}
