//! The journal of successful database changes (§5.2.2).
//!
//! "To improve this \[day-granularity backup\], the journal file kept by the
//! Moira server daemon contains a listing of all successful changes to the
//! database." Entries record who changed what, with which query, and when;
//! replaying a journal over a restored backup recovers the transactions the
//! backup missed.
//!
//! The serialized form reuses the backup escaping so journal lines survive
//! arbitrary argument bytes.

use moira_common::errors::{MrError, MrResult};

use crate::backup::{escape_field, unescape_field};

/// One successful, side-effecting operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Unix time the change committed.
    pub time: i64,
    /// Authenticated principal that made the change.
    pub who: String,
    /// Client program (`modwith`) that made the change.
    pub with: String,
    /// Query handle name (e.g. `update_user_shell`).
    pub query: String,
    /// The query's arguments.
    pub args: Vec<String>,
}

impl JournalEntry {
    /// Serializes the entry to one line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            self.time.to_string(),
            escape_field(&self.who),
            escape_field(&self.with),
            escape_field(&self.query),
        ];
        fields.extend(self.args.iter().map(|a| escape_field(a)));
        fields.join(":")
    }

    /// Parses one journal line.
    pub fn from_line(line: &str) -> MrResult<JournalEntry> {
        let parts = split_cols(line);
        if parts.len() < 4 {
            return Err(MrError::Internal);
        }
        Ok(JournalEntry {
            time: parts[0].parse().map_err(|_| MrError::Internal)?,
            who: unescape_field(parts[1])?,
            with: unescape_field(parts[2])?,
            query: unescape_field(parts[3])?,
            args: parts[4..]
                .iter()
                .map(|p| unescape_field(p))
                .collect::<MrResult<_>>()?,
        })
    }
}

fn split_cols(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let (mut start, mut i) = (0, 0);
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b':' => {
                fields.push(&line[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields.push(&line[start..]);
    fields
}

/// An in-memory journal with text serialization.
#[derive(Debug, Default, Clone)]
pub struct Journal {
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn log(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// All entries in commit order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of journaled changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries strictly after `time` — the ones a backup taken at `time`
    /// does not contain.
    pub fn since(&self, time: i64) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.time > time)
    }

    /// Serializes the whole journal.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a serialized journal.
    pub fn from_text(text: &str) -> MrResult<Journal> {
        let entries = text
            .lines()
            .filter(|l| !l.is_empty())
            .map(JournalEntry::from_line)
            .collect::<MrResult<Vec<_>>>()?;
        Ok(Journal { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: i64, q: &str, args: &[&str]) -> JournalEntry {
        JournalEntry {
            time: t,
            who: "ops".into(),
            with: "usermaint".into(),
            query: q.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn line_round_trip() {
        let e = entry(100, "update_user_shell", &["babette", "/bin/csh"]);
        let line = e.to_line();
        assert_eq!(JournalEntry::from_line(&line).unwrap(), e);
    }

    #[test]
    fn nasty_args_survive() {
        let e = JournalEntry {
            time: 5,
            who: "a:b".into(),
            with: "c\\d".into(),
            query: "q".into(),
            args: vec!["x:y\nz".into(), String::new()],
        };
        let round = JournalEntry::from_line(&e.to_line()).unwrap();
        assert_eq!(round, e);
    }

    #[test]
    fn zero_arg_queries() {
        let e = entry(9, "trigger_dcm", &[]);
        let line = e.to_line();
        let parsed = JournalEntry::from_line(&line).unwrap();
        // A trailing empty field parses as one empty arg; normalize check.
        assert_eq!(parsed.query, "trigger_dcm");
        assert_eq!(parsed.time, 9);
    }

    #[test]
    fn journal_text_round_trip() {
        let mut j = Journal::new();
        j.log(entry(1, "add_user", &["a", "1"]));
        j.log(entry(2, "delete_user", &["a"]));
        let text = j.to_text();
        let back = Journal::from_text(&text).unwrap();
        assert_eq!(back.entries(), j.entries());
    }

    #[test]
    fn since_filters() {
        let mut j = Journal::new();
        for t in 1..=10 {
            j.log(entry(t, "q", &[]));
        }
        assert_eq!(j.since(7).count(), 3);
        assert_eq!(j.since(0).count(), 10);
        assert_eq!(j.since(10).count(), 0);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(JournalEntry::from_line("1:only:three").is_err());
        assert!(JournalEntry::from_line("notanint:a:b:c").is_err());
        assert!(Journal::from_text("1:a:b:c\ngarbage").is_err());
    }
}
