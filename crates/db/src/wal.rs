//! The write-ahead-log frame codec.
//!
//! Each committed mutation becomes one frame in the log:
//!
//! ```text
//! frame := len(u32 LE) ++ crc(u32 LE) ++ payload
//! payload := "<seq>:" ++ journal line (the escaped wire form of
//!            [`JournalEntry::to_line`])
//! ```
//!
//! `len` counts the payload bytes and `crc` is CRC-32 (IEEE 802.3) over the
//! payload, so a scan can detect both a torn tail (fewer bytes on disk than
//! the header promises — the classic crash-during-append shape) and bit rot.
//! `seq` is the global commit sequence number; recovery uses it to skip
//! frames a snapshot already covers, which makes a crash *between*
//! snapshot-rename and WAL-truncate harmless (the stale frames are simply
//! filtered out on replay).
//!
//! Decoding is total: a scan never panics, it truncates. Everything from the
//! first bad frame onward is discarded — after a torn append there is no
//! trustworthy framing to resynchronize on.

use moira_common::crc::crc32;

use crate::journal::JournalEntry;

/// Upper bound on a single frame payload. A length prefix beyond this is
/// treated as corruption rather than an instruction to allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// What a WAL scan found, beyond the frames themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Frames that decoded cleanly.
    pub recovered_frames: u64,
    /// 1 if the scan stopped early at a torn/corrupt tail, else 0.
    pub torn_tail_truncations: u64,
    /// Byte offset at which the clean prefix ends — the truncation point a
    /// recovering engine resumes appending from.
    pub clean_len: usize,
}

/// Encodes one journal entry as a WAL frame.
pub fn encode_frame(seq: u64, entry: &JournalEntry) -> Vec<u8> {
    let payload = format!("{seq}:{}", entry.to_line());
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(8 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

fn decode_payload(payload: &[u8]) -> Option<(u64, JournalEntry)> {
    let text = std::str::from_utf8(payload).ok()?;
    let (seq, line) = text.split_once(':')?;
    let seq = seq.parse().ok()?;
    let entry = JournalEntry::from_line(line).ok()?;
    Some((seq, entry))
}

/// Scans a WAL byte stream into `(seq, entry)` frames.
///
/// Tolerates a torn tail: the scan stops at the first short header, short
/// payload, over-long length prefix, CRC mismatch, or unparseable payload,
/// reporting how many bytes of clean prefix precede it. It never panics —
/// arbitrary bytes are a valid (if mostly empty) log.
pub fn scan_frames(bytes: &[u8]) -> (Vec<(u64, JournalEntry)>, WalScan) {
    let mut frames = Vec::new();
    let mut stats = WalScan::default();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        let Some(header) = bytes.get(pos..pos + 8) else {
            stats.torn_tail_truncations = 1;
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME_LEN {
            stats.torn_tail_truncations = 1;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            stats.torn_tail_truncations = 1;
            break;
        };
        if crc32(payload) != crc {
            stats.torn_tail_truncations = 1;
            break;
        }
        let Some(frame) = decode_payload(payload) else {
            stats.torn_tail_truncations = 1;
            break;
        };
        frames.push(frame);
        pos += 8 + len as usize;
        stats.recovered_frames += 1;
        stats.clean_len = pos;
    }
    (frames, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: i64, q: &str, args: &[&str]) -> JournalEntry {
        JournalEntry {
            time: t,
            who: "ops".into(),
            with: "maint".into(),
            query: q.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn frame_round_trip() {
        let e = entry(100, "update_user_shell", &["babette", "/bin/csh"]);
        let mut log = encode_frame(7, &e);
        log.extend(encode_frame(8, &entry(101, "add_machine", &["K", "VAX"])));
        let (frames, stats) = scan_frames(&log);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (7, e));
        assert_eq!(frames[1].0, 8);
        assert_eq!(stats.recovered_frames, 2);
        assert_eq!(stats.torn_tail_truncations, 0);
        assert_eq!(stats.clean_len, log.len());
    }

    #[test]
    fn torn_tail_truncates_without_panic() {
        let e = entry(5, "q", &["a:b", "c\\d", "e\nf"]);
        let good = encode_frame(1, &e);
        let mut log = good.clone();
        log.extend(encode_frame(2, &e));
        // Tear the second frame at every possible byte boundary. A cut at
        // exactly the first frame's end is a clean log, so start one past.
        for cut in good.len() + 1..log.len() {
            let (frames, stats) = scan_frames(&log[..cut]);
            assert_eq!(frames.len(), 1, "cut at {cut}");
            assert_eq!(stats.torn_tail_truncations, 1, "cut at {cut}");
            assert_eq!(stats.clean_len, good.len());
        }
    }

    #[test]
    fn crc_mismatch_truncates() {
        let mut log = encode_frame(1, &entry(1, "q", &[]));
        log.extend(encode_frame(2, &entry(2, "q", &[])));
        let tail = log.len() - 1;
        log[tail] ^= 0x40; // flip a bit in the second payload
        let (frames, stats) = scan_frames(&log);
        assert_eq!(frames.len(), 1);
        assert_eq!(stats.torn_tail_truncations, 1);
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(b"whatever");
        let (frames, stats) = scan_frames(&log);
        assert!(frames.is_empty());
        assert_eq!(stats.torn_tail_truncations, 1);
        assert_eq!(stats.clean_len, 0);
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        let garbage: Vec<u8> = (0..255u8).cycle().take(4096).collect();
        let (frames, _) = scan_frames(&garbage);
        assert!(frames.is_empty() || !frames.is_empty()); // totality only
        scan_frames(&[]);
        scan_frames(&[0x01]);
    }
}
