//! Durable snapshot documents: the full database image a recovering server
//! boots from before replaying the WAL tail.
//!
//! A snapshot extends the `mrbackup` ASCII philosophy (§5.2.2 — text files
//! are the only dump format whose corruption is always curable) to the
//! *mutation state* the delta-DCM machinery depends on: the database epoch,
//! per-table statistics, per-row generation stamps, tombstones, and
//! free-list order, plus the in-memory journal so the recovered server's
//! change history is complete. Field values use the same `\:`, `\\`, `\nnn`
//! escapes as the backup dumps.
//!
//! The document is line-oriented and ends with an explicit `end` marker, so
//! a torn file (impossible under the temp-file + rename + dir-fsync write
//! protocol, but disks lie) is detected rather than half-applied.

use moira_common::errors::{MrError, MrResult};

use crate::backup::{escape_field, split_unescaped_colons, unescape_field};
use crate::database::Database;
use crate::journal::{Journal, JournalEntry};
use crate::table::{RowId, TableImage, TableStats};
use crate::value::{ColType, Value};

/// Magic first line; the `:1` is the format version.
const MAGIC: &str = "moira-snapshot:1";

/// One table's raw (still-escaped-text) image inside a snapshot document.
#[derive(Debug, Clone, Default)]
struct RawTable {
    stats: TableStats,
    rows: Vec<(RowId, u64, Vec<String>)>,
    dead: Vec<(RowId, u64)>,
    free: Vec<RowId>,
}

/// A parsed snapshot document, ready to apply to a schema-created database.
#[derive(Debug, Clone)]
pub struct SnapshotImage {
    /// Epoch of the database the snapshot was cut from.
    pub epoch: u64,
    /// Clock reading at snapshot time.
    pub now: i64,
    /// Last WAL sequence number the snapshot covers; recovery replays only
    /// frames with a higher sequence.
    pub seq: u64,
    /// The journal as of snapshot time.
    pub journal: Journal,
    tables: Vec<(String, RawTable)>,
}

/// Serializes the database (plus journal) into a snapshot document sealing
/// every WAL frame up to and including `seq`.
pub fn encode_snapshot(db: &Database, journal: &Journal, seq: u64) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("epoch:{}\n", db.epoch()));
    out.push_str(&format!("now:{}\n", db.now()));
    out.push_str(&format!("seq:{seq}\n"));
    for name in db.table_names() {
        let image = db.table(name).export_image();
        let s = image.stats;
        out.push_str(&format!(
            "table:{name}:{}:{}:{}:{}:{}\n",
            s.appends, s.updates, s.deletes, s.modtime, s.generation
        ));
        for (id, gen, row) in &image.rows {
            out.push_str(&format!("row:{id}:{gen}"));
            for v in row {
                out.push(':');
                out.push_str(&escape_field(&v.render()));
            }
            out.push('\n');
        }
        for (id, gen) in &image.dead {
            out.push_str(&format!("dead:{id}:{gen}\n"));
        }
        let free: Vec<String> = image.free.iter().map(|id| id.to_string()).collect();
        out.push_str(&format!("free:{}\n", free.join(",")));
        out.push_str("endtable\n");
    }
    for entry in journal.entries() {
        out.push_str("journal:");
        out.push_str(&entry.to_line());
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

fn parse_u64(s: &str) -> MrResult<u64> {
    s.parse().map_err(|_| MrError::Durability)
}

fn parse_i64(s: &str) -> MrResult<i64> {
    s.parse().map_err(|_| MrError::Durability)
}

/// Parses a snapshot document. Rejects (with `MR_DURABILITY`) anything
/// malformed or missing the trailing `end` marker.
pub fn decode_snapshot(text: &str) -> MrResult<SnapshotImage> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(MrError::Durability);
    }
    let mut epoch = None;
    let mut now = None;
    let mut seq = None;
    let mut journal = Journal::new();
    let mut tables: Vec<(String, RawTable)> = Vec::new();
    let mut current: Option<(String, RawTable)> = None;
    let mut sealed = false;
    for line in lines {
        if sealed {
            return Err(MrError::Durability); // trailing garbage
        }
        let (tag, rest) = line.split_once(':').unwrap_or((line, ""));
        match tag {
            "epoch" => epoch = Some(parse_u64(rest)?),
            "now" => now = Some(parse_i64(rest)?),
            "seq" => seq = Some(parse_u64(rest)?),
            "table" => {
                if let Some(done) = current.take() {
                    tables.push(done);
                }
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 6 {
                    return Err(MrError::Durability);
                }
                let stats = TableStats {
                    appends: parse_u64(parts[1])?,
                    updates: parse_u64(parts[2])?,
                    deletes: parse_u64(parts[3])?,
                    modtime: parse_i64(parts[4])?,
                    generation: parse_u64(parts[5])?,
                };
                current = Some((
                    parts[0].to_owned(),
                    RawTable {
                        stats,
                        ..RawTable::default()
                    },
                ));
            }
            "row" => {
                let t = current.as_mut().ok_or(MrError::Durability)?;
                let fields = split_unescaped_colons(rest);
                if fields.len() < 2 {
                    return Err(MrError::Durability);
                }
                let id = parse_u64(fields[0])? as RowId;
                let gen = parse_u64(fields[1])?;
                let values = fields[2..]
                    .iter()
                    .map(|f| unescape_field(f).map_err(|_| MrError::Durability))
                    .collect::<MrResult<Vec<String>>>()?;
                t.1.rows.push((id, gen, values));
            }
            "dead" => {
                let t = current.as_mut().ok_or(MrError::Durability)?;
                let (id, gen) = rest.split_once(':').ok_or(MrError::Durability)?;
                t.1.dead.push((parse_u64(id)? as RowId, parse_u64(gen)?));
            }
            "free" => {
                let t = current.as_mut().ok_or(MrError::Durability)?;
                if !rest.is_empty() {
                    for id in rest.split(',') {
                        t.1.free.push(parse_u64(id)? as RowId);
                    }
                }
            }
            "endtable" if rest.is_empty() => {
                let done = current.take().ok_or(MrError::Durability)?;
                tables.push(done);
            }
            "journal" => {
                journal.log(JournalEntry::from_line(rest).map_err(|_| MrError::Durability)?);
            }
            "end" if rest.is_empty() => sealed = true,
            _ => return Err(MrError::Durability),
        }
    }
    if !sealed || current.is_some() {
        return Err(MrError::Durability);
    }
    match (epoch, now, seq) {
        (Some(epoch), Some(now), Some(seq)) => Ok(SnapshotImage {
            epoch,
            now,
            seq,
            journal,
            tables,
        }),
        _ => Err(MrError::Durability),
    }
}

impl SnapshotImage {
    /// Applies the image to a database whose schema has already been
    /// created (and whose epoch the caller set via [`Database::recovered`]).
    /// Every table named in the snapshot must exist and be pristine.
    pub fn apply(&self, db: &mut Database) -> MrResult<()> {
        for (name, raw) in &self.tables {
            if !db.has_table(name) {
                return Err(MrError::Durability);
            }
            let types: Vec<ColType> = db
                .table(name)
                .schema()
                .columns
                .iter()
                .map(|c| c.ty)
                .collect();
            let mut rows = Vec::with_capacity(raw.rows.len());
            for (id, gen, fields) in &raw.rows {
                if fields.len() != types.len() {
                    return Err(MrError::Durability);
                }
                let mut values = Vec::with_capacity(types.len());
                for (text, &ty) in fields.iter().zip(&types) {
                    values.push(Value::parse(ty, text).ok_or(MrError::Durability)?);
                }
                rows.push((*id, *gen, values));
            }
            let image = TableImage {
                rows,
                dead: raw.dead.clone(),
                free: raw.free.clone(),
                stats: raw.stats,
            };
            db.table_mut(name)
                .import_image(&image)
                .map_err(|_| MrError::Durability)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use moira_common::clock::VClock;

    fn schema() -> Vec<TableSchema> {
        vec![
            TableSchema::new(
                "users",
                vec![
                    ColumnDef::str("login").unique(),
                    ColumnDef::int("uid").indexed(),
                    ColumnDef::boolean("active"),
                ],
            ),
            TableSchema::new("values", vec![ColumnDef::str("name"), ColumnDef::int("v")]),
        ]
    }

    fn build_db() -> (Database, Journal) {
        let clock = VClock::new();
        let mut db = Database::new(clock.clone());
        for s in schema() {
            db.create_table(s);
        }
        let a = db
            .append("users", vec!["co:lon".into(), 1.into(), true.into()])
            .unwrap();
        db.append("users", vec!["b\\ck".into(), 2.into(), false.into()])
            .unwrap();
        clock.advance(60);
        db.update("users", a, &[("uid", 9.into())]).unwrap();
        db.delete("users", a).unwrap();
        db.append("values", vec!["dcm\nenable".into(), 1.into()])
            .unwrap();
        let mut journal = Journal::new();
        journal.log(JournalEntry {
            time: db.now(),
            who: "ops:root".into(),
            with: "maint".into(),
            query: "add_user".into(),
            args: vec!["x\ny".into(), String::new()],
        });
        (db, journal)
    }

    fn rebuild(image: &SnapshotImage) -> Database {
        let mut back = Database::recovered(VClock::starting_at(image.now), image.epoch);
        for s in schema() {
            back.create_table(s);
        }
        image.apply(&mut back).unwrap();
        back
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let (db, journal) = build_db();
        let text = encode_snapshot(&db, &journal, 17);
        let image = decode_snapshot(&text).unwrap();
        assert_eq!(image.epoch, db.epoch());
        assert_eq!(image.now, db.now());
        assert_eq!(image.seq, 17);
        assert_eq!(image.journal.entries(), journal.entries());

        let back = rebuild(&image);
        assert_eq!(back.epoch(), db.epoch());
        for name in db.table_names() {
            assert_eq!(
                back.table(name).export_image(),
                db.table(name).export_image(),
                "table {name}"
            );
        }
        // Re-encoding the rebuilt database is byte-identical.
        assert_eq!(encode_snapshot(&back, &journal, 17), text);
    }

    #[test]
    fn truncated_or_mangled_documents_are_rejected() {
        let (db, journal) = build_db();
        let text = encode_snapshot(&db, &journal, 3);
        // Any prefix missing the end marker is rejected.
        let cut = text.len() - 5;
        assert!(decode_snapshot(&text[..cut]).is_err());
        assert!(decode_snapshot("").is_err());
        assert!(decode_snapshot("moira-snapshot:9\nend\n").is_err());
        let mangled = text.replace("seq:3", "seq:banana");
        assert!(decode_snapshot(&mangled).is_err());
        let trailing = format!("{text}junk\n");
        assert!(decode_snapshot(&trailing).is_err());
    }

    #[test]
    fn apply_requires_known_pristine_tables() {
        let (db, journal) = build_db();
        let image = decode_snapshot(&encode_snapshot(&db, &journal, 0)).unwrap();
        // Missing table.
        let mut missing = Database::recovered(VClock::new(), image.epoch);
        missing.create_table(schema().remove(0));
        assert_eq!(image.apply(&mut missing), Err(MrError::Durability));
        // Non-pristine table.
        let mut dirty = Database::recovered(VClock::new(), image.epoch);
        for s in schema() {
            dirty.create_table(s);
        }
        dirty
            .append("users", vec!["z".into(), 99.into(), true.into()])
            .unwrap();
        assert_eq!(image.apply(&mut dirty), Err(MrError::Durability));
    }
}
