//! Durable storage backends: the WAL + snapshot engine and its media seam.
//!
//! The paper's server kept its durability in INGRES plus nightly ASCII
//! dumps and a journal file (§5.2.2). This module closes the gap between
//! "no more than a day's transactions" and "no committed transaction":
//! every committed mutation is framed into a write-ahead log
//! ([`crate::wal`]), group-committed with one fsync per batch, and
//! periodically compacted into an atomic snapshot document
//! ([`crate::snapshot`]).
//!
//! Two seams keep the engine testable:
//!
//! - [`Media`] abstracts the byte-level operations (append, fsync, atomic
//!   rename, directory fsync). [`DiskMedia`] maps them onto `std::fs`;
//!   [`SimMedia`] keeps a durable/volatile split in memory and can be
//!   armed to *crash* — partially apply an operation, then fail
//!   everything until "reboot" — which is what the recovery torture tests
//!   drive.
//! - [`Storage`] abstracts the commit-time hooks the server calls.
//!   [`NullStorage`] is the historical in-memory behavior (every call a
//!   no-op); [`DurableEngine`] is the real thing.
//!
//! Nothing in this module panics on bad bytes or failed I/O: corruption
//! and media failure surface as `MR_DURABILITY`, and a torn WAL tail is
//! truncated, never trusted.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use moira_common::errors::{MrError, MrResult};
use moira_obs::{Counter, Histo, Registry};
use parking_lot::Mutex;

use crate::database::Database;
use crate::journal::{Journal, JournalEntry};
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotImage};
use crate::wal::{encode_frame, scan_frames, WalScan};

/// WAL file name inside the storage root.
pub const WAL_FILE: &str = "wal.log";
/// Sealed snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.moira";
/// Temporary snapshot name; only ever visible after a crash mid-write.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

// ---------------------------------------------------------------------------
// Media

/// Byte-level operations a durable engine needs from its backing store.
///
/// The contract mirrors POSIX durability rules: appended bytes are durable
/// only after `fsync(file)`; a `rename` is durable only after `fsync_dir`;
/// `write_new` contents are durable only after `fsync` of that file.
pub trait Media: Send + Sync {
    /// Appends bytes to the (possibly new) file.
    fn append(&mut self, file: &str, bytes: &[u8]) -> MrResult<()>;
    /// Forces the file's current contents to stable storage.
    fn fsync(&mut self, file: &str) -> MrResult<()>;
    /// Reads the whole file; `Ok(None)` when it does not exist.
    fn read(&self, file: &str) -> MrResult<Option<Vec<u8>>>;
    /// Creates (or replaces) a file with the given contents.
    fn write_new(&mut self, file: &str, bytes: &[u8]) -> MrResult<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&mut self, from: &str, to: &str) -> MrResult<()>;
    /// Forces directory entries (renames, removals) to stable storage.
    fn fsync_dir(&mut self) -> MrResult<()>;
    /// Removes a file if it exists.
    fn remove(&mut self, file: &str) -> MrResult<()>;
    /// Truncates a file to `len` bytes, creating it empty if missing.
    fn truncate(&mut self, file: &str, len: usize) -> MrResult<()>;
}

/// [`Media`] over a real directory via `std::fs`.
#[derive(Debug)]
pub struct DiskMedia {
    root: PathBuf,
}

impl DiskMedia {
    /// Opens (creating if needed) a storage directory.
    pub fn open(root: impl Into<PathBuf>) -> MrResult<DiskMedia> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|_| MrError::Durability)?;
        Ok(DiskMedia { root })
    }

    fn path(&self, file: &str) -> PathBuf {
        self.root.join(file)
    }
}

impl Media for DiskMedia {
    fn append(&mut self, file: &str, bytes: &[u8]) -> MrResult<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(file))
            .map_err(|_| MrError::Durability)?;
        f.write_all(bytes).map_err(|_| MrError::Durability)
    }

    fn fsync(&mut self, file: &str) -> MrResult<()> {
        fs::File::open(self.path(file))
            .and_then(|f| f.sync_all())
            .map_err(|_| MrError::Durability)
    }

    fn read(&self, file: &str) -> MrResult<Option<Vec<u8>>> {
        match fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(_) => Err(MrError::Durability),
        }
    }

    fn write_new(&mut self, file: &str, bytes: &[u8]) -> MrResult<()> {
        fs::write(self.path(file), bytes).map_err(|_| MrError::Durability)
    }

    fn rename(&mut self, from: &str, to: &str) -> MrResult<()> {
        fs::rename(self.path(from), self.path(to)).map_err(|_| MrError::Durability)
    }

    fn fsync_dir(&mut self) -> MrResult<()> {
        fs::File::open(&self.root)
            .and_then(|d| d.sync_all())
            .map_err(|_| MrError::Durability)
    }

    fn remove(&mut self, file: &str) -> MrResult<()> {
        match fs::remove_file(self.path(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(_) => Err(MrError::Durability),
        }
    }

    fn truncate(&mut self, file: &str, len: usize) -> MrResult<()> {
        fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false) // set_len below does the (partial) truncation
            .open(self.path(file))
            .and_then(|f| f.set_len(len as u64))
            .map_err(|_| MrError::Durability)
    }
}

// ---------------------------------------------------------------------------
// SimMedia — in-memory media with a durable/volatile split and crash points

/// The media operation classes a crash point can be armed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A WAL append (`Media::append`).
    Append,
    /// A file fsync (`Media::fsync`).
    Fsync,
    /// An atomic rename (`Media::rename`).
    Rename,
}

#[derive(Debug, Default, Clone)]
struct SimState {
    /// What survives a crash: contents as of the last relevant fsync.
    durable: BTreeMap<String, Vec<u8>>,
    /// The live view: everything written, synced or not.
    volatile: BTreeMap<String, Vec<u8>>,
    /// Renames applied to the live view but not yet directory-synced,
    /// in application order.
    pending_renames: Vec<(String, String)>,
    /// Removes applied to the live view but not yet directory-synced.
    pending_removes: Vec<String>,
    /// Armed crash point: fail the `n`-th upcoming op of this kind.
    armed: Option<(OpKind, u64)>,
    /// After a crash fires every op fails until [`SimMedia::power_cycle`].
    dead: bool,
    /// How many crash points have fired over this media's lifetime.
    crashes: u64,
}

impl SimState {
    /// True when an op of `kind` should crash now (decrements the fuse).
    fn should_crash(&mut self, kind: OpKind) -> bool {
        match &mut self.armed {
            Some((k, n)) if *k == kind => {
                if *n == 0 {
                    self.armed = None;
                    self.dead = true;
                    self.crashes += 1;
                    true
                } else {
                    *n -= 1;
                    false
                }
            }
            _ => false,
        }
    }
}

/// In-memory [`Media`] tracking what is durable versus merely written,
/// with armable crash points. Cloning shares the underlying store, so
/// tests keep a handle while the engine owns a boxed clone.
#[derive(Debug, Clone, Default)]
pub struct SimMedia {
    state: Arc<Mutex<SimState>>,
}

impl SimMedia {
    /// An empty simulated store.
    pub fn new() -> SimMedia {
        SimMedia::default()
    }

    /// Arms a crash at the `nth` (0-based) upcoming operation of `kind`:
    /// that operation partially applies, then every operation fails until
    /// [`SimMedia::power_cycle`].
    pub fn arm_crash(&self, kind: OpKind, nth: u64) {
        let mut st = self.state.lock();
        st.armed = Some((kind, nth));
    }

    /// Simulates reboot after power loss: the volatile view is discarded,
    /// un-synced renames/removes are lost, and the media accepts
    /// operations again.
    pub fn power_cycle(&self) {
        let mut st = self.state.lock();
        st.volatile = st.durable.clone();
        st.pending_renames.clear();
        st.pending_removes.clear();
        st.armed = None;
        st.dead = false;
    }

    /// True once an armed crash point has fired (and the media is dead
    /// until the next [`SimMedia::power_cycle`]).
    pub fn crashed(&self) -> bool {
        self.state.lock().dead
    }

    /// Number of crash points that have fired.
    pub fn crash_count(&self) -> u64 {
        self.state.lock().crashes
    }

    /// The durable contents of a file — what a post-crash reboot reads.
    pub fn durable_bytes(&self, file: &str) -> Option<Vec<u8>> {
        self.state.lock().durable.get(file).cloned()
    }
}

impl Media for SimMedia {
    fn append(&mut self, file: &str, bytes: &[u8]) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        if st.should_crash(OpKind::Append) {
            // Torn write: only half the bytes reach the (volatile) file,
            // and nothing was fsynced — the classic crash-during-append.
            let half = &bytes[..bytes.len() / 2];
            st.volatile.entry(file.to_owned()).or_default().extend(half);
            return Err(MrError::Durability);
        }
        st.volatile
            .entry(file.to_owned())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn fsync(&mut self, file: &str) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        let live = st.volatile.get(file).cloned().unwrap_or_default();
        if st.should_crash(OpKind::Fsync) {
            // Crash mid-fsync: the durable file lands an arbitrary way
            // between its old state and the live one — half the appended
            // tail when growing, half the cut when the fsync follows a
            // truncation.
            let old = st.durable.get(file).cloned().unwrap_or_default();
            let torn = if live.len() >= old.len() {
                live[..old.len() + (live.len() - old.len()) / 2].to_vec()
            } else {
                old[..live.len() + (old.len() - live.len()) / 2].to_vec()
            };
            st.durable.insert(file.to_owned(), torn);
            return Err(MrError::Durability);
        }
        st.durable.insert(file.to_owned(), live);
        Ok(())
    }

    fn read(&self, file: &str) -> MrResult<Option<Vec<u8>>> {
        let st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        Ok(st.volatile.get(file).cloned())
    }

    fn write_new(&mut self, file: &str, bytes: &[u8]) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        st.volatile.insert(file.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        if st.should_crash(OpKind::Rename) {
            // Crash mid-rename: the durable directory never sees it.
            return Err(MrError::Durability);
        }
        let Some(bytes) = st.volatile.remove(from) else {
            return Err(MrError::Durability);
        };
        st.volatile.insert(to.to_owned(), bytes);
        st.pending_renames.push((from.to_owned(), to.to_owned()));
        Ok(())
    }

    fn fsync_dir(&mut self) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        let renames = std::mem::take(&mut st.pending_renames);
        for (from, to) in renames {
            if let Some(bytes) = st.durable.remove(&from) {
                st.durable.insert(to, bytes);
            }
        }
        let removes = std::mem::take(&mut st.pending_removes);
        for file in removes {
            st.durable.remove(&file);
        }
        Ok(())
    }

    fn remove(&mut self, file: &str) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        st.volatile.remove(file);
        st.pending_removes.push(file.to_owned());
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: usize) -> MrResult<()> {
        let mut st = self.state.lock();
        if st.dead {
            return Err(MrError::Durability);
        }
        st.volatile
            .entry(file.to_owned())
            .or_default()
            .truncate(len);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Storage

/// Commit-time hooks the server drives. Implementations must never panic:
/// a durability failure is an error the caller decides how to survive.
pub trait Storage: Send + Sync {
    /// Implementation name, for logs and statistics.
    fn kind(&self) -> &'static str;

    /// Records one committed mutation. May fsync eagerly if the group
    /// commit byte threshold is reached.
    fn append(&mut self, entry: &JournalEntry, now: i64) -> MrResult<()>;

    /// Group-commit tick: fsync buffered appends if the flush interval
    /// has elapsed (or `flush_interval_secs` is 0). Returns whether a
    /// flush happened.
    fn maybe_flush(&mut self, now: i64) -> MrResult<bool>;

    /// Unconditionally fsyncs any buffered appends.
    fn flush(&mut self) -> MrResult<()>;

    /// True when enough has been appended that the caller should cut a
    /// snapshot.
    fn wants_snapshot(&self) -> bool;

    /// Writes an atomic snapshot of `db` + `journal` and truncates the
    /// sealed WAL prefix.
    fn snapshot(&mut self, db: &Database, journal: &Journal) -> MrResult<()>;

    /// Appends buffered (not yet fsynced) — 0 means everything committed
    /// so far is durable.
    fn pending_entries(&self) -> usize;
}

/// The no-op backend: the historical purely-in-memory server.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStorage;

impl Storage for NullStorage {
    fn kind(&self) -> &'static str {
        "null"
    }

    fn append(&mut self, _entry: &JournalEntry, _now: i64) -> MrResult<()> {
        Ok(())
    }

    fn maybe_flush(&mut self, _now: i64) -> MrResult<bool> {
        Ok(false)
    }

    fn flush(&mut self) -> MrResult<()> {
        Ok(())
    }

    fn wants_snapshot(&self) -> bool {
        false
    }

    fn snapshot(&mut self, _db: &Database, _journal: &Journal) -> MrResult<()> {
        Ok(())
    }

    fn pending_entries(&self) -> usize {
        0
    }
}

/// Group-commit and snapshot policy for a [`DurableEngine`].
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Seconds between group-commit fsyncs; 0 flushes on every
    /// [`Storage::maybe_flush`] call.
    pub flush_interval_secs: i64,
    /// Byte threshold that forces an eager fsync from inside
    /// [`Storage::append`].
    pub flush_bytes: usize,
    /// Cut a snapshot after this many appends; 0 disables automatic
    /// snapshots (explicit [`Storage::snapshot`] calls still work).
    pub snapshot_every: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            flush_interval_secs: 1,
            flush_bytes: 256 * 1024,
            snapshot_every: 1024,
        }
    }
}

/// What [`DurableEngine::open`] recovered from the media.
#[derive(Debug, Clone)]
pub struct RecoveredImage {
    /// The sealed snapshot, if one had been cut.
    pub snapshot: Option<SnapshotImage>,
    /// WAL entries *after* the snapshot seal, in commit order.
    pub wal: Vec<JournalEntry>,
    /// What the WAL scan saw (torn tail, clean frame count).
    pub scan: WalScan,
}

#[derive(Clone)]
struct EngineObs {
    registry: Registry,
    appends: Counter,
    fsyncs: Counter,
    group_commit_size: Histo,
}

/// The durable backend: CRC-framed WAL with group commit plus atomic
/// snapshots (temp file + rename + directory fsync), built on a [`Media`].
pub struct DurableEngine {
    media: Box<dyn Media>,
    config: GroupCommitConfig,
    /// Sequence number the next appended frame gets.
    next_seq: u64,
    /// Appends since the last fsync.
    pending: usize,
    /// Bytes appended since the last fsync.
    pending_bytes: usize,
    /// Clock reading at the last interval-driven flush.
    last_flush: i64,
    /// Appends since the last snapshot seal.
    since_snapshot: u64,
    /// What `open` recovered (telemetry only; the image itself is handed
    /// to the caller).
    scan: WalScan,
    obs: Option<EngineObs>,
}

impl DurableEngine {
    /// Opens the engine on a media, recovering any previous state.
    ///
    /// Recovery order: discard a leftover `snapshot.tmp` (a crash before
    /// the rename), decode the sealed snapshot if present, scan the WAL
    /// tolerating a torn tail (the file is truncated to its clean
    /// prefix), and keep only frames the snapshot does not already cover.
    pub fn open(
        mut media: Box<dyn Media>,
        config: GroupCommitConfig,
    ) -> MrResult<(DurableEngine, Option<RecoveredImage>)> {
        media.remove(SNAPSHOT_TMP)?;
        let snapshot = match media.read(SNAPSHOT_FILE)? {
            Some(bytes) => {
                let text = String::from_utf8(bytes).map_err(|_| MrError::Durability)?;
                Some(decode_snapshot(&text)?)
            }
            None => None,
        };
        let sealed_seq = snapshot.as_ref().map(|s| s.seq).unwrap_or(0);
        let wal_bytes = media.read(WAL_FILE)?;
        let had_state = snapshot.is_some() || wal_bytes.is_some();
        let (frames, scan) = scan_frames(wal_bytes.as_deref().unwrap_or(&[]));
        if scan.torn_tail_truncations > 0 {
            media.truncate(WAL_FILE, scan.clean_len)?;
            media.fsync(WAL_FILE)?;
        }
        let mut next_seq = sealed_seq.saturating_add(1);
        let mut wal = Vec::new();
        for (seq, entry) in frames {
            if seq > sealed_seq {
                wal.push(entry);
            }
            next_seq = next_seq.max(seq.saturating_add(1));
        }
        let engine = DurableEngine {
            media,
            config,
            next_seq,
            pending: 0,
            pending_bytes: 0,
            last_flush: 0,
            since_snapshot: 0,
            scan,
            obs: None,
        };
        let recovered = had_state.then_some(RecoveredImage {
            snapshot,
            wal,
            scan,
        });
        Ok((engine, recovered))
    }

    /// Wires the engine's statistics into an observability registry and
    /// retro-credits what `open` recovered.
    pub fn set_obs(&mut self, registry: &Registry) {
        let obs = EngineObs {
            registry: registry.clone(),
            appends: registry.counter("db.wal.appends"),
            fsyncs: registry.counter("db.wal.fsyncs"),
            group_commit_size: registry.histogram("db.wal.group_commit_size"),
        };
        registry
            .counter("db.wal.recovered_frames")
            .add(self.scan.recovered_frames);
        registry
            .counter("db.wal.torn_tail_truncations")
            .add(self.scan.torn_tail_truncations);
        self.obs = Some(obs);
    }

    /// What the opening WAL scan found.
    pub fn scan_stats(&self) -> WalScan {
        self.scan
    }

    fn fsync_wal(&mut self) -> MrResult<()> {
        self.media.fsync(WAL_FILE)?;
        if let Some(obs) = &self.obs {
            obs.fsyncs.inc();
            obs.group_commit_size.record(self.pending as u64);
        }
        self.pending = 0;
        self.pending_bytes = 0;
        Ok(())
    }
}

impl Storage for DurableEngine {
    fn kind(&self) -> &'static str {
        "durable"
    }

    fn append(&mut self, entry: &JournalEntry, now: i64) -> MrResult<()> {
        let frame = encode_frame(self.next_seq, entry);
        self.media.append(WAL_FILE, &frame)?;
        self.next_seq = self.next_seq.saturating_add(1);
        self.pending += 1;
        self.pending_bytes += frame.len();
        self.since_snapshot += 1;
        if let Some(obs) = &self.obs {
            obs.appends.inc();
        }
        if self.pending_bytes >= self.config.flush_bytes {
            self.fsync_wal()?;
            self.last_flush = now;
        }
        Ok(())
    }

    fn maybe_flush(&mut self, now: i64) -> MrResult<bool> {
        if self.pending == 0 {
            self.last_flush = now;
            return Ok(false);
        }
        if now.saturating_sub(self.last_flush) >= self.config.flush_interval_secs {
            self.fsync_wal()?;
            self.last_flush = now;
            return Ok(true);
        }
        Ok(false)
    }

    fn flush(&mut self) -> MrResult<()> {
        if self.pending > 0 {
            self.fsync_wal()?;
        }
        Ok(())
    }

    fn wants_snapshot(&self) -> bool {
        self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every
    }

    fn snapshot(&mut self, db: &Database, journal: &Journal) -> MrResult<()> {
        let span = self
            .obs
            .as_ref()
            .map(|o| o.registry.span("db.snapshot.duration"));
        // Make every frame the snapshot seals durable first: the seal seq
        // asserts "everything up to here is in the snapshot", and a sealed
        // WAL must never be ahead of the durable one.
        self.flush()?;
        let seal = self.next_seq.saturating_sub(1);
        let text = encode_snapshot(db, journal, seal);
        self.media.write_new(SNAPSHOT_TMP, text.as_bytes())?;
        self.media.fsync(SNAPSHOT_TMP)?;
        self.media.rename(SNAPSHOT_TMP, SNAPSHOT_FILE)?;
        self.media.fsync_dir()?;
        // A crash from here on is harmless: stale WAL frames carry seqs
        // the sealed snapshot already covers, so recovery filters them.
        self.media.truncate(WAL_FILE, 0)?;
        self.media.fsync(WAL_FILE)?;
        self.since_snapshot = 0;
        self.pending = 0;
        self.pending_bytes = 0;
        if let Some(span) = span {
            span.finish();
        }
        Ok(())
    }

    fn pending_entries(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use moira_common::clock::VClock;

    fn entry(t: i64, q: &str, args: &[&str]) -> JournalEntry {
        JournalEntry {
            time: t,
            who: "ops".into(),
            with: "maint".into(),
            query: q.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn config() -> GroupCommitConfig {
        GroupCommitConfig {
            flush_interval_secs: 0,
            flush_bytes: usize::MAX,
            snapshot_every: 0,
        }
    }

    fn open_sim(
        media: &SimMedia,
        cfg: GroupCommitConfig,
    ) -> (DurableEngine, Option<RecoveredImage>) {
        DurableEngine::open(Box::new(media.clone()), cfg).expect("open")
    }

    #[test]
    fn fresh_media_recovers_nothing() {
        let media = SimMedia::new();
        let (engine, recovered) = open_sim(&media, config());
        assert!(recovered.is_none());
        assert_eq!(engine.kind(), "durable");
        assert_eq!(engine.pending_entries(), 0);
    }

    #[test]
    fn flushed_appends_survive_power_cycle() {
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        engine.append(&entry(1, "add_user", &["a"]), 1).unwrap();
        engine.append(&entry(2, "add_user", &["b"]), 2).unwrap();
        assert_eq!(engine.pending_entries(), 2);
        engine.flush().unwrap();
        assert_eq!(engine.pending_entries(), 0);
        // A third append is committed but never fsynced: lost on crash.
        engine.append(&entry(3, "add_user", &["c"]), 3).unwrap();
        drop(engine);
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("wal existed");
        assert!(image.snapshot.is_none());
        let queries: Vec<&str> = image.wal.iter().map(|e| e.args[0].as_str()).collect();
        assert_eq!(queries, ["a", "b"]);
        assert_eq!(image.scan.recovered_frames, 2);
        assert_eq!(image.scan.torn_tail_truncations, 0);
    }

    #[test]
    fn byte_threshold_forces_eager_fsync() {
        let media = SimMedia::new();
        let mut cfg = config();
        cfg.flush_bytes = 1; // every append flushes itself
        let (mut engine, _) = open_sim(&media, cfg);
        engine.append(&entry(1, "q", &[]), 1).unwrap();
        assert_eq!(engine.pending_entries(), 0);
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        assert_eq!(recovered.expect("wal").wal.len(), 1);
    }

    #[test]
    fn interval_group_commit() {
        let media = SimMedia::new();
        let mut cfg = config();
        cfg.flush_interval_secs = 10;
        let (mut engine, _) = open_sim(&media, cfg);
        assert!(!engine.maybe_flush(100).unwrap()); // idle tick: nothing to do
        engine.append(&entry(1, "q", &[]), 100).unwrap();
        assert!(!engine.maybe_flush(105).unwrap()); // interval not elapsed
        assert_eq!(engine.pending_entries(), 1);
        assert!(engine.maybe_flush(110).unwrap());
        assert_eq!(engine.pending_entries(), 0);
    }

    #[test]
    fn snapshot_seals_wal_and_recovery_filters_stale_frames() {
        let clock = VClock::new();
        let mut db = Database::new(clock.clone());
        db.create_table(TableSchema::new("t", vec![ColumnDef::str("name")]));
        let mut journal = Journal::new();

        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        for i in 0..3 {
            let e = entry(i, "add", &[&format!("n{i}")]);
            db.append("t", vec![format!("n{i}").into()]).unwrap();
            journal.log(e.clone());
            engine.append(&e, i).unwrap();
        }
        engine.snapshot(&db, &journal).unwrap();
        // Two more entries after the seal.
        for i in 3..5 {
            let e = entry(i, "add", &[&format!("n{i}")]);
            engine.append(&e, i).unwrap();
        }
        engine.flush().unwrap();
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("state");
        let snap = image.snapshot.expect("snapshot");
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.journal.len(), 3);
        assert_eq!(image.wal.len(), 2);
        assert_eq!(image.wal[0].args[0], "n3");

        // Rebuild and check the table contents arrived via the snapshot.
        let mut back = Database::recovered(VClock::starting_at(snap.now), snap.epoch);
        back.create_table(TableSchema::new("t", vec![ColumnDef::str("name")]));
        snap.apply(&mut back).unwrap();
        assert_eq!(back.table("t").len(), 3);
    }

    #[test]
    fn torn_append_truncates_on_recovery() {
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        engine.append(&entry(1, "good", &[]), 1).unwrap();
        engine.flush().unwrap();
        media.arm_crash(OpKind::Append, 0);
        assert_eq!(
            engine.append(&entry(2, "torn", &[]), 2),
            Err(MrError::Durability)
        );
        assert!(media.crashed());
        // Engine is now useless; every media-touching call errors.
        assert_eq!(
            engine.append(&entry(3, "dead", &[]), 3),
            Err(MrError::Durability)
        );
        media.power_cycle();
        // The torn half-frame was volatile only — durable log is clean. A
        // crash mid-fsync, though, leaves a genuinely torn durable tail.
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("wal");
        assert_eq!(image.wal.len(), 1);
        assert_eq!(image.scan.torn_tail_truncations, 0);
    }

    #[test]
    fn torn_fsync_leaves_recoverable_prefix() {
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        engine.append(&entry(1, "good", &["x"]), 1).unwrap();
        engine.flush().unwrap();
        engine.append(&entry(2, "half", &["y"]), 2).unwrap();
        media.arm_crash(OpKind::Fsync, 0);
        assert_eq!(engine.flush(), Err(MrError::Durability));
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("wal");
        assert_eq!(image.wal.len(), 1, "only the first fsync'd frame");
        assert_eq!(image.scan.torn_tail_truncations, 1);
        // Re-opening after the truncation sees a clean log again.
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        assert_eq!(recovered.expect("wal").scan.torn_tail_truncations, 0);
    }

    #[test]
    fn crash_between_rename_and_truncate_is_harmless() {
        let clock = VClock::new();
        let mut db = Database::new(clock.clone());
        db.create_table(TableSchema::new("t", vec![ColumnDef::str("name")]));
        let mut journal = Journal::new();
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        let e = entry(1, "add", &["a"]);
        db.append("t", vec!["a".into()]).unwrap();
        journal.log(e.clone());
        engine.append(&e, 1).unwrap();

        // Crash on the fsync of the WAL truncation (the 2nd fsync after
        // flush-inside-snapshot: [wal flush, tmp fsync, wal truncate]).
        media.arm_crash(OpKind::Fsync, 2);
        assert_eq!(engine.snapshot(&db, &journal), Err(MrError::Durability));
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("state");
        let snap = image.snapshot.expect("snapshot sealed before crash");
        assert_eq!(snap.seq, 1);
        // The stale WAL frame (seq 1) is filtered, not replayed twice.
        assert_eq!(image.wal.len(), 0);
    }

    #[test]
    fn crash_during_snapshot_rename_keeps_old_state() {
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        let e = entry(1, "add", &["a"]);
        let clock = VClock::new();
        let mut db = Database::new(clock);
        db.create_table(TableSchema::new("t", vec![ColumnDef::str("name")]));
        db.append("t", vec!["a".into()]).unwrap();
        let mut journal = Journal::new();
        journal.log(e.clone());
        engine.append(&e, 1).unwrap();
        media.arm_crash(OpKind::Rename, 0);
        assert_eq!(engine.snapshot(&db, &journal), Err(MrError::Durability));
        media.power_cycle();
        let (_, recovered) = open_sim(&media, config());
        let image = recovered.expect("wal survived");
        assert!(image.snapshot.is_none(), "rename never became durable");
        assert_eq!(image.wal.len(), 1, "wal still has the entry");
    }

    #[test]
    fn wants_snapshot_follows_policy() {
        let media = SimMedia::new();
        let mut cfg = config();
        cfg.snapshot_every = 2;
        let (mut engine, _) = open_sim(&media, cfg);
        assert!(!engine.wants_snapshot());
        engine.append(&entry(1, "q", &[]), 1).unwrap();
        assert!(!engine.wants_snapshot());
        engine.append(&entry(2, "q", &[]), 2).unwrap();
        assert!(engine.wants_snapshot());
        let db = Database::new(VClock::new());
        engine.snapshot(&db, &Journal::new()).unwrap();
        assert!(!engine.wants_snapshot());
    }

    #[test]
    fn obs_counters_track_commits() {
        let registry = Registry::new();
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        engine.set_obs(&registry);
        for i in 0..5 {
            engine.append(&entry(i, "q", &[]), i).unwrap();
        }
        engine.flush().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("db.wal.appends"), 5);
        assert_eq!(snap.counter("db.wal.fsyncs"), 1);
        let h = snap.histogram("db.wal.group_commit_size").expect("histo");
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 5, "five entries in one group commit");
    }

    #[test]
    fn recovered_scan_stats_credit_obs() {
        let media = SimMedia::new();
        let (mut engine, _) = open_sim(&media, config());
        engine.append(&entry(1, "q", &[]), 1).unwrap();
        engine.append(&entry(2, "q", &[]), 2).unwrap();
        engine.flush().unwrap();
        engine.append(&entry(3, "q", &[]), 3).unwrap();
        media.arm_crash(OpKind::Fsync, 0);
        assert!(engine.flush().is_err());
        media.power_cycle();
        let (mut engine, _) = open_sim(&media, config());
        let registry = Registry::new();
        engine.set_obs(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("db.wal.recovered_frames"), 2);
        assert_eq!(snap.counter("db.wal.torn_tail_truncations"), 1);
    }

    #[test]
    fn disk_media_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "moira-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut media = DiskMedia::open(&dir).unwrap();
        assert_eq!(media.read("missing").unwrap(), None);
        media.append("wal.log", b"hello ").unwrap();
        media.append("wal.log", b"world").unwrap();
        media.fsync("wal.log").unwrap();
        assert_eq!(media.read("wal.log").unwrap().unwrap(), b"hello world");
        media.truncate("wal.log", 5).unwrap();
        assert_eq!(media.read("wal.log").unwrap().unwrap(), b"hello");
        media.write_new("snap.tmp", b"snapshot").unwrap();
        media.fsync("snap.tmp").unwrap();
        media.rename("snap.tmp", "snap").unwrap();
        media.fsync_dir().unwrap();
        assert_eq!(media.read("snap").unwrap().unwrap(), b"snapshot");
        assert_eq!(media.read("snap.tmp").unwrap(), None);
        media.remove("snap").unwrap();
        media.remove("snap").unwrap(); // idempotent
        assert_eq!(media.read("snap").unwrap(), None);

        // A real engine over disk media: write, reopen, recover.
        let (mut engine, _) = DurableEngine::open(
            Box::new(DiskMedia::open(&dir).unwrap()),
            GroupCommitConfig::default(),
        )
        .unwrap();
        engine.append(&entry(1, "q", &["disk"]), 1).unwrap();
        engine.flush().unwrap();
        drop(engine);
        let (_, recovered) = DurableEngine::open(
            Box::new(DiskMedia::open(&dir).unwrap()),
            GroupCommitConfig::default(),
        )
        .unwrap();
        // The first open's truncate of "wal.log" left from the raw media
        // exercise above means only our engine frame is present.
        let image = recovered.expect("wal on disk");
        assert_eq!(image.wal.len(), 1);
        assert_eq!(image.wal[0].args[0], "disk");
        let _ = fs::remove_dir_all(&dir);
    }
}
