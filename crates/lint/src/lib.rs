//! `moira-lint`: a workspace static analyzer enforcing the invariants the
//! paper's architecture depends on — the closed query surface with uniform
//! access control, the read/write tier split, the `state.db` journaling
//! contract, lock discipline around the shared state, the DCM delta-path
//! scan ban, panic-free daemon request loops, reactor discipline (no
//! guard held across the reactor wait, no blocking calls on the wait
//! path), and planner discipline (no `Table::iter()` where an index
//! could serve the lookup).
//!
//! It replaces the regex grep gates that used to live in CI: each pass
//! parses the source (via the in-tree `syn` shim) instead of pattern
//! matching lines, so trivial rewrites (`let s = &state; s.clone()`) no
//! longer slip through.
//!
//! Diagnostics are deny-by-default. A `// lint:allow(<pass>)` comment on
//! the flagged line or the line above suppresses one finding; allows are
//! reviewed in PRs like any other code (see DESIGN.md "Static
//! invariants").

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod passes;
pub mod scan;

/// One finding: which pass, where, and what the violation is.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub pass: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}",
            self.pass, self.file, self.line, self.message
        )
    }
}

/// A registered pass: name (used in `lint:allow(...)`) and a one-line
/// description for `--list`.
pub struct PassInfo {
    pub name: &'static str,
    pub description: &'static str,
    pub run: fn(&Workspace) -> Vec<Diagnostic>,
}

/// All passes, in the order they run.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: passes::tier::NAME,
        description: "read handlers take &MoiraState and never call mutating Database/Table \
                      APIs; write handlers mutate only through state.db (journaling contract); \
                      MoiraState is never Clone",
        run: passes::tier::run,
    },
    PassInfo {
        name: passes::locks::NAME,
        description: "no blocking I/O and no second guard acquisition while a SharedState \
                      RwLock guard is live, with a one-level walk into same-file helpers",
        run: passes::locks::run,
    },
    PassInfo {
        name: passes::registry_schema::NAME,
        description: "every registered query resolves to a handler on the right tier, its \
                      access rule is well-formed, and it references only tables/columns \
                      declared in schema.rs",
        run: passes::registry_schema::run,
    },
    PassInfo {
        name: passes::delta::NAME,
        description: "the DCM incremental path and per-generator delta fragments never \
                      full-scan driver tables; full rebuilds only via the marked fallback",
        run: passes::delta::run,
    },
    PassInfo {
        name: passes::panics::NAME,
        description: "no unwrap()/expect()/panic! in the server request loop, client \
                      connection glue, or DCM update leg",
        run: passes::panics::run,
    },
    PassInfo {
        name: passes::reactor::NAME,
        description: "no SharedState guard held across the reactor wait, and no blocking \
                      syscalls in functions on the reactor wait path",
        run: passes::reactor::run,
    },
    PassInfo {
        name: passes::plan::NAME,
        description: "query handlers never Table::iter() a table with indexed columns — \
                      lookups route through select() and the predicate planner; genuine \
                      dumps carry a reviewed lint:allow",
        run: passes::plan::run,
    },
];

/// A parsed source file plus the flat token stream and the
/// `lint:allow(...)` suppressions found in its comments.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub tokens: Vec<syn::Token>,
    pub ast: syn::File,
    /// (line, pass-name) pairs from `// lint:allow(pass)` comments.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> Result<SourceFile, String> {
        let (tokens, _) = syn::tokenize(src);
        let ast = syn::parse_file(src).map_err(|e| format!("{rel}: {e}"))?;
        let mut allows = Vec::new();
        for c in &ast.comments {
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find("lint:allow(") {
                let after = &rest[pos + "lint:allow(".len()..];
                if let Some(close) = after.find(')') {
                    for name in after[..close].split(',') {
                        allows.push((c.line, name.trim().to_string()));
                    }
                    rest = &after[close + 1..];
                } else {
                    break;
                }
            }
        }
        Ok(SourceFile {
            rel: rel.to_string(),
            tokens,
            ast,
            allows,
        })
    }

    /// All non-test functions with bodies, by name. On duplicate names the
    /// first definition wins.
    pub fn fn_map(&self) -> HashMap<&str, &syn::ItemFn> {
        let mut map = HashMap::new();
        for f in self.ast.functions() {
            if !f.in_test && f.func.has_body {
                map.entry(f.func.name.as_str()).or_insert(f.func);
            }
        }
        map
    }

    /// True when a diagnostic at `line` for `pass` is suppressed by a
    /// `lint:allow` comment on the same line or the line above.
    fn allowed(&self, pass: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, p)| p == pass && (*l == line || *l + 1 == line))
    }
}

/// The set of parsed sources a lint run sees.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `crates/*/src/**/*.rs` under `root`, except
    /// `crates/lint` itself (the analyzer does not self-audit; its fixtures
    /// contain deliberate violations).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(format!(
                "no crates/ directory under {} — run from the workspace root or pass --root",
                root.display()
            ));
        }
        let mut files = Vec::new();
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            if crate_dir.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            let src = crate_dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::parse(&rel, &text)?);
            }
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory (relative-path, source) pairs —
    /// the fixture tests use this.
    pub fn from_sources(sources: &[(&str, &str)]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for (rel, src) in sources {
            files.push(SourceFile::parse(rel, src)?);
        }
        Ok(Workspace { files })
    }

    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Runs one pass by name and applies `lint:allow` suppressions.
    /// Returns `None` for an unknown pass name.
    pub fn run_pass(&self, name: &str) -> Option<Vec<Diagnostic>> {
        let pass = PASSES.iter().find(|p| p.name == name)?;
        Some(self.suppress((pass.run)(self)))
    }

    /// Runs every pass and applies `lint:allow` suppressions.
    pub fn run_all(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for pass in PASSES {
            out.extend(self.suppress((pass.run)(self)));
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }

    fn suppress(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| {
                self.file(&d.file)
                    .is_none_or(|f| !f.allowed(d.pass, d.line))
            })
            .collect()
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
