//! `moira-lint`: a workspace static analyzer enforcing the invariants the
//! paper's architecture depends on — the closed query surface with uniform
//! access control, the read/write tier split, the `state.db` journaling
//! contract, lock discipline around the shared state, the DCM delta-path
//! scan ban, panic-free daemon request loops, reactor discipline (no
//! guard held across the reactor wait, no blocking calls on the wait
//! path), and planner discipline (no `Table::iter()` where an index
//! could serve the lookup).
//!
//! It replaces the regex grep gates that used to live in CI: each pass
//! parses the source (via the in-tree `syn` shim) instead of pattern
//! matching lines, so trivial rewrites (`let s = &state; s.clone()`) no
//! longer slip through.
//!
//! Diagnostics are deny-by-default. A `// lint:allow(<pass>)` comment on
//! the flagged line or the line above suppresses one finding; allows are
//! reviewed in PRs like any other code (see DESIGN.md "Static
//! invariants").

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod engine;
pub mod passes;
pub mod scan;

/// One finding: which pass, where, and what the violation is. When the
/// violation is reached transitively, `chain` holds the full witness path
/// (`(file, line)` hops from the flagged site down to the primitive).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub pass: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub chain: Vec<(String, u32)>,
}

impl Diagnostic {
    pub fn new(pass: &'static str, file: String, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            pass,
            file,
            line,
            message,
            chain: Vec::new(),
        }
    }

    pub fn with_chain(mut self, chain: Vec<(String, u32)>) -> Diagnostic {
        // A single-hop chain is just the flagged line again.
        if chain.len() > 1 {
            self.chain = chain;
        }
        self
    }

    /// `a.rs:12 → b.rs:90 → c.rs:33` (empty string when there is no chain).
    pub fn chain_display(&self) -> String {
        self.chain
            .iter()
            .map(|(f, l)| format!("{f}:{l}"))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}",
            self.pass, self.file, self.line, self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    call chain: {}", self.chain_display())?;
        }
        Ok(())
    }
}

/// A `lint:allow(...)` comment that no longer suppresses anything. Escapes
/// are reviewed code; one that has rotted must be removed, not carried.
#[derive(Debug, Clone)]
pub struct StaleAllow {
    pub file: String,
    pub line: u32,
    pub pass: String,
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warning[stale-allow] {}:{}: `lint:allow({})` no longer suppresses any \
             diagnostic — remove it",
            self.file, self.line, self.pass
        )
    }
}

/// The result of a full lint run: surviving diagnostics plus the allows
/// that matched nothing.
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    pub stale_allows: Vec<StaleAllow>,
}

/// A registered pass: name (used in `lint:allow(...)`) and a one-line
/// description for `--list`. Every pass receives the workspace call-graph
/// engine; file-local passes simply ignore it.
pub struct PassInfo {
    pub name: &'static str,
    pub description: &'static str,
    pub run: fn(&Workspace, &engine::Engine<'_>) -> Vec<Diagnostic>,
}

/// All passes, in the order they run.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: passes::tier::NAME,
        description: "read handlers take &MoiraState and never transitively reach a mutating \
                      Database/Table API (any file, any depth); write handlers mutate only \
                      through state.db (journaling contract); MoiraState is never Clone",
        run: passes::tier::run,
    },
    PassInfo {
        name: passes::locks::NAME,
        description: "no blocking I/O and no second guard acquisition while a SharedState \
                      RwLock guard is live — including transitively through calls into any \
                      file, with the full call chain in the diagnostic",
        run: passes::locks::run,
    },
    PassInfo {
        name: passes::registry_schema::NAME,
        description: "every registered query resolves to a handler on the right tier, its \
                      access rule is well-formed, and it references only tables/columns \
                      declared in schema.rs",
        run: passes::registry_schema::run,
    },
    PassInfo {
        name: passes::delta::NAME,
        description: "the DCM incremental path and per-generator delta fragments never \
                      full-scan driver tables, directly or through helpers in any file; \
                      full rebuilds only via the marked fallback",
        run: passes::delta::run,
    },
    PassInfo {
        name: passes::panics::NAME,
        description: "no unwrap()/expect()/panic! in the server request loop, client \
                      connection glue, or DCM update leg",
        run: passes::panics::run,
    },
    PassInfo {
        name: passes::reactor::NAME,
        description: "no SharedState guard held across the reactor wait, and no blocking \
                      syscalls reachable from functions on the reactor wait path",
        run: passes::reactor::run,
    },
    PassInfo {
        name: passes::plan::NAME,
        description: "query handlers never Table::iter() a table with indexed columns — \
                      lookups route through select() and the predicate planner; genuine \
                      dumps carry a reviewed lint:allow",
        run: passes::plan::run,
    },
];

/// A parsed source file plus the flat token stream and the
/// `lint:allow(...)` suppressions found in its comments.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub tokens: Vec<syn::Token>,
    pub ast: syn::File,
    /// (line, pass-name) pairs from `// lint:allow(pass)` comments.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> Result<SourceFile, String> {
        let (tokens, _) = syn::tokenize(src);
        let ast = syn::parse_file(src).map_err(|e| format!("{rel}: {e}"))?;
        let mut allows = Vec::new();
        for c in &ast.comments {
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find("lint:allow(") {
                let after = &rest[pos + "lint:allow(".len()..];
                if let Some(close) = after.find(')') {
                    for name in after[..close].split(',') {
                        allows.push((c.line, name.trim().to_string()));
                    }
                    rest = &after[close + 1..];
                } else {
                    break;
                }
            }
        }
        Ok(SourceFile {
            rel: rel.to_string(),
            tokens,
            ast,
            allows,
        })
    }

    /// All non-test functions with bodies, by name. On duplicate names the
    /// first definition wins.
    pub fn fn_map(&self) -> HashMap<&str, &syn::ItemFn> {
        let mut map = HashMap::new();
        for f in self.ast.functions() {
            if !f.in_test && f.func.has_body {
                map.entry(f.func.name.as_str()).or_insert(f.func);
            }
        }
        map
    }
}

/// The set of parsed sources a lint run sees.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `crates/*/src/**/*.rs` under `root`, except
    /// `crates/lint` itself (the analyzer does not self-audit; its fixtures
    /// contain deliberate violations).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(format!(
                "no crates/ directory under {} — run from the workspace root or pass --root",
                root.display()
            ));
        }
        let mut files = Vec::new();
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            if crate_dir.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            let src = crate_dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::parse(&rel, &text)?);
            }
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory (relative-path, source) pairs —
    /// the fixture tests use this.
    pub fn from_sources(sources: &[(&str, &str)]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for (rel, src) in sources {
            files.push(SourceFile::parse(rel, src)?);
        }
        Ok(Workspace { files })
    }

    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Runs one pass by name and applies `lint:allow` suppressions.
    /// Returns `None` for an unknown pass name.
    pub fn run_pass(&self, name: &str) -> Option<Vec<Diagnostic>> {
        let pass = PASSES.iter().find(|p| p.name == name)?;
        let eng = engine::Engine::build(self);
        Some(self.suppress((pass.run)(self, &eng)))
    }

    /// Runs every pass and applies `lint:allow` suppressions.
    pub fn run_all(&self) -> Vec<Diagnostic> {
        self.run_full().diagnostics
    }

    /// Runs every pass, applies `lint:allow` suppressions, and reports the
    /// allows that suppressed nothing (stale escapes). Staleness is only
    /// meaningful on a full run — a single-pass run would see every other
    /// pass's allows as unused.
    pub fn run_full(&self) -> LintReport {
        let eng = engine::Engine::build(self);
        let mut out = Vec::new();
        // (file index, allow index) pairs that matched a raw diagnostic.
        let mut used: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for pass in PASSES {
            for d in (pass.run)(self, &eng) {
                let matches = self.matching_allows(&d);
                if matches.is_empty() {
                    out.push(d);
                } else {
                    used.extend(matches);
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let mut stale = Vec::new();
        for (fi, sf) in self.files.iter().enumerate() {
            for (ai, (line, pass)) in sf.allows.iter().enumerate() {
                if !used.contains(&(fi, ai)) {
                    stale.push(StaleAllow {
                        file: sf.rel.clone(),
                        line: *line,
                        pass: pass.clone(),
                    });
                }
            }
        }
        LintReport {
            diagnostics: out,
            stale_allows: stale,
        }
    }

    fn suppress(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| self.matching_allows(d).is_empty())
            .collect()
    }

    /// `(file index, allow index)` pairs that suppress `d`: an allow on the
    /// flagged line (or the line above), or on any hop of the witness chain
    /// — a reviewed escape at the primitive covers every caller that only
    /// reaches it through that site.
    fn matching_allows(&self, d: &Diagnostic) -> Vec<(usize, usize)> {
        let mut sites: Vec<(&str, u32)> = vec![(d.file.as_str(), d.line)];
        sites.extend(d.chain.iter().map(|(f, l)| (f.as_str(), *l)));
        let mut out = Vec::new();
        for (file, line) in sites {
            if let Some(fi) = self.files.iter().position(|f| f.rel == file) {
                for (ai, (l, p)) in self.files[fi].allows.iter().enumerate() {
                    if p == d.pass && (*l == line || *l + 1 == line) {
                        out.push((fi, ai));
                    }
                }
            }
        }
        out
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
