//! Workspace call graph and transitive effect summaries.
//!
//! PR 4's passes stopped at a one-level, same-file helper walk: a guard
//! held two calls deep, or a helper living in another module, was
//! invisible. This module is the interprocedural layer those passes now
//! stand on:
//!
//! 1. **Resolution** — every call expression in every non-test function is
//!    mapped to candidate definitions across the whole workspace: free
//!    calls through same-file scope, `use` imports, module paths, and
//!    unique-name matching; method calls through receiver types inferred
//!    from `self`, typed params, `let x: T`, `Type::ctor(..)` bindings,
//!    and struct field declarations (so `state.db.append(..)` resolves to
//!    `Database::append` through `MoiraState.db`'s declared type).
//! 2. **Primitive effects** — each function body is scanned for the
//!    effect primitives the discipline passes care about: acquiring a
//!    SharedState read/write guard, blocking (sleep / blocking receive /
//!    fsync / park / `std::fs` / `std::net`), mutating the database
//!    through the journaled APIs, entering a reactor wait, and
//!    full-table scans.
//! 3. **Fixpoint propagation** — effects flow from callee to caller over
//!    the call graph until nothing changes. The iteration is monotone
//!    (bits only turn on), so recursion and helper cycles terminate
//!    naturally. Each propagated effect remembers the call edge that
//!    introduced it, so a diagnostic can print the full witness chain
//!    (`a.rs:12 → b.rs:90 → c.rs:33`) down to the primitive site.
//!
//! Soundness caveats (documented in DESIGN.md "Static invariants"):
//! resolution is best-effort — calls through function pointers, closures
//! passed across functions, trait objects with unknown receiver types,
//! and macro-generated code produce no edges. The passes stay
//! deny-by-default on what the graph *can* see; the graph never invents
//! edges for names it cannot pin down (a denylist keeps ubiquitous std
//! method names like `.iter()` / `.push()` from linking by accident).

use std::collections::{HashMap, HashSet};

use crate::scan;
use crate::Workspace;
use syn::{Item, ItemFn, Token, TokenKind};

/// Function identifier: index into [`Engine::fns`].
pub type FnId = usize;

/// The effect lattice: one bit per effect, propagated caller-ward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Acquires a SharedState read guard (`state.read()` / `try_read()`).
    AcquiresRead = 0,
    /// Acquires a SharedState write guard (`state.write()` / `try_write()`).
    AcquiresWrite = 1,
    /// Performs a blocking call: sleep, blocking receive, park, fsync,
    /// `std::fs` / `std::net`, connect/bind/accept.
    Blocks = 2,
    /// Mutates MoiraState / the database through the journaled APIs.
    Mutates = 3,
    /// Enters a reactor wait (directly or via a loop entry point).
    Waits = 4,
    /// Enumerates a whole table (`.table(..).iter()`, `Pred::True`).
    Scans = 5,
    /// Performs socket-level network I/O (`connect`/`bind`/`accept`,
    /// `std::net`). Kept distinct from `Blocks`: the reactor loop's
    /// sockets are all non-blocking, so these are legal on the wait path
    /// but still denied under a SharedState guard.
    BlocksNet = 6,
}

pub const EFFECT_COUNT: usize = 7;

impl Effect {
    pub const ALL: [Effect; EFFECT_COUNT] = [
        Effect::AcquiresRead,
        Effect::AcquiresWrite,
        Effect::Blocks,
        Effect::Mutates,
        Effect::Waits,
        Effect::Scans,
        Effect::BlocksNet,
    ];

    /// Short human phrase used inside diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            Effect::AcquiresRead => "acquires a state read guard",
            Effect::AcquiresWrite => "acquires a state write guard",
            Effect::Blocks => "performs a blocking call",
            Effect::Mutates => "mutates the database",
            Effect::Waits => "enters a reactor wait",
            Effect::Scans => "enumerates a whole table",
            Effect::BlocksNet => "performs network I/O",
        }
    }
}

/// A set of effects, with monotone insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet {
    bits: u8,
}

impl EffectSet {
    pub fn has(self, e: Effect) -> bool {
        self.bits & (1 << e as u8) != 0
    }

    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// True when either guard-acquisition bit is set.
    pub fn acquires(self) -> bool {
        self.has(Effect::AcquiresRead) || self.has(Effect::AcquiresWrite)
    }

    fn insert(&mut self, e: Effect) -> bool {
        let before = self.bits;
        self.bits |= 1 << e as u8;
        self.bits != before
    }
}

/// Where a function's effect came from: a primitive site in its own body,
/// or a call to a function that already had the effect.
#[derive(Debug, Clone)]
pub enum Origin {
    Prim { line: u32, what: String },
    Call { line: u32, callee: FnId },
}

/// One function in the workspace.
pub struct FnNode<'a> {
    /// Index of the containing file in `Workspace::files`.
    pub file: usize,
    pub func: &'a ItemFn,
    /// `impl`/`trait` block type name, when the fn is an associated item.
    pub owner: Option<String>,
    /// Fully qualified module path, e.g. `moira_db::lock`.
    pub module: String,
    pub in_test: bool,
    /// Signature mentions a guard type: call sites open a guard scope.
    pub returns_guard: bool,
}

/// A resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name (free call) or the `.` (method call)
    /// in the caller's body.
    pub idx: usize,
    /// Token index of the call's closing `)`.
    pub close: usize,
    pub line: u32,
    /// Callee name as written at the site.
    pub name: String,
    /// Candidate definitions (empty when unresolvable).
    pub targets: Vec<FnId>,
    /// Call site carries a `full-rebuild fallback` marker comment: the
    /// `Scans` effect does not propagate over this edge.
    pub marked: bool,
    /// The site is a method call (`.name(..)`) rather than a free call.
    pub method: bool,
}

/// The call graph + effect summaries for one workspace.
pub struct Engine<'a> {
    pub fns: Vec<FnNode<'a>>,
    /// Per-function resolved call sites.
    calls: Vec<Vec<CallSite>>,
    /// Per-function transitive effect summaries (after fixpoint).
    effects: Vec<EffectSet>,
    /// Per-function, per-effect witness origin.
    origins: Vec<[Option<Origin>; EFFECT_COUNT]>,
    /// File index -> FnIds in that file.
    by_file: Vec<Vec<FnId>>,
    /// File relative paths, indexed like `Workspace::files`.
    rels: Vec<String>,
}

/// Method names too ubiquitous (std types, iterators, collections) to link
/// by bare-name uniqueness; they only resolve through a typed receiver.
const METHOD_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "next",
    "send",
    "recv",
    "read",
    "write",
    "try_read",
    "try_write",
    "flush",
    "lock",
    "wait",
    "join",
    "run",
    "start",
    "stop",
    "close",
    "open",
    "create",
    "spawn",
    "truncate",
    "write_all",
    "read_to_string",
    "set_len",
    "clear",
    "reset",
    "name",
    "kind",
    "code",
    "fmt",
    "min",
    "max",
    "sort",
    "dedup",
    "retain",
    "extend",
    "append",
    "update",
    "delete",
    "set",
    "advance",
    "take",
    "drain",
    "entry",
    "keys",
    "values",
    "split",
    "trim",
    "parse",
    "encode",
    "decode",
    "as_str",
    "map",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "collect",
    "unwrap",
    "expect",
    "to_string",
    "into_iter",
    "chars",
    "lines",
    "bytes",
    "first",
    "last",
    "rev",
    "zip",
    "skip",
    "chain",
    "cell",
    "select",
    "select_one",
    "table",
];

/// Smart-pointer / container wrappers stripped when deriving a base type
/// from a type token stream (`Box<dyn Storage>` -> `Storage`).
const TYPE_WRAPPERS: &[&str] = &[
    "Box", "Arc", "Rc", "Vec", "VecDeque", "Option", "Mutex", "RwLock", "RefCell", "Cell",
    "Result", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "String", "dyn", "impl", "mut", "ref",
    "const",
];

/// Methods that hand back (a view of) their receiver's payload type:
/// `host.lock().method()` resolves `method` against the `Mutex` payload.
const PASSTHROUGH_METHODS: &[&str] = &[
    "lock",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "unwrap",
    "expect",
    "clone",
];

/// RwLock acquisition methods on the shared state.
const ACQUIRE_READ: &[&str] = &["read", "try_read"];
const ACQUIRE_WRITE: &[&str] = &["write", "try_write"];

/// Receiver chains whose last identifier is one of these are the shared
/// state handle.
pub const STATE_RECV: &[&str] = &["state", "shared"];

/// Hard-blocking calls (method or free form): the thread parks or sleeps.
const BLOCKING: &[&str] = &[
    "sleep",
    "recv_blocking",
    "recv_timeout",
    "park",
    "sync_all",
    "sync_data",
];

/// Socket-level calls: blocking unless the fd is non-blocking.
const BLOCKING_NET: &[&str] = &["connect", "bind", "accept"];

/// Path prefixes that are hard-blocking wherever they appear.
const BLOCKING_PATHS: &[&[&str]] = &[&["std", "fs"]];

/// Path prefixes that are network I/O wherever they appear.
const NET_PATHS: &[&[&str]] = &[&["std", "net"]];

/// Mutating Database / Table / MoiraState APIs (the journaling surface).
pub const MUTATING: &[&str] = &[
    "append",
    "update",
    "delete",
    "delete_where",
    "table_mut",
    "create_table",
    "set_value",
];

/// Types whose `MUTATING`-named methods are mutation primitives by
/// definition.
const MUTATING_OWNERS: &[&str] = &["Database", "Table", "MoiraState"];

/// Receivers whose `.wait(..)` is the reactor's blocking point.
const WAIT_RECV: &[&str] = &["reactor", "poller"];

/// Loop entry points that contain the reactor wait.
const LOOP_WAITS: &[&str] = &["poll_with_timeout", "poll_once", "run_until_idle"];

impl<'a> Engine<'a> {
    /// Builds the call graph and runs effect propagation to fixpoint.
    pub fn build(ws: &'a Workspace) -> Engine<'a> {
        let mut fns: Vec<FnNode<'a>> = Vec::new();
        let mut by_file: Vec<Vec<FnId>> = vec![Vec::new(); ws.files.len()];
        let mut rels: Vec<String> = Vec::with_capacity(ws.files.len());

        // Per-file side tables gathered in the same walk.
        let mut uses: Vec<HashMap<String, Vec<String>>> = Vec::with_capacity(ws.files.len());
        let mut fields: HashMap<(String, String), String> = HashMap::new();
        let mut trait_impls: Vec<(String, String)> = Vec::new(); // (trait, type)

        for (fi, sf) in ws.files.iter().enumerate() {
            rels.push(sf.rel.clone());
            let module = module_of(&sf.rel);
            let mut file_uses = HashMap::new();
            collect_items(
                &sf.ast.items,
                &module,
                None,
                false,
                fi,
                &mut fns,
                &mut file_uses,
                &mut fields,
                &mut trait_impls,
            );
            uses.push(file_uses);
        }
        for (id, f) in fns.iter().enumerate() {
            by_file[f.file].push(id);
        }

        // Name indexes.
        let mut free_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut free_by_path: HashMap<(String, &str), FnId> = HashMap::new();
        let mut methods_by_owner: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut methods_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            match &f.owner {
                Some(owner) => {
                    methods_by_owner
                        .entry((owner.as_str(), f.func.name.as_str()))
                        .or_default()
                        .push(id);
                    methods_by_name
                        .entry(f.func.name.as_str())
                        .or_default()
                        .push(id);
                }
                None => {
                    free_by_name
                        .entry(f.func.name.as_str())
                        .or_default()
                        .push(id);
                    free_by_path
                        .entry((f.module.clone(), f.func.name.as_str()))
                        .or_insert(id);
                }
            }
        }
        // Trait-object dispatch: candidates for (Trait, m) include every
        // implementing type's m.
        let mut trait_merged: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (tr, ty) in &trait_impls {
            let keys: Vec<&str> = methods_by_owner
                .keys()
                .filter(|(o, _)| *o == ty.as_str())
                .map(|(_, m)| *m)
                .collect();
            for m in keys {
                let ids = methods_by_owner[&(ty.as_str(), m)].clone();
                trait_merged
                    .entry((tr.as_str(), m))
                    .or_default()
                    .extend(ids);
            }
        }
        for ((tr, m), ids) in trait_merged {
            methods_by_owner.entry((tr, m)).or_default().extend(ids);
        }
        let owned_types: HashSet<&str> = fns
            .iter()
            .filter_map(|f| f.owner.as_deref())
            .chain(fields.keys().map(|(t, _)| t.as_str()))
            .collect();
        let mut method_owner_counts: HashMap<&str, usize> = HashMap::new();
        {
            let mut owners_of: HashMap<&str, HashSet<&str>> = HashMap::new();
            for f in fns.iter().filter(|f| !f.in_test) {
                if let Some(owner) = f.owner.as_deref() {
                    owners_of
                        .entry(f.func.name.as_str())
                        .or_default()
                        .insert(owner);
                }
            }
            for (name, owners) in owners_of {
                method_owner_counts.insert(name, owners.len());
            }
        }

        let resolver = Resolver {
            free_by_name: &free_by_name,
            free_by_path: &free_by_path,
            methods_by_owner: &methods_by_owner,
            methods_by_name: &methods_by_name,
            method_owner_counts: &method_owner_counts,
            fields: &fields,
            owned_types: &owned_types,
        };

        // Marker lines per file (the `full-rebuild fallback` escape).
        let markers: Vec<HashSet<u32>> = ws
            .files
            .iter()
            .map(|sf| {
                sf.ast
                    .comments
                    .iter()
                    .filter(|c| c.text.contains("full-rebuild fallback"))
                    .map(|c| c.line)
                    .collect()
            })
            .collect();

        // Call sites + primitive effects.
        let n = fns.len();
        let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(n);
        let mut effects: Vec<EffectSet> = vec![EffectSet::default(); n];
        let mut origins: Vec<[Option<Origin>; EFFECT_COUNT]> =
            (0..n).map(|_| std::array::from_fn(|_| None)).collect();

        for id in 0..n {
            let node = &fns[id];
            if node.in_test || !node.func.has_body {
                calls.push(Vec::new());
                continue;
            }
            let sf = &ws.files[node.file];
            let local_types = local_types(node);
            let sites = extract_calls(
                node,
                &fns[id].module,
                &uses[node.file],
                &local_types,
                &resolver,
                &by_file[node.file],
                &fns,
                id,
                &markers[node.file],
            );
            for (e, line, what) in prim_effects(node, &local_types, &sf.rel) {
                if effects[id].insert(e) {
                    origins[id][e as usize] = Some(Origin::Prim { line, what });
                }
            }
            calls.push(sites);
        }

        let mut engine = Engine {
            fns,
            calls,
            effects,
            origins,
            by_file,
            rels,
        };
        engine.fixpoint();
        engine
    }

    /// Monotone propagation: callee effects flow to callers until stable.
    /// Helper cycles are harmless — bits only ever turn on.
    fn fixpoint(&mut self) {
        loop {
            let mut changed = false;
            for id in 0..self.fns.len() {
                if self.fns[id].in_test {
                    continue;
                }
                for c in 0..self.calls[id].len() {
                    let (line, marked) = (self.calls[id][c].line, self.calls[id][c].marked);
                    for t in 0..self.calls[id][c].targets.len() {
                        let callee = self.calls[id][c].targets[t];
                        if callee == id {
                            continue;
                        }
                        let callee_eff = self.effects[callee];
                        for e in Effect::ALL {
                            if e == Effect::Scans && marked {
                                continue;
                            }
                            if callee_eff.has(e) && self.effects[id].insert(e) {
                                self.origins[id][e as usize] = Some(Origin::Call { line, callee });
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The transitive effect summary of a function.
    pub fn effects(&self, id: FnId) -> EffectSet {
        self.effects[id]
    }

    /// Resolved call sites inside a function body.
    pub fn calls(&self, id: FnId) -> &[CallSite] {
        &self.calls[id]
    }

    /// FnIds defined in the file at `file_idx`.
    pub fn fns_in_file(&self, file_idx: usize) -> &[FnId] {
        &self.by_file[file_idx]
    }

    /// The workspace-relative path of the file containing `id`.
    pub fn rel(&self, id: FnId) -> &str {
        &self.rels[self.fns[id].file]
    }

    /// Finds the non-test fn named `name` in the file at `file_idx`
    /// (first definition wins, mirroring `SourceFile::fn_map`).
    pub fn fn_in_file(&self, file_idx: usize, name: &str) -> Option<FnId> {
        self.by_file[file_idx]
            .iter()
            .copied()
            .find(|&id| !self.fns[id].in_test && self.fns[id].func.name == name)
    }

    /// The witness chain for `id`'s `effect`: `(file, line)` hops from
    /// `id`'s body down to the primitive site, plus a description of the
    /// primitive. Empty chain when the fn does not have the effect.
    pub fn chain(&self, id: FnId, effect: Effect) -> (Vec<(String, u32)>, String) {
        let mut hops = Vec::new();
        let mut cur = id;
        let mut what = effect.describe().to_string();
        // The origin DAG is acyclic by construction (an origin always
        // points at a node whose effect was set earlier), but cap the walk
        // anyway.
        for _ in 0..64 {
            match &self.origins[cur][effect as usize] {
                Some(Origin::Prim { line, what: w }) => {
                    hops.push((self.rels[self.fns[cur].file].clone(), *line));
                    what = w.clone();
                    break;
                }
                Some(Origin::Call { line, callee }) => {
                    hops.push((self.rels[self.fns[cur].file].clone(), *line));
                    cur = *callee;
                }
                None => break,
            }
        }
        (hops, what)
    }

    /// The witness chain for a call from `site` into `target`, starting at
    /// the call site itself: `caller_file:site_line → ... → prim`.
    pub fn chain_through(
        &self,
        caller: FnId,
        site_line: u32,
        target: FnId,
        effect: Effect,
    ) -> (Vec<(String, u32)>, String) {
        let (mut hops, what) = self.chain(target, effect);
        hops.insert(0, (self.rels[self.fns[caller].file].clone(), site_line));
        hops.dedup();
        (hops, what)
    }
}

/// Name-resolution context shared across functions.
struct Resolver<'e> {
    free_by_name: &'e HashMap<&'e str, Vec<FnId>>,
    free_by_path: &'e HashMap<(String, &'e str), FnId>,
    methods_by_owner: &'e HashMap<(&'e str, &'e str), Vec<FnId>>,
    methods_by_name: &'e HashMap<&'e str, Vec<FnId>>,
    /// Method name -> number of distinct owner types defining it.
    method_owner_counts: &'e HashMap<&'e str, usize>,
    fields: &'e HashMap<(String, String), String>,
    owned_types: &'e HashSet<&'e str>,
}

/// `crates/db/src/generators/mod.rs` → `moira_db::generators`.
fn module_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" {
        let mut mods = vec![format!("moira_{}", parts[1])];
        for p in &parts[3..] {
            let stem = p.trim_end_matches(".rs");
            if stem == "lib" || stem == "main" || stem == "mod" {
                continue;
            }
            mods.push(stem.to_string());
        }
        mods.join("::")
    } else {
        rel.trim_end_matches(".rs").replace('/', "::")
    }
}

/// Recursive item walk: collects functions (with impl owner and module
/// path), `use` imports, struct field types, and trait-impl pairs.
#[allow(clippy::too_many_arguments)]
fn collect_items<'a>(
    items: &'a [Item],
    module: &str,
    owner: Option<&str>,
    in_test: bool,
    file: usize,
    fns: &mut Vec<FnNode<'a>>,
    uses: &mut HashMap<String, Vec<String>>,
    fields: &mut HashMap<(String, String), String>,
    trait_impls: &mut Vec<(String, String)>,
) {
    for item in items {
        match item {
            Item::Fn(f) => {
                let returns_guard = f
                    .sig
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text.contains("Guard"));
                fns.push(FnNode {
                    file,
                    func: f,
                    owner: owner.map(str::to_string),
                    module: module.to_string(),
                    in_test: in_test || f.attrs.iter().any(|a| a.is_test()),
                    returns_guard,
                });
            }
            Item::Mod(m) => {
                if let Some(inner) = &m.items {
                    let test = in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                    let sub = format!("{module}::{}", m.name);
                    collect_items(
                        inner,
                        &sub,
                        owner,
                        test,
                        file,
                        fns,
                        uses,
                        fields,
                        trait_impls,
                    );
                }
            }
            Item::Impl(im) => {
                let (trait_name, type_name) = impl_parts(&im.header);
                if let (Some(tr), Some(ty)) = (&trait_name, &type_name) {
                    trait_impls.push((tr.clone(), ty.clone()));
                }
                let own = type_name.or(trait_name);
                collect_items(
                    &im.items,
                    module,
                    own.as_deref(),
                    in_test,
                    file,
                    fns,
                    uses,
                    fields,
                    trait_impls,
                );
            }
            Item::Other(toks) => {
                let mut k = 0usize;
                while k < toks.len() && is_item_modifier(&toks[k]) {
                    k += 1;
                    if k < toks.len() && toks[k].is_punct('(') {
                        k = scan::close_of(toks, k) + 1;
                    }
                }
                match toks.get(k).map(|t| t.text.as_str()) {
                    Some("use") => parse_use(toks, k + 1, module, uses),
                    Some("struct") => parse_struct_fields(toks, k + 1, fields),
                    _ => {}
                }
            }
        }
    }
}

fn is_item_modifier(t: &Token) -> bool {
    t.kind == TokenKind::Ident
        && matches!(
            t.text.as_str(),
            "pub" | "const" | "unsafe" | "async" | "extern"
        )
}

/// Splits an impl/trait header into (trait name, self type name).
/// `Storage for DurableEngine` → (Some(Storage), Some(DurableEngine));
/// `LockManager` → (None, Some(LockManager));
/// a `trait T` header parses the same way (owner = T).
fn impl_parts(header: &[Token]) -> (Option<String>, Option<String>) {
    let mut i = 0usize;
    // Leading generics `<...>`.
    if header.first().is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < header.len() {
            if header[i].is_punct('<') {
                depth += 1;
            } else if header[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Split at a top-level `for`.
    let mut depth = 0i32;
    let mut for_pos = None;
    for (j, t) in header.iter().enumerate().skip(i) {
        if t.is_punct('<') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('>') || t.is_punct(')') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            for_pos = Some(j);
            break;
        } else if depth == 0 && (t.is_ident("where") || t.is_punct(':')) {
            break;
        }
    }
    let base_of = |toks: &[Token]| -> Option<String> {
        // Last path-segment ident before generic args.
        let mut last = None;
        let mut depth = 0i32;
        for t in toks {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokenKind::Ident && t.text != "dyn" {
                last = Some(t.text.clone());
            } else if depth == 0 && t.is_ident("where") {
                break;
            }
        }
        last
    };
    match for_pos {
        Some(p) => (base_of(&header[i..p]), base_of(&header[p + 1..])),
        None => (None, base_of(&header[i..])),
    }
}

/// Parses one `use` item (tokens after the `use` keyword) into
/// name → full-path-segments entries. Handles `::`-separated paths,
/// `{...}` groups (recursively), `as` renames, and `self`; glob imports
/// are ignored.
fn parse_use(toks: &[Token], start: usize, module: &str, out: &mut HashMap<String, Vec<String>>) {
    fn walk(
        toks: &[Token],
        mut i: usize,
        end: usize,
        prefix: &[String],
        module: &str,
        out: &mut HashMap<String, Vec<String>>,
    ) {
        let mut path = prefix.to_vec();
        while i < end {
            let t = &toks[i];
            if t.kind == TokenKind::Ident {
                let seg = t.text.clone();
                // `name as alias`
                if toks.get(i + 1).is_some_and(|n| n.is_ident("as")) {
                    if let Some(alias) = toks.get(i + 2).filter(|a| a.kind == TokenKind::Ident) {
                        let mut full = path.clone();
                        push_seg(&mut full, &seg, module);
                        out.insert(alias.text.clone(), full);
                    }
                    return;
                }
                // `path::` continues; a terminal segment is a leaf.
                if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    push_seg(&mut path, &seg, module);
                    i += 3;
                    continue;
                }
                if seg == "self" {
                    if let Some(last) = path.last().cloned() {
                        out.insert(last, path.clone());
                    }
                } else {
                    let mut full = path.clone();
                    push_seg(&mut full, &seg, module);
                    out.insert(seg, full);
                }
                return;
            }
            if t.is_punct('{') {
                // Group: each comma-separated subtree restarts from `path`.
                let close = scan::close_of(toks, i);
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut item_start = j;
                while j <= close && j < toks.len() {
                    let u = &toks[j];
                    if u.is_punct('{') {
                        depth += 1;
                    } else if u.is_punct('}') {
                        if depth == 0 {
                            if item_start < j {
                                walk(toks, item_start, j, &path, module, out);
                            }
                            break;
                        }
                        depth -= 1;
                    } else if u.is_punct(',') && depth == 0 {
                        if item_start < j {
                            walk(toks, item_start, j, &path, module, out);
                        }
                        item_start = j + 1;
                    }
                    j += 1;
                }
                return;
            }
            if t.is_punct('*') || t.is_punct(';') {
                return;
            }
            i += 1;
        }
    }
    fn push_seg(path: &mut Vec<String>, seg: &str, module: &str) {
        match seg {
            "crate" => {
                path.clear();
                if let Some(krate) = module.split("::").next() {
                    path.push(krate.to_string());
                }
            }
            "super" => {
                if path.is_empty() {
                    let mut mods: Vec<&str> = module.split("::").collect();
                    mods.pop();
                    path.extend(mods.iter().map(|s| s.to_string()));
                } else {
                    path.pop();
                }
            }
            "self" => {
                if path.is_empty() {
                    path.extend(module.split("::").map(str::to_string));
                }
            }
            _ => path.push(seg.to_string()),
        }
    }
    let end = toks
        .iter()
        .position(|t| t.is_punct(';'))
        .unwrap_or(toks.len());
    walk(toks, start, end, &[], module, out);
}

/// Parses `struct Name { field: Type, ... }` into (Name, field) → base
/// field type entries. Tuple and unit structs contribute nothing.
fn parse_struct_fields(toks: &[Token], start: usize, out: &mut HashMap<(String, String), String>) {
    let Some(name_tok) = toks.get(start).filter(|t| t.kind == TokenKind::Ident) else {
        return;
    };
    let name = name_tok.text.clone();
    // First `{` at angle-depth zero opens the field block.
    let mut i = start + 1;
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') || t.is_punct(';') {
            return; // tuple or unit struct
        } else if t.is_punct('{') && angle <= 0 {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return;
    }
    let close = scan::close_of(toks, i);
    let mut j = i + 1;
    while j < close {
        // Skip attributes and visibility.
        while j < close && toks[j].is_punct('#') {
            if toks.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                j = scan::close_of(toks, j + 1) + 1;
            } else {
                j += 1;
            }
        }
        if j < close && toks[j].is_ident("pub") {
            j += 1;
            if j < close && toks[j].is_punct('(') {
                j = scan::close_of(toks, j) + 1;
            }
        }
        let Some(field) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            break;
        };
        if !toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            break;
        }
        // Type tokens run to the next comma at depth zero.
        let mut k = j + 2;
        let mut depth = 0i32;
        while k < close {
            let t = &toks[k];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                break;
            }
            k += 1;
        }
        if let Some(base) = base_type(&toks[j + 2..k]) {
            out.insert((name.clone(), field.text.clone()), base);
        }
        j = k + 1;
    }
}

/// First non-wrapper capitalized identifier of a type token stream.
fn base_type(toks: &[Token]) -> Option<String> {
    toks.iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .find(|t| {
            !TYPE_WRAPPERS.contains(&t.text.as_str())
                && t.text.chars().next().is_some_and(|c| c.is_uppercase())
        })
        .map(|t| t.text.clone())
}

/// Infers local-variable and parameter base types for one function.
fn local_types(node: &FnNode<'_>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    // Parameters: everything between the signature parens.
    let sig = &node.func.sig;
    if let Some(open) = sig.iter().position(|t| t.is_punct('(')) {
        let close = scan::close_of(sig, open);
        let mut j = open + 1;
        while j < close {
            // Parameter name: first ident before a `:` at depth 0.
            let mut depth = 0i32;
            let mut colon = None;
            let mut end = close;
            for k in j..close {
                let t = &sig[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    depth -= 1;
                } else if t.is_punct(':') && depth == 0 && colon.is_none() {
                    // `::` is two adjacent colons; skip path separators.
                    let sep = sig.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        || k > 0 && sig[k - 1].is_punct(':');
                    if !sep {
                        colon = Some(k);
                    }
                } else if t.is_punct(',') && depth == 0 {
                    end = k;
                    break;
                }
            }
            if let Some(c) = colon.filter(|&c| c < end) {
                let pname = sig[j..c]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref");
                if let (Some(p), Some(ty)) = (pname, base_type(&sig[c + 1..end])) {
                    out.insert(p.text.clone(), ty);
                }
            }
            j = end + 1;
        }
    }
    if let Some(owner) = &node.owner {
        out.insert("self".to_string(), owner.clone());
    }
    // Let bindings.
    let body = &node.func.body;
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        let Some(name) = body.get(k).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let name = name.text.clone();
        // `let x: Type = ...`
        if body.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !body.get(k + 2).is_some_and(|t| t.is_punct(':'))
        {
            let stop = (k + 2..body.len())
                .find(|&j| body[j].is_punct('=') || body[j].is_punct(';'))
                .unwrap_or(body.len());
            if let Some(ty) = base_type(&body[k + 2..stop]) {
                out.insert(name, ty);
            }
            continue;
        }
        if !body.get(k + 1).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        // RHS forms: `Type::ctor(..)`, `Type { .. }`, or a state-guard
        // acquisition (`..state.read()` / `write_or_busy(..)` style
        // helpers are typed by their Guard-returning signature elsewhere).
        let mut r = k + 2;
        while r < body.len() && (body[r].is_punct('&') || body[r].is_ident("mut")) {
            r += 1;
        }
        if let Some(first) = body.get(r).filter(|t| t.kind == TokenKind::Ident) {
            let cap = first.text.chars().next().is_some_and(|c| c.is_uppercase());
            if cap
                && body.get(r + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(r + 2).is_some_and(|t| t.is_punct(':'))
            {
                out.insert(name.clone(), first.text.clone());
                continue;
            }
            if cap && body.get(r + 1).is_some_and(|t| t.is_punct('{')) {
                out.insert(name.clone(), first.text.clone());
                continue;
            }
        }
        // `let g = <state-ish>.read()/write()` binds a guard that derefs
        // to MoiraState.
        let stmt_end = scan::statement_end(body, k + 1);
        for mc in scan::method_calls(&body[r..stmt_end.min(body.len())]) {
            if (ACQUIRE_READ.contains(&mc.name) || ACQUIRE_WRITE.contains(&mc.name))
                && scan::receiver_idents(&body[r..stmt_end.min(body.len())], mc.idx)
                    .last()
                    .is_some_and(|l| STATE_RECV.contains(&l.as_str()))
            {
                out.insert(name.clone(), "MoiraState".to_string());
                break;
            }
        }
    }
    out
}

/// Extracts and resolves the call sites of one function body.
#[allow(clippy::too_many_arguments)]
fn extract_calls<'a>(
    node: &FnNode<'a>,
    module: &str,
    uses: &HashMap<String, Vec<String>>,
    local_types: &HashMap<String, String>,
    resolver: &Resolver<'_>,
    same_file: &[FnId],
    fns: &[FnNode<'a>],
    self_id: FnId,
    markers: &HashSet<u32>,
) -> Vec<CallSite> {
    let body = &node.func.body;
    let mut out = Vec::new();
    let marked = |line: u32| {
        markers.contains(&line)
            || markers.contains(&(line + 1))
            || (line > 0 && markers.contains(&(line - 1)))
    };

    for fc in scan::free_calls(body) {
        // Leading path segments (`a::b::name(`).
        let mut segs: Vec<String> = Vec::new();
        let mut i = fc.idx as isize - 1;
        while i >= 1 && body[i as usize].is_punct(':') && body[(i - 1) as usize].is_punct(':') {
            let j = i - 2;
            if j >= 0 && body[j as usize].kind == TokenKind::Ident {
                segs.push(body[j as usize].text.clone());
                i = j - 1;
            } else {
                break;
            }
        }
        segs.reverse();
        let targets = resolver.resolve_free(
            &segs,
            fc.name,
            module,
            node.owner.as_deref(),
            uses,
            same_file,
            fns,
            self_id,
        );
        out.push(CallSite {
            idx: fc.idx,
            close: scan::close_of(body, fc.idx + 1),
            line: fc.line,
            name: fc.name.to_string(),
            targets,
            marked: marked(fc.line),
            method: false,
        });
    }

    for mc in scan::method_calls(body) {
        let recv_type = receiver_type(body, mc.idx, local_types, resolver);
        let targets = resolver.resolve_method(recv_type.as_deref(), mc.name);
        out.push(CallSite {
            idx: mc.idx,
            close: scan::close_of(body, mc.idx + 2),
            line: mc.line,
            name: mc.name.to_string(),
            targets,
            marked: marked(mc.line),
            method: true,
        });
    }
    out.sort_by_key(|c| c.idx);
    out
}

/// Infers the base type of the receiver of the `.` at `dot_idx`, walking
/// the chain left-to-right through declared struct fields and
/// type-preserving passthrough methods.
fn receiver_type(
    body: &[Token],
    dot_idx: usize,
    local_types: &HashMap<String, String>,
    resolver: &Resolver<'_>,
) -> Option<String> {
    // Segment the chain: idents separated by `.`, rightmost at dot_idx.
    #[derive(PartialEq)]
    enum Seg {
        Field(String),
        Method(String),
    }
    let mut segs: Vec<Seg> = Vec::new();
    let mut i = dot_idx as isize - 1;
    while i >= 0 {
        let t = &body[i as usize];
        if t.is_punct(')') || t.is_punct(']') {
            let open = scan::open_of(body, i as usize)?;
            // The ident before the group is a method (or index) callee.
            if open >= 1 && body[open - 1].kind == TokenKind::Ident {
                segs.push(Seg::Method(body[open - 1].text.clone()));
                i = open as isize - 2;
                // Consume the separating `.` / `::` below.
                if i >= 0 && body[i as usize].is_punct('.') {
                    i -= 1;
                    continue;
                }
                if i >= 1 && body[i as usize].is_punct(':') && body[(i - 1) as usize].is_punct(':')
                {
                    i -= 2;
                    continue;
                }
                break;
            }
            return None;
        }
        if t.is_punct('?') {
            i -= 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            segs.push(Seg::Field(t.text.clone()));
            if i >= 1 && body[(i - 1) as usize].is_punct('.') {
                i -= 2;
                continue;
            }
            if i >= 2
                && body[(i - 1) as usize].is_punct(':')
                && body[(i - 2) as usize].is_punct(':')
            {
                // Path-qualified start (`Type::CONST.method()`): treat the
                // path head as the start segment.
                i -= 3;
                continue;
            }
            break;
        }
        break;
    }
    segs.reverse();
    let mut iter = segs.into_iter();
    let mut ty: String = match iter.next()? {
        Seg::Field(name) | Seg::Method(name) => {
            if let Some(t) = local_types.get(&name) {
                t.clone()
            } else if resolver.owned_types.contains(name.as_str())
                && name.chars().next().is_some_and(|c| c.is_uppercase())
            {
                // `Type::ctor(..).method()` — assume the ctor returns Self.
                name
            } else {
                return None;
            }
        }
    };
    for seg in iter {
        match seg {
            Seg::Field(f) => {
                ty = resolver.fields.get(&(ty.clone(), f)).cloned()?;
            }
            Seg::Method(m) => {
                if PASSTHROUGH_METHODS.contains(&m.as_str()) {
                    continue; // type-preserving
                }
                if ACQUIRE_READ.contains(&m.as_str()) || ACQUIRE_WRITE.contains(&m.as_str()) {
                    // Guard acquisition derefs to the protected payload.
                    if ty == "SharedState" || ty == "RwLock" || ty == "MoiraState" {
                        ty = "MoiraState".to_string();
                        continue;
                    }
                }
                return None; // unknown return type
            }
        }
    }
    Some(ty)
}

impl<'e> Resolver<'e> {
    /// Resolves a free (or path-qualified) call.
    #[allow(clippy::too_many_arguments)]
    fn resolve_free(
        &self,
        segs: &[String],
        name: &str,
        module: &str,
        owner: Option<&str>,
        uses: &HashMap<String, Vec<String>>,
        same_file: &[FnId],
        fns: &[FnNode<'_>],
        self_id: FnId,
    ) -> Vec<FnId> {
        if !segs.is_empty() {
            let last = segs.last().unwrap().as_str();
            // `Self::method(..)` / `Type::method(..)`.
            if last == "Self" {
                if let Some(own) = owner {
                    if let Some(ids) = self.methods_by_owner.get(&(own, name)) {
                        return ids.clone();
                    }
                }
                return Vec::new();
            }
            if last.chars().next().is_some_and(|c| c.is_uppercase()) {
                // Resolve a `use`-renamed type too (`use x::Y as Z`).
                let ty = uses
                    .get(last)
                    .and_then(|p| p.last())
                    .map(String::as_str)
                    .unwrap_or(last);
                return self
                    .methods_by_owner
                    .get(&(ty, name))
                    .cloned()
                    .unwrap_or_default();
            }
            // Module path: expand the head through imports / crate / super.
            let mut path: Vec<String> = Vec::new();
            for (n, seg) in segs.iter().enumerate() {
                match seg.as_str() {
                    "crate" => {
                        path.clear();
                        if let Some(k) = module.split("::").next() {
                            path.push(k.to_string());
                        }
                    }
                    "super" => {
                        if path.is_empty() {
                            let mut mods: Vec<&str> = module.split("::").collect();
                            mods.pop();
                            path.extend(mods.iter().map(|s| s.to_string()));
                        } else {
                            path.pop();
                        }
                    }
                    "self" => {
                        if path.is_empty() {
                            path.extend(module.split("::").map(str::to_string));
                        }
                    }
                    other => {
                        if n == 0 {
                            if let Some(full) = uses.get(other) {
                                path.extend(full.iter().cloned());
                                continue;
                            }
                        }
                        path.push(other.to_string());
                    }
                }
            }
            let joined = path.join("::");
            if let Some(&id) = self.free_by_path.get(&(joined.clone(), name)) {
                return vec![id];
            }
            // A one-segment path may name a sibling module of this file.
            if segs.len() == 1 {
                let sibling = format!("{module}::{}", segs[0]);
                if let Some(&id) = self.free_by_path.get(&(sibling, name)) {
                    return vec![id];
                }
            }
            return Vec::new();
        }
        // Bare name: same file first.
        if let Some(&id) = same_file
            .iter()
            .find(|&&id| !fns[id].in_test && fns[id].func.name == name && id != self_id)
        {
            // Same-file free fns and same-impl sibling methods both bind.
            let cand = &fns[id];
            if cand.owner.is_none() || cand.owner.as_deref() == owner {
                return vec![id];
            }
        }
        // Imported name.
        if let Some(full) = uses.get(name) {
            if full.len() >= 2 {
                let module_part = full[..full.len() - 1].join("::");
                let leaf = full.last().unwrap().as_str();
                if leaf == name {
                    if let Some(&id) = self.free_by_path.get(&(module_part, name)) {
                        return vec![id];
                    }
                }
            }
        }
        // Same-crate, then workspace-unique.
        if let Some(ids) = self.free_by_name.get(name) {
            let krate = module.split("::").next().unwrap_or("");
            let in_crate: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&id| fns[id].module.split("::").next().unwrap_or("") == krate)
                .collect();
            if in_crate.len() == 1 {
                return in_crate;
            }
            if ids.len() == 1 {
                return ids.clone();
            }
        }
        Vec::new()
    }

    /// Resolves a method call from its receiver type (or by workspace-wide
    /// name uniqueness for names that cannot be confused with std).
    fn resolve_method(&self, recv_type: Option<&str>, name: &str) -> Vec<FnId> {
        if let Some(ty) = recv_type {
            return self
                .methods_by_owner
                .get(&(ty, name))
                .cloned()
                .unwrap_or_default();
        }
        if METHOD_DENYLIST.contains(&name) {
            return Vec::new();
        }
        // Accept a bare-name match only when every workspace definition of
        // the name lives on one type (or one trait plus its impls, which
        // share the name by construction — two distinct owners).
        match self.method_owner_counts.get(name) {
            Some(&count) if count <= 2 => {
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }
}

/// Primitive effect sites in one function body.
fn prim_effects(
    node: &FnNode<'_>,
    local_types: &HashMap<String, String>,
    rel: &str,
) -> Vec<(Effect, u32, String)> {
    let body = &node.func.body;
    let mut out = Vec::new();

    // Guard acquisitions.
    for mc in scan::method_calls(body) {
        let is_read = ACQUIRE_READ.contains(&mc.name);
        let is_write = ACQUIRE_WRITE.contains(&mc.name);
        if is_read || is_write {
            let recv = scan::receiver_idents(body, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if STATE_RECV.contains(&last) {
                let e = if is_read {
                    Effect::AcquiresRead
                } else {
                    Effect::AcquiresWrite
                };
                out.push((e, mc.line, format!("{last}.{}()", mc.name)));
            }
        }
        // Blocking methods.
        if BLOCKING.contains(&mc.name) {
            out.push((Effect::Blocks, mc.line, format!(".{}()", mc.name)));
        }
        if BLOCKING_NET.contains(&mc.name) {
            out.push((Effect::BlocksNet, mc.line, format!(".{}()", mc.name)));
        }
        // Blocking receive: `.recv()` on anything (try_recv is distinct).
        if mc.name == "recv" {
            out.push((Effect::Blocks, mc.line, ".recv()".to_string()));
        }
        // Reactor waits.
        if mc.name == "wait" {
            let recv = scan::receiver_idents(body, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if WAIT_RECV.contains(&last) {
                out.push((Effect::Waits, mc.line, format!("{last}.wait()")));
            }
        } else if LOOP_WAITS.contains(&mc.name) {
            out.push((Effect::Waits, mc.line, format!(".{}()", mc.name)));
        }
        // Mutations through the journaled surface: receiver rooted at the
        // state / a db- or table-typed local / `self` inside the db types.
        if MUTATING.contains(&mc.name) {
            let recv = scan::receiver_idents(body, mc.idx);
            let root = recv.first().map(String::as_str).unwrap_or("");
            let root_ty = local_types.get(root).map(String::as_str);
            let rooted = root == "state"
                || root == "db"
                || recv.iter().any(|r| r == "db" || r == "table")
                || matches!(root_ty, Some("Database" | "Table" | "MoiraState"))
                || (root == "self"
                    && node
                        .owner
                        .as_deref()
                        .is_some_and(|o| MUTATING_OWNERS.contains(&o)));
            if rooted {
                out.push((Effect::Mutates, mc.line, format!(".{}()", mc.name)));
            }
        }
    }
    for fc in scan::free_calls(body) {
        if BLOCKING.contains(&fc.name) {
            out.push((Effect::Blocks, fc.line, format!("{}(...)", fc.name)));
        }
        if BLOCKING_NET.contains(&fc.name) {
            out.push((Effect::BlocksNet, fc.line, format!("{}(...)", fc.name)));
        }
    }
    // Blocking path prefixes (`std::fs::...`, `std::net::...`).
    for i in 0..body.len() {
        for (paths, effect) in [
            (BLOCKING_PATHS, Effect::Blocks),
            (NET_PATHS, Effect::BlocksNet),
        ] {
            for path in paths {
                if scan::path_starts(body, i, path)
                    && (i == 0 || !body[i - 1].is_punct(':'))
                    && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
                {
                    out.push((effect, body[i].line, format!("{}::{}", path[0], path[1])));
                }
            }
        }
    }
    // The db-layer mutation primitives themselves.
    if MUTATING.contains(&node.func.name.as_str())
        && node
            .owner
            .as_deref()
            .is_some_and(|o| MUTATING_OWNERS.contains(&o))
    {
        out.push((
            Effect::Mutates,
            node.func.line,
            format!(
                "{}::{}",
                node.owner.as_deref().unwrap_or(""),
                node.func.name
            ),
        ));
    }
    // Whole-table scans — outside crates/db (the planner's own Scan arm is
    // the legitimate implementation of scanning, not a discipline breach).
    if !rel.starts_with("crates/db/src/") {
        let locals = table_locals(body);
        for mc in scan::method_calls(body) {
            if mc.name == "iter" {
                let recv = scan::receiver_idents(body, mc.idx);
                if recv.iter().any(|r| r == "table")
                    || recv.first().is_some_and(|r| locals.contains(r.as_str()))
                {
                    out.push((Effect::Scans, mc.line, ".table(..).iter()".to_string()));
                }
            }
        }
        for i in 0..body.len() {
            if scan::path_starts(body, i, &["Pred", "True"]) {
                out.push((Effect::Scans, body[i].line, "Pred::True".to_string()));
            }
        }
    }
    out
}

/// True when the `.name(` method call at `dot_idx` is a state-guard
/// acquisition (`state.read()` / `shared.try_write()` / ...). Shared with
/// the passes so the primitive definition lives in one place.
pub fn is_state_acquire(body: &[Token], dot_idx: usize, name: &str) -> bool {
    (ACQUIRE_READ.contains(&name) || ACQUIRE_WRITE.contains(&name))
        && scan::receiver_idents(body, dot_idx)
            .last()
            .is_some_and(|l| STATE_RECV.contains(&l.as_str()))
}

/// Direct blocking-primitive sites in a body, both hard-blocking and
/// network classes: (token index, line, description). Used by the passes
/// to point diagnostics at the exact in-body token.
pub fn blocking_prim_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if BLOCKING.contains(&mc.name) || BLOCKING_NET.contains(&mc.name) || mc.name == "recv" {
            out.push((mc.idx, mc.line, format!(".{}()", mc.name)));
        }
    }
    for fc in scan::free_calls(body) {
        if BLOCKING.contains(&fc.name) || BLOCKING_NET.contains(&fc.name) {
            out.push((fc.idx, fc.line, format!("{}(...)", fc.name)));
        }
    }
    for i in 0..body.len() {
        for path in BLOCKING_PATHS.iter().chain(NET_PATHS) {
            if scan::path_starts(body, i, path)
                && (i == 0 || !body[i - 1].is_punct(':'))
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            {
                out.push((i, body[i].line, format!("{}::{}", path[0], path[1])));
            }
        }
    }
    out
}

/// Hard-blocking (non-network) primitive sites only — the reactor wait
/// path tolerates non-blocking socket calls but nothing that sleeps.
pub fn hard_blocking_prim_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if BLOCKING.contains(&mc.name) || mc.name == "recv" {
            out.push((mc.idx, mc.line, format!(".{}()", mc.name)));
        }
    }
    for fc in scan::free_calls(body) {
        if BLOCKING.contains(&fc.name) {
            out.push((fc.idx, fc.line, format!("{}(...)", fc.name)));
        }
    }
    for i in 0..body.len() {
        for path in BLOCKING_PATHS {
            if scan::path_starts(body, i, path)
                && (i == 0 || !body[i - 1].is_punct(':'))
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            {
                out.push((i, body[i].line, format!("{}::{}", path[0], path[1])));
            }
        }
    }
    out
}

/// Reactor-wait sites in a body: `reactor.wait(..)` / `poller.wait(..)`
/// plus calls to the loop entry points that contain the wait.
pub fn wait_prim_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if mc.name == "wait" {
            let recv = scan::receiver_idents(body, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if WAIT_RECV.contains(&last) {
                out.push((mc.idx, mc.line, format!("{last}.wait()")));
            }
        } else if LOOP_WAITS.contains(&mc.name) {
            out.push((mc.idx, mc.line, format!(".{}()", mc.name)));
        }
    }
    out
}

/// Local names bound from `..table(..)` calls.
fn table_locals(body: &[Token]) -> HashSet<String> {
    let mut out = HashSet::new();
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 >= body.len() || body[k].kind != TokenKind::Ident || !body[k + 1].is_punct('=') {
            continue;
        }
        let end = scan::statement_end(body, k + 1);
        let rhs = &body[k + 2..end.min(body.len())];
        let is_table_call = rhs
            .iter()
            .zip(rhs.iter().skip(1))
            .any(|(a, b)| a.is_punct('.') && b.is_ident("table"))
            || rhs.first().is_some_and(|t| t.is_ident("table"));
        if is_table_call {
            out.insert(body[k].text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_of(sources: &[(&str, &str)]) -> (Workspace, Vec<String>) {
        let ws = Workspace::from_sources(sources).expect("parse");
        let rels: Vec<String> = ws.files.iter().map(|f| f.rel.clone()).collect();
        (ws, rels)
    }

    fn fn_id(e: &Engine<'_>, rels: &[String], rel: &str, name: &str) -> FnId {
        let fi = rels.iter().position(|r| r == rel).expect("file");
        e.fn_in_file(fi, name).expect("fn")
    }

    #[test]
    fn cross_module_free_call_via_use_import() {
        let (ws, rels) = engine_of(&[
            (
                "crates/core/src/helpers.rs",
                "pub fn nap(d: Duration) { std::thread::sleep(d); }\n",
            ),
            (
                "crates/core/src/server.rs",
                "use crate::helpers::nap;\n\
                 pub fn outer(state: &SharedState) {\n\
                     let g = state.read();\n\
                     nap(d);\n\
                 }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let outer = fn_id(&e, &rels, "crates/core/src/server.rs", "outer");
        assert!(e.effects(outer).has(Effect::AcquiresRead));
        assert!(
            e.effects(outer).has(Effect::Blocks),
            "Blocks must propagate"
        );
        let (hops, what) = e.chain(outer, Effect::Blocks);
        assert_eq!(hops.len(), 2, "chain {hops:?}");
        assert_eq!(hops[0], ("crates/core/src/server.rs".to_string(), 4));
        assert_eq!(hops[1], ("crates/core/src/helpers.rs".to_string(), 1));
        assert!(what.contains("sleep"), "prim description: {what}");
    }

    #[test]
    fn method_resolution_through_declared_field_type() {
        let (ws, rels) = engine_of(&[
            (
                "crates/core/src/state.rs",
                "pub struct MoiraState { pub db: Database }\n",
            ),
            (
                "crates/db/src/lib.rs",
                "pub struct Database { rows: Vec<Row> }\n\
                 impl Database {\n\
                     pub fn append(&mut self, r: Row) { self.rows.push(r); }\n\
                 }\n",
            ),
            (
                "crates/core/src/write.rs",
                "pub fn add_user(state: &mut MoiraState, row: Row) {\n\
                     state.db.append(row);\n\
                 }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let add = fn_id(&e, &rels, "crates/core/src/write.rs", "add_user");
        let append = fn_id(&e, &rels, "crates/db/src/lib.rs", "append");
        let call = e
            .calls(add)
            .iter()
            .find(|c| c.name == "append")
            .expect("call site");
        assert_eq!(call.targets, vec![append], "typed receiver must resolve");
        assert!(e.effects(add).has(Effect::Mutates));
    }

    #[test]
    fn two_hop_chain_spans_three_files() {
        let (ws, rels) = engine_of(&[
            (
                "crates/core/src/a.rs",
                "use crate::b::middle;\n\
                 pub fn top(state: &SharedState) {\n\
                     let g = state.write();\n\
                     middle();\n\
                 }\n",
            ),
            (
                "crates/core/src/b.rs",
                "use crate::c::leaf;\n\
                 pub fn middle() { leaf(); }\n",
            ),
            (
                "crates/core/src/c.rs",
                "pub fn leaf() { std::thread::sleep(ms); }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let top = fn_id(&e, &rels, "crates/core/src/a.rs", "top");
        assert!(e.effects(top).has(Effect::AcquiresWrite));
        assert!(e.effects(top).has(Effect::Blocks));
        let (hops, _) = e.chain(top, Effect::Blocks);
        let files: Vec<&str> = hops.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(
            files,
            vec![
                "crates/core/src/a.rs",
                "crates/core/src/b.rs",
                "crates/core/src/c.rs"
            ]
        );
    }

    #[test]
    fn recursive_helper_cycle_terminates_and_propagates() {
        let (ws, rels) = engine_of(&[(
            "crates/core/src/rec.rs",
            "pub fn ping(n: u32) { if n > 0 { pong(n); } }\n\
             pub fn pong(n: u32) {\n\
                 std::thread::sleep(ms);\n\
                 ping(n - 1);\n\
             }\n",
        )]);
        let e = Engine::build(&ws);
        let ping = fn_id(&e, &rels, "crates/core/src/rec.rs", "ping");
        let pong = fn_id(&e, &rels, "crates/core/src/rec.rs", "pong");
        assert!(e.effects(ping).has(Effect::Blocks));
        assert!(e.effects(pong).has(Effect::Blocks));
        let (hops, _) = e.chain(ping, Effect::Blocks);
        assert!(hops.len() <= 3, "cycle chain must terminate: {hops:?}");
    }

    #[test]
    fn marked_fallback_edge_stops_scan_propagation() {
        let (ws, rels) = engine_of(&[
            (
                "crates/dcm/src/helpers.rs",
                "pub fn rebuild_rows(state: &MoiraState) {\n\
                     for row in state.db.table(\"users\").iter() { emit(row); }\n\
                 }\n",
            ),
            (
                "crates/dcm/src/gen.rs",
                "use crate::helpers::rebuild_rows;\n\
                 pub fn fragment(state: &MoiraState) {\n\
                     rebuild_rows(state);\n\
                 }\n\
                 pub fn fallback(state: &MoiraState) {\n\
                     // full-rebuild fallback: bounded by snapshot cadence\n\
                     rebuild_rows(state);\n\
                 }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let frag = fn_id(&e, &rels, "crates/dcm/src/gen.rs", "fragment");
        let fall = fn_id(&e, &rels, "crates/dcm/src/gen.rs", "fallback");
        assert!(
            e.effects(frag).has(Effect::Scans),
            "unmarked call propagates"
        );
        assert!(
            !e.effects(fall).has(Effect::Scans),
            "marked fallback edge must not propagate Scans"
        );
    }

    #[test]
    fn ubiquitous_method_names_do_not_link_without_types() {
        let (ws, rels) = engine_of(&[
            (
                "crates/db/src/lib.rs",
                "pub struct Table { rows: Vec<Row> }\n\
                 impl Table {\n\
                     pub fn iter(&self) -> RowIter<'_> { RowIter { t: self } }\n\
                 }\n",
            ),
            (
                "crates/core/src/q.rs",
                "pub fn names(xs: &[String]) -> Vec<String> {\n\
                     xs.iter().cloned().collect()\n\
                 }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let names = fn_id(&e, &rels, "crates/core/src/q.rs", "names");
        let call = e
            .calls(names)
            .iter()
            .find(|c| c.name == "iter")
            .expect("site");
        assert!(
            call.targets.is_empty(),
            "slice .iter() must not resolve to Table::iter"
        );
    }

    #[test]
    fn trait_method_dispatch_reaches_impls() {
        let (ws, rels) = engine_of(&[
            (
                "crates/db/src/storage.rs",
                "pub trait Storage {\n\
                     fn persist(&mut self, bytes: &[u8]);\n\
                 }\n\
                 pub struct DurableEngine { f: File }\n\
                 impl Storage for DurableEngine {\n\
                     fn persist(&mut self, bytes: &[u8]) { self.f.sync_all(); }\n\
                 }\n",
            ),
            (
                "crates/core/src/state.rs",
                "pub struct MoiraState { pub storage: Box<dyn Storage> }\n\
                 pub fn commit(state: &mut MoiraState, b: &[u8]) {\n\
                     state.storage.persist(b);\n\
                 }\n",
            ),
        ]);
        let e = Engine::build(&ws);
        let commit = fn_id(&e, &rels, "crates/core/src/state.rs", "commit");
        assert!(
            e.effects(commit).has(Effect::Blocks),
            "dyn Storage::persist must reach the fsync in DurableEngine"
        );
    }

    #[test]
    fn module_paths_derive_from_file_layout() {
        assert_eq!(module_of("crates/db/src/lock.rs"), "moira_db::lock");
        assert_eq!(module_of("crates/core/src/lib.rs"), "moira_core");
        assert_eq!(
            module_of("crates/dcm/src/generators/mod.rs"),
            "moira_dcm::generators"
        );
        assert_eq!(
            module_of("crates/dcm/src/generators/hesiod.rs"),
            "moira_dcm::generators::hesiod"
        );
    }
}
