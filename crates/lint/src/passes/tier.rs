//! Pass 1 — tier-discipline.
//!
//! The read/write tier split (PR 2) holds only if:
//!
//! - every handler registered `Handler::Read` takes `&MoiraState` (not
//!   `&mut`) and never calls a mutating `Database`/`Table` API, directly or
//!   through a one-level helper;
//! - every mutation inside a `Handler::Write` handler reaches the database
//!   through `state.db` (or a local borrowed from it), so
//!   `Database::mutation_count` advances and the registry journals the
//!   query (the journaling contract);
//! - `MoiraState` is never `Clone`, and nothing on the query path clones
//!   the state or the database to dodge the tiers (the old CI grep gate,
//!   now receiver-aware).

use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{ItemFn, Token, TokenKind};

pub const NAME: &str = "tier-discipline";

/// Mutating `Database` / `Table` / `MoiraState` APIs a read handler must
/// never reach.
const MUTATING: &[&str] = &[
    "append",
    "update",
    "delete",
    "delete_where",
    "table_mut",
    "create_table",
    "set_value",
];

const QUERIES_DIR: &str = "crates/core/src/queries/";
const HELPERS_FILE: &str = "crates/core/src/queries/helpers.rs";

#[derive(Clone, Copy, PartialEq)]
enum Tier {
    Read,
    Write,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let helpers = ws.file(HELPERS_FILE);
    for sf in ws.files.iter().filter(|f| f.rel.starts_with(QUERIES_DIR)) {
        let fn_map = sf.fn_map();
        for (tier, handler, line) in registrations(&sf.tokens) {
            let Some(f) = fn_map.get(handler.as_str()) else {
                // Unresolved handlers are the registry-schema pass's job.
                continue;
            };
            match tier {
                Tier::Read => check_read(sf, f, helpers, &mut out),
                Tier::Write => check_write(sf, f, helpers, &mut out),
            }
            let _ = line;
        }
    }
    no_clone_gate(ws, &mut out);
    state_not_clone(ws, &mut out);
    out
}

/// Every `Handler::Read(name)` / `Handler::Write(name)` in the token
/// stream.
fn registrations(toks: &[Token]) -> Vec<(Tier, String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("Handler") {
            continue;
        }
        // Handler :: Read ( name )
        if i + 6 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokenKind::Ident
            && toks[i + 4].is_punct('(')
            && toks[i + 5].kind == TokenKind::Ident
            && toks[i + 6].is_punct(')')
        {
            let tier = match toks[i + 3].text.as_str() {
                "Read" => Tier::Read,
                "Write" => Tier::Write,
                _ => continue,
            };
            out.push((tier, toks[i + 5].text.clone(), toks[i + 5].line));
        }
    }
    out
}

fn check_read(
    sf: &SourceFile,
    f: &ItemFn,
    helpers: Option<&SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    // Signature: `&MoiraState`, not `&mut MoiraState`.
    for (i, t) in f.sig.iter().enumerate() {
        if t.is_ident("MoiraState") && i >= 1 && f.sig[i - 1].is_ident("mut") {
            out.push(Diagnostic {
                pass: NAME,
                file: sf.rel.clone(),
                line: t.line,
                message: format!(
                    "read handler `{}` takes &mut MoiraState; read-tier handlers must take \
                     &MoiraState",
                    f.name
                ),
            });
        }
    }
    // Body: no mutating calls.
    for mc in scan::method_calls(&f.body) {
        if MUTATING.contains(&mc.name) {
            out.push(Diagnostic {
                pass: NAME,
                file: sf.rel.clone(),
                line: mc.line,
                message: format!(
                    "read handler `{}` calls mutating API `.{}()`; retrieves must not modify \
                     state",
                    f.name, mc.name
                ),
            });
        }
    }
    // One-level walk into same-file / helpers.rs helpers.
    for fc in scan::free_calls(&f.body) {
        if fc.name == f.name {
            continue;
        }
        let callee = resolve_helper(sf, helpers, fc.name);
        if let Some(h) = callee {
            for mc in scan::method_calls(&h.body) {
                if MUTATING.contains(&mc.name) {
                    out.push(Diagnostic {
                        pass: NAME,
                        file: sf.rel.clone(),
                        line: fc.line,
                        message: format!(
                            "read handler `{}` calls helper `{}`, which calls mutating API \
                             `.{}()`",
                            f.name, fc.name, mc.name
                        ),
                    });
                }
            }
        }
    }
}

fn check_write(
    sf: &SourceFile,
    f: &ItemFn,
    helpers: Option<&SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    check_mutations_rooted(sf, f, f.name.as_str(), None, out);
    // One-level walk: helpers a write handler calls must follow the same
    // contract in their own bodies.
    for fc in scan::free_calls(&f.body) {
        if fc.name == f.name {
            continue;
        }
        if let Some(h) = resolve_helper(sf, helpers, fc.name) {
            check_mutations_rooted(sf, h, f.name.as_str(), Some(fc.line), out);
        }
    }
}

/// Every mutating call in `f`'s body must have a receiver chain rooted at
/// `state` (covering `state.db.*` and `state.set_value`) or at a local
/// bound from `state.db`. When `report_line` is set the diagnostic points
/// at the call site in the enclosing handler instead.
fn check_mutations_rooted(
    sf: &SourceFile,
    f: &ItemFn,
    handler: &str,
    report_line: Option<u32>,
    out: &mut Vec<Diagnostic>,
) {
    let rooted = db_rooted_locals(&f.body);
    for mc in scan::method_calls(&f.body) {
        if !MUTATING.contains(&mc.name) {
            continue;
        }
        let recv = scan::receiver_idents(&f.body, mc.idx);
        let root = recv.first().map(String::as_str).unwrap_or("");
        if root == "state" || rooted.iter().any(|r| r == root) {
            continue;
        }
        out.push(Diagnostic {
            pass: NAME,
            file: sf.rel.clone(),
            line: report_line.unwrap_or(mc.line),
            message: format!(
                "write handler `{handler}`: `.{}()` on `{}` bypasses state.db — mutations \
                 must route through state.db so journaling sees them",
                mc.name,
                if root.is_empty() { "<expr>" } else { root },
            ),
        });
    }
}

/// Local names bound (directly) from `state` / `state.db`, e.g.
/// `let db = &mut state.db;`.
fn db_rooted_locals(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 >= body.len() || body[k].kind != TokenKind::Ident || !body[k + 1].is_punct('=') {
            continue;
        }
        let name = body[k].text.clone();
        // RHS: skip `&`, `mut`, then require the chain to start at `state`.
        let mut r = k + 2;
        while r < body.len() && (body[r].is_punct('&') || body[r].is_ident("mut")) {
            r += 1;
        }
        if r < body.len() && body[r].is_ident("state") {
            out.push(name);
        }
    }
    out
}

fn resolve_helper<'a>(
    sf: &'a SourceFile,
    helpers: Option<&'a SourceFile>,
    name: &str,
) -> Option<&'a ItemFn> {
    if name == "register" {
        return None;
    }
    if let Some(f) = sf.fn_map().get(name) {
        return Some(*f);
    }
    helpers.and_then(|h| h.fn_map().get(name).copied())
}

/// The old CI grep gate, receiver-aware: nothing on the query path clones
/// the state or the database.
fn no_clone_gate(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let in_scope = |rel: &str| {
        rel.starts_with(QUERIES_DIR)
            || rel == "crates/core/src/access.rs"
            || rel == "crates/core/src/registry.rs"
    };
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        for mc in scan::method_calls(&sf.tokens) {
            if mc.name != "clone" {
                continue;
            }
            let recv = scan::receiver_idents(&sf.tokens, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if last == "state" || last == "db" {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: mc.line,
                    message: format!(
                        "`.clone()` on `{last}` — cloning the state/database detaches reads \
                         from the live tiers and mutations from journaling"
                    ),
                });
            }
        }
    }
}

/// `MoiraState` itself must not be `Clone` (derive or manual impl).
fn state_not_clone(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(sf) = ws.file("crates/core/src/state.rs") else {
        return;
    };
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        // `impl Clone for MoiraState`
        if toks[i].is_ident("impl")
            && i + 3 < toks.len()
            && toks[i + 1].is_ident("Clone")
            && toks[i + 2].is_ident("for")
            && toks[i + 3].is_ident("MoiraState")
        {
            out.push(Diagnostic {
                pass: NAME,
                file: sf.rel.clone(),
                line: toks[i].line,
                message: "manual `impl Clone for MoiraState` — the shared state must have a \
                          single live copy"
                    .to_string(),
            });
        }
        // `#[derive(..., Clone, ...)] ... struct MoiraState`
        if toks[i].is_ident("struct") && i + 1 < toks.len() && toks[i + 1].is_ident("MoiraState") {
            let from = i.saturating_sub(40);
            let window = &toks[from..i];
            if window.iter().any(|t| t.is_ident("derive"))
                && window.iter().any(|t| t.is_ident("Clone"))
            {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: toks[i].line,
                    message: "`#[derive(Clone)]` on MoiraState — the shared state must have a \
                              single live copy"
                        .to_string(),
                });
            }
        }
    }
}
