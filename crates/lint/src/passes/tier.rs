//! Pass 1 — tier-discipline.
//!
//! The read/write tier split (PR 2) holds only if:
//!
//! - every handler registered `Handler::Read` takes `&MoiraState` (not
//!   `&mut`) and never reaches a mutating `Database`/`Table` API —
//!   directly or transitively through any chain of calls, in any file
//!   (the call-graph engine's `Mutates` summary);
//! - every mutation inside a `Handler::Write` handler — or inside any
//!   helper the handler transitively calls — reaches the database through
//!   `state.db` (or a local borrowed from it), so
//!   `Database::mutation_count` advances and the registry journals the
//!   query (the journaling contract);
//! - `MoiraState` is never `Clone`, and nothing on the query path clones
//!   the state or the database to dodge the tiers (the old CI grep gate,
//!   now receiver-aware).

use std::collections::HashSet;

use crate::engine::{Effect, Engine, FnId, MUTATING};
use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{ItemFn, Token, TokenKind};

pub const NAME: &str = "tier-discipline";

const QUERIES_DIR: &str = "crates/core/src/queries/";

#[derive(Clone, Copy, PartialEq)]
enum Tier {
    Read,
    Write,
}

pub fn run(ws: &Workspace, eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !sf.rel.starts_with(QUERIES_DIR) {
            continue;
        }
        for (tier, handler, _line) in registrations(&sf.tokens) {
            let Some(id) = eng.fn_in_file(fi, &handler) else {
                // Unresolved handlers are the registry-schema pass's job.
                continue;
            };
            match tier {
                Tier::Read => check_read(sf, eng, id, &mut out),
                Tier::Write => check_write(sf, eng, id, &mut out),
            }
        }
    }
    no_clone_gate(ws, &mut out);
    state_not_clone(ws, &mut out);
    out
}

/// Every `Handler::Read(name)` / `Handler::Write(name)` in the token
/// stream.
fn registrations(toks: &[Token]) -> Vec<(Tier, String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("Handler") {
            continue;
        }
        // Handler :: Read ( name )
        if i + 6 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokenKind::Ident
            && toks[i + 4].is_punct('(')
            && toks[i + 5].kind == TokenKind::Ident
            && toks[i + 6].is_punct(')')
        {
            let tier = match toks[i + 3].text.as_str() {
                "Read" => Tier::Read,
                "Write" => Tier::Write,
                _ => continue,
            };
            out.push((tier, toks[i + 5].text.clone(), toks[i + 5].line));
        }
    }
    out
}

fn check_read(sf: &SourceFile, eng: &Engine<'_>, id: FnId, out: &mut Vec<Diagnostic>) {
    let f = eng.fns[id].func;
    // Signature: `&MoiraState`, not `&mut MoiraState`.
    for (i, t) in f.sig.iter().enumerate() {
        if t.is_ident("MoiraState") && i >= 1 && f.sig[i - 1].is_ident("mut") {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                t.line,
                format!(
                    "read handler `{}` takes &mut MoiraState; read-tier handlers must take \
                     &MoiraState",
                    f.name
                ),
            ));
        }
    }
    // Body: no direct mutating-API calls (receiver-independent — a read
    // handler has no business even spelling these).
    for mc in scan::method_calls(&f.body) {
        if MUTATING.contains(&mc.name) {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                mc.line,
                format!(
                    "read handler `{}` calls mutating API `.{}()`; retrieves must not modify \
                     state",
                    f.name, mc.name
                ),
            ));
        }
    }
    // Transitive walk: any call whose callee summary mutates, at any
    // depth, in any file.
    for c in eng.calls(id) {
        for &t in &c.targets {
            if !eng.effects(t).has(Effect::Mutates) {
                continue;
            }
            let (chain, prim) = eng.chain_through(id, c.line, t, Effect::Mutates);
            out.push(
                Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    c.line,
                    format!(
                        "read handler `{}` calls `{}`, which transitively mutates the \
                         database (`{prim}`) — retrieves must not modify state",
                        f.name, c.name
                    ),
                )
                .with_chain(chain),
            );
            break;
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

fn check_write(sf: &SourceFile, eng: &Engine<'_>, id: FnId, out: &mut Vec<Diagnostic>) {
    let handler = eng.fns[id].func.name.as_str();
    // BFS over the call graph: the handler plus every function it
    // transitively reaches that mutates. Each body's direct mutating
    // calls must be rooted at `state` / a db-rooted local; the diagnostic
    // points at the call chain from the handler.
    let mut visited: HashSet<FnId> = HashSet::new();
    let mut queue: Vec<(FnId, Vec<(String, u32)>)> = vec![(id, Vec::new())];
    visited.insert(id);
    while let Some((cur, path)) = queue.pop() {
        check_mutations_rooted(sf, eng, cur, handler, &path, out);
        for c in eng.calls(cur) {
            for &t in &c.targets {
                if visited.contains(&t) || !eng.effects(t).has(Effect::Mutates) {
                    continue;
                }
                visited.insert(t);
                let mut next_path = path.clone();
                next_path.push((eng.rel(cur).to_string(), c.line));
                queue.push((t, next_path));
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

/// Every mutating call in `cur`'s body must have a receiver chain rooted
/// at `state` (covering `state.db.*` and `state.set_value`) or at a local
/// bound from `state.db`. When `path` is non-empty the body under scrutiny
/// is a transitively reached helper; the diagnostic then points at the
/// handler's call site and carries the full chain down to the offending
/// mutation.
fn check_mutations_rooted(
    sf: &SourceFile,
    eng: &Engine<'_>,
    cur: FnId,
    handler: &str,
    path: &[(String, u32)],
    out: &mut Vec<Diagnostic>,
) {
    let f: &ItemFn = eng.fns[cur].func;
    let rooted = db_rooted_locals(&f.body);
    for mc in scan::method_calls(&f.body) {
        if !MUTATING.contains(&mc.name) {
            continue;
        }
        let recv = scan::receiver_idents(&f.body, mc.idx);
        let root = recv.first().map(String::as_str).unwrap_or("");
        // `self` mutations are the db layer's own implementation
        // (`Database::append` mutating its tables); the journaling
        // boundary is the entry call, which the walk reached via state.db.
        if root == "state"
            || rooted.iter().any(|r| r == root)
            || (root == "self" && eng.fns[cur].owner.is_some())
        {
            continue;
        }
        let (file, line) = match path.first() {
            Some((f, l)) => (f.clone(), *l),
            None => (sf.rel.clone(), mc.line),
        };
        let chain = if path.is_empty() {
            Vec::new()
        } else {
            let mut c = path.to_vec();
            c.push((eng.rel(cur).to_string(), mc.line));
            c
        };
        out.push(
            Diagnostic::new(
                NAME,
                file,
                line,
                format!(
                    "write handler `{handler}`: `.{}()` on `{}` bypasses state.db — mutations \
                     must route through state.db so journaling sees them",
                    mc.name,
                    if root.is_empty() { "<expr>" } else { root },
                ),
            )
            .with_chain(chain),
        );
    }
}

/// Local names bound (directly) from `state` / `state.db`, e.g.
/// `let db = &mut state.db;`.
fn db_rooted_locals(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 >= body.len() || body[k].kind != TokenKind::Ident || !body[k + 1].is_punct('=') {
            continue;
        }
        let name = body[k].text.clone();
        // RHS: skip `&`, `mut`, then require the chain to start at `state`.
        let mut r = k + 2;
        while r < body.len() && (body[r].is_punct('&') || body[r].is_ident("mut")) {
            r += 1;
        }
        if r < body.len() && body[r].is_ident("state") {
            out.push(name);
        }
    }
    out
}

/// The old CI grep gate, receiver-aware: nothing on the query path clones
/// the state or the database.
fn no_clone_gate(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let in_scope = |rel: &str| {
        rel.starts_with(QUERIES_DIR)
            || rel == "crates/core/src/access.rs"
            || rel == "crates/core/src/registry.rs"
    };
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        for mc in scan::method_calls(&sf.tokens) {
            if mc.name != "clone" {
                continue;
            }
            let recv = scan::receiver_idents(&sf.tokens, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if last == "state" || last == "db" {
                out.push(Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    mc.line,
                    format!(
                        "`.clone()` on `{last}` — cloning the state/database detaches reads \
                         from the live tiers and mutations from journaling"
                    ),
                ));
            }
        }
    }
}

/// `MoiraState` itself must not be `Clone` (derive or manual impl).
fn state_not_clone(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(sf) = ws.file("crates/core/src/state.rs") else {
        return;
    };
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        // `impl Clone for MoiraState`
        if toks[i].is_ident("impl")
            && i + 3 < toks.len()
            && toks[i + 1].is_ident("Clone")
            && toks[i + 2].is_ident("for")
            && toks[i + 3].is_ident("MoiraState")
        {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                toks[i].line,
                "manual `impl Clone for MoiraState` — the shared state must have a single \
                 live copy"
                    .to_string(),
            ));
        }
        // `#[derive(..., Clone, ...)] ... struct MoiraState`
        if toks[i].is_ident("struct") && i + 1 < toks.len() && toks[i + 1].is_ident("MoiraState") {
            let from = i.saturating_sub(40);
            let window = &toks[from..i];
            if window.iter().any(|t| t.is_ident("derive"))
                && window.iter().any(|t| t.is_ident("Clone"))
            {
                out.push(Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    toks[i].line,
                    "`#[derive(Clone)]` on MoiraState — the shared state must have a single \
                     live copy"
                        .to_string(),
                ));
            }
        }
    }
}
