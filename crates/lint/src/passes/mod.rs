//! The seven lint passes. Each exposes `NAME` (the `lint:allow` key) and
//! `run(&Workspace) -> Vec<Diagnostic>`.

pub mod delta;
pub mod locks;
pub mod panics;
pub mod plan;
pub mod reactor;
pub mod registry_schema;
pub mod tier;
