//! Pass 6 — reactor-discipline.
//!
//! The connection tier has exactly one blocking point: the reactor wait in
//! `MoiraServer::poll_with_timeout`. Two invariants keep it honest:
//!
//! - **No `SharedState` guard live across a reactor wait.** A guard held
//!   into `reactor.wait(..)` (or into a loop entry point that contains the
//!   wait) parks every other thread that needs the state for as long as
//!   the wait blocks — up to the full timeout on an idle server. The guard
//!   liveness model is shared with the lock-discipline pass.
//!
//! - **No blocking syscalls on the wait path.** A function that performs a
//!   reactor wait is loop code; a `sleep`, blocking channel receive, or
//!   `std::fs` access in its body (or in a same-file helper it calls)
//!   stalls every live connection, not just one session. Non-blocking
//!   socket calls (`accept`/`read`/`write` that report `WouldBlock`) are
//!   fine and are not matched.
//!
//! The deliberate selector-less pacing sleep in `poll_with_timeout`
//! carries a reviewed `lint:allow(reactor-discipline)` — the degraded scan
//! path has no OS wait to block in, so it honors its timeout with a
//! bounded sleep instead of spinning.

use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{ItemFn, Token};

use super::locks::{direct_acquisitions, guard_scope_end, Acquisition};

pub const NAME: &str = "reactor-discipline";

/// Receivers whose `.wait(..)` is the reactor's blocking point.
const WAIT_RECV: &[&str] = &["reactor", "poller"];

/// Loop entry points that contain the reactor wait; calling one while a
/// guard is live is the same violation one level up.
const LOOP_WAITS: &[&str] = &["poll_with_timeout", "poll_once", "run_until_idle"];

/// Blocking calls (method or free) denied on the wait path. Deliberately
/// narrower than lock-discipline's list: the loop's sockets are all
/// non-blocking, so `accept`/`connect` there return immediately — but
/// nothing on the wait path may sleep or park.
const BLOCKING: &[&str] = &["sleep", "recv_blocking", "recv_timeout", "park"];

/// Path prefixes denied on the wait path.
const BLOCKING_PATHS: &[&[&str]] = &[&["std", "fs"]];

/// Benches drive the loop synchronously and pace themselves however the
/// measurement requires.
fn in_scope(rel: &str) -> bool {
    !rel.starts_with("crates/bench/")
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for sf in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        let facts = FileFacts::collect(sf);
        for f in sf.ast.functions() {
            if f.in_test || !f.func.has_body {
                continue;
            }
            check_fn(sf, f.func, &facts, &mut out);
        }
    }
    out
}

/// A reactor-wait site in a body.
struct WaitSite {
    idx: usize,
    line: u32,
    what: String,
}

/// Direct wait sites: `reactor.wait(..)` / `poller.wait(..)` plus calls to
/// the loop entry points that contain the wait.
fn wait_sites(body: &[Token]) -> Vec<WaitSite> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if mc.name == "wait" {
            let recv = scan::receiver_idents(body, mc.idx);
            let last = recv.last().map(String::as_str).unwrap_or("");
            if !WAIT_RECV.contains(&last) {
                continue;
            }
            out.push(WaitSite {
                idx: mc.idx,
                line: mc.line,
                what: format!("{last}.wait()"),
            });
        } else if LOOP_WAITS.contains(&mc.name) {
            out.push(WaitSite {
                idx: mc.idx,
                line: mc.line,
                what: format!(".{}()", mc.name),
            });
        }
    }
    out
}

/// Blocking-call sites in a body: (index, line, description).
fn blocking_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if BLOCKING.contains(&mc.name) {
            out.push((mc.idx, mc.line, format!(".{}()", mc.name)));
        }
    }
    for fc in scan::free_calls(body) {
        if BLOCKING.contains(&fc.name) {
            out.push((fc.idx, fc.line, format!("{}(...)", fc.name)));
        }
    }
    for i in 0..body.len() {
        for path in BLOCKING_PATHS {
            if scan::path_starts(body, i, path)
                && (i == 0 || !body[i - 1].is_punct(':'))
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            {
                out.push((i, body[i].line, format!("{}::{}", path[0], path[1])));
            }
        }
    }
    out
}

/// Per-file summary for the one-level helper walk.
struct FileFacts {
    /// Functions whose bodies contain a reactor wait.
    waits: Vec<String>,
    /// Functions whose bodies contain a blocking call.
    blocks: Vec<String>,
    /// Functions whose bodies acquire a state guard.
    acquires: Vec<String>,
    /// Functions returning a guard (call sites open a guard scope).
    returns_guard: Vec<String>,
}

impl FileFacts {
    fn collect(sf: &SourceFile) -> FileFacts {
        let mut facts = FileFacts {
            waits: Vec::new(),
            blocks: Vec::new(),
            acquires: Vec::new(),
            returns_guard: Vec::new(),
        };
        for f in sf.ast.functions() {
            if f.in_test || !f.func.has_body {
                continue;
            }
            let body = &f.func.body;
            if !wait_sites(body).is_empty() {
                facts.waits.push(f.func.name.clone());
            }
            if !blocking_sites(body).is_empty() {
                facts.blocks.push(f.func.name.clone());
            }
            if !direct_acquisitions(body).is_empty() {
                facts.acquires.push(f.func.name.clone());
            }
            if f.func
                .sig
                .iter()
                .any(|t| t.kind == syn::TokenKind::Ident && t.text.contains("Guard"))
            {
                facts.returns_guard.push(f.func.name.clone());
            }
        }
        facts
    }
}

fn check_fn(sf: &SourceFile, f: &ItemFn, facts: &FileFacts, out: &mut Vec<Diagnostic>) {
    let body = &f.body;
    let waits = wait_sites(body);

    // (a) No guard live across a wait — direct acquisitions plus the
    // helper form (`read_or_busy` / `write_or_busy`).
    let mut acqs = direct_acquisitions(body);
    for fc in scan::free_calls(body) {
        if fc.name != f.name
            && facts.acquires.iter().any(|n| n == fc.name)
            && facts.returns_guard.iter().any(|n| n == fc.name)
        {
            acqs.push(Acquisition {
                start: fc.idx,
                close: scan::close_of(body, fc.idx + 1),
                line: fc.line,
                what: format!("{}(...)", fc.name),
            });
        }
    }
    acqs.sort_by_key(|a| a.start);

    for acq in &acqs {
        let scope_end = guard_scope_end(body, acq);
        let scope_start = acq.close + 1;
        if scope_start >= scope_end {
            continue;
        }
        for w in &waits {
            if w.idx > scope_start && w.idx < scope_end {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: w.line,
                    message: format!(
                        "reactor wait `{}` in `{}` while the state guard from `{}` (line {}) \
                         is live — every thread needing the state parks for the full wait",
                        w.what, f.name, acq.what, acq.line
                    ),
                });
            }
        }
        // One-level walk: same-file helpers that wait.
        for fc in scan::free_calls(body) {
            if fc.idx <= scope_start || fc.idx >= scope_end || fc.name == f.name {
                continue;
            }
            if facts.waits.iter().any(|n| n == fc.name) {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: fc.line,
                    message: format!(
                        "`{}` calls helper `{}` — which performs a reactor wait — while the \
                         state guard from `{}` (line {}) is live",
                        f.name, fc.name, acq.what, acq.line
                    ),
                });
            }
        }
    }

    // (b) No blocking syscalls anywhere in a function that performs a
    // reactor wait — it is loop code; one sleep stalls every connection.
    if !waits.is_empty() {
        for (_, line, what) in blocking_sites(body) {
            out.push(Diagnostic {
                pass: NAME,
                file: sf.rel.clone(),
                line,
                message: format!(
                    "blocking call `{what}` in `{}`, which performs a reactor wait — loop \
                     code must stay non-blocking; every live connection stalls behind it",
                    f.name
                ),
            });
        }
        for fc in scan::free_calls(body) {
            if fc.name != f.name && facts.blocks.iter().any(|n| n == fc.name) {
                out.push(Diagnostic {
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: fc.line,
                    message: format!(
                        "`{}` performs a reactor wait but calls helper `{}`, which blocks — \
                         loop code must stay non-blocking",
                        f.name, fc.name
                    ),
                });
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}
