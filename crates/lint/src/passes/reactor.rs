//! Pass 6 — reactor-discipline.
//!
//! The connection tier has exactly one blocking point: the reactor wait in
//! `MoiraServer::poll_with_timeout`. Two invariants keep it honest:
//!
//! - **No `SharedState` guard live across a reactor wait.** A guard held
//!   into `reactor.wait(..)` — directly or through any chain of calls that
//!   eventually waits — parks every other thread that needs the state for
//!   as long as the wait blocks — up to the full timeout on an idle
//!   server. The guard liveness model is shared with the lock-discipline
//!   pass.
//!
//! - **No blocking syscalls on the wait path.** A function whose summary
//!   contains a reactor wait is loop code; a `sleep`, blocking channel
//!   receive, or `std::fs` access in its body (or transitively reachable
//!   from it) stalls every live connection, not just one session.
//!   Non-blocking socket calls (`accept`/`connect` on the loop's
//!   non-blocking fds) are fine and deliberately not matched — the engine
//!   tracks those as a separate `BlocksNet` effect.
//!
//! The deliberate selector-less pacing sleep in `poll_with_timeout`
//! carries a reviewed `lint:allow(reactor-discipline)` — the degraded scan
//! path has no OS wait to block in, so it honors its timeout with a
//! bounded sleep instead of spinning.

use crate::engine::{self, Effect, Engine, FnId};
use crate::{Diagnostic, Workspace};

use super::locks::{acquisition_sites, guard_scope_end};

pub const NAME: &str = "reactor-discipline";

/// Benches drive the loop synchronously and pace themselves however the
/// measurement requires.
fn in_scope(rel: &str) -> bool {
    !rel.starts_with("crates/bench/")
}

pub fn run(ws: &Workspace, eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !in_scope(&sf.rel) {
            continue;
        }
        for &id in eng.fns_in_file(fi) {
            let node = &eng.fns[id];
            if node.in_test || !node.func.has_body {
                continue;
            }
            check_fn(eng, id, &sf.rel, &mut out);
        }
    }
    out
}

fn check_fn(eng: &Engine<'_>, id: FnId, rel: &str, out: &mut Vec<Diagnostic>) {
    let body = &eng.fns[id].func.body;
    let fname = &eng.fns[id].func.name;
    let waits = engine::wait_prim_sites(body);

    // (a) No guard live across a wait — direct wait sites plus calls whose
    // callee summary transitively waits.
    let acqs = acquisition_sites(eng, id);
    for acq in &acqs {
        let scope_end = guard_scope_end(body, acq);
        let scope_start = acq.close + 1;
        if scope_start >= scope_end {
            continue;
        }
        for (idx, line, what) in &waits {
            if *idx > scope_start && *idx < scope_end {
                out.push(Diagnostic::new(
                    NAME,
                    rel.to_string(),
                    *line,
                    format!(
                        "reactor wait `{what}` in `{}` while the state guard from `{}` (line \
                         {}) is live — every thread needing the state parks for the full wait",
                        fname, acq.what, acq.line
                    ),
                ));
            }
        }
        for c in eng.calls(id) {
            if c.idx <= scope_start || c.idx >= scope_end {
                continue;
            }
            for &t in &c.targets {
                if !eng.effects(t).has(Effect::Waits) {
                    continue;
                }
                let (chain, prim) = eng.chain_through(id, c.line, t, Effect::Waits);
                out.push(
                    Diagnostic::new(
                        NAME,
                        rel.to_string(),
                        c.line,
                        format!(
                            "`{}` calls `{}` — which transitively reaches the reactor wait \
                             (`{prim}`) — while the state guard from `{}` (line {}) is live",
                            fname, c.name, acq.what, acq.line
                        ),
                    )
                    .with_chain(chain),
                );
                break;
            }
        }
    }

    // (b) No blocking syscalls anywhere on the wait path: a function that
    // waits (directly — its own body contains the wait) must not block,
    // directly or through any call chain.
    if !waits.is_empty() {
        for (_, line, what) in engine::hard_blocking_prim_sites(body) {
            out.push(Diagnostic::new(
                NAME,
                rel.to_string(),
                line,
                format!(
                    "blocking call `{what}` in `{}`, which performs a reactor wait — loop \
                     code must stay non-blocking; every live connection stalls behind it",
                    fname
                ),
            ));
        }
        for c in eng.calls(id) {
            for &t in &c.targets {
                if !eng.effects(t).has(Effect::Blocks) {
                    continue;
                }
                let (chain, prim) = eng.chain_through(id, c.line, t, Effect::Blocks);
                out.push(
                    Diagnostic::new(
                        NAME,
                        rel.to_string(),
                        c.line,
                        format!(
                            "`{}` performs a reactor wait but calls `{}`, which transitively \
                             blocks (`{prim}`) — loop code must stay non-blocking",
                            fname, c.name
                        ),
                    )
                    .with_chain(chain),
                );
                break;
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}
