//! Pass 7 — planner discipline in the query surface.
//!
//! PR 8's predicate planner only pays off if handlers actually route
//! through it: `Database::select` / `Table::select` consult the cost
//! model, but a raw `Table::iter()` bypasses every index the schema
//! declares. This pass denies `.iter()` on a table with at least one
//! indexed (or unique) column inside `crates/core/src/queries/` — both
//! the direct chain (`state.db.table("users").iter()`) and iteration
//! through a bound handle (`let t = ..table("list"); t.iter()`).
//!
//! Tables without any indexed column are exempt (a scan is the only
//! possible plan), as are test functions. The few genuine dump handlers
//! (tristate qualifiers, admin enumerations) carry reviewed
//! `lint:allow(plan-discipline)` comments, keeping the full-scan
//! surface explicit the same way `full-rebuild fallback` markers do for
//! the DCM.

use std::collections::{HashMap, HashSet};

use crate::engine::Engine;
use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{Token, TokenKind};

pub const NAME: &str = "plan-discipline";

const QUERIES_DIR: &str = "crates/core/src/queries/";
const SCHEMA_FILE: &str = "crates/core/src/schema.rs";

pub fn run(ws: &Workspace, _eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(indexed) = indexed_tables(ws) else {
        return out;
    };
    for sf in ws.files.iter().filter(|f| f.rel.starts_with(QUERIES_DIR)) {
        check_file(sf, &indexed, &mut out);
    }
    out
}

/// Tables that declare at least one `.indexed()` or `.unique()` column,
/// parsed from the `TableSchema::new("name", vec![...])` literals in
/// `schema.rs` (unique columns are backed by the same secondary index).
fn indexed_tables(ws: &Workspace) -> Option<HashSet<String>> {
    let sf = ws.file(SCHEMA_FILE)?;
    let toks = &sf.tokens;
    let mut out = HashSet::new();
    for i in 0..toks.len() {
        if !scan::path_starts(toks, i, &["TableSchema", "new"])
            || !toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let open = i + 4;
        let Some(name) = toks.get(open + 1).filter(|t| t.kind == TokenKind::Str) else {
            continue;
        };
        let close = scan::close_of(toks, open);
        let has_index = toks[open..close].iter().enumerate().any(|(j, t)| {
            (t.is_ident("indexed") || t.is_ident("unique"))
                && toks[open + j..close]
                    .get(1)
                    .is_some_and(|n| n.is_punct('('))
        });
        if has_index {
            out.insert(name.text.clone());
        }
    }
    Some(out)
}

fn check_file(sf: &SourceFile, indexed: &HashSet<String>, out: &mut Vec<Diagnostic>) {
    for f in sf.ast.functions() {
        if f.in_test {
            continue;
        }
        let body = &f.func.body;
        let locals = table_locals_named(body);
        for mc in scan::method_calls(body) {
            if mc.name != "iter" {
                continue;
            }
            let table = chain_table_name(body, mc.idx).or_else(|| {
                scan::receiver_idents(body, mc.idx)
                    .first()
                    .and_then(|r| locals.get(r.as_str()).cloned())
            });
            let Some(table) = table else { continue };
            if indexed.contains(&table) {
                out.push(Diagnostic {
                    chain: Vec::new(),
                    pass: NAME,
                    file: sf.rel.clone(),
                    line: mc.line,
                    message: format!(
                        "`{}` iterates table `{table}`, which has indexed columns — \
                         route the lookup through select() so the planner can use the \
                         index; genuine dumps need a reviewed lint:allow",
                        f.func.name
                    ),
                });
            }
        }
    }
}

/// When the receiver chain of the `.` at `dot_idx` ends in a
/// `.table("name")` call, the literal table name. Returns `None` for
/// dynamic names (`table(name)`) and for chains not passing through
/// `table` — those fall back to the bound-local map.
fn chain_table_name(toks: &[Token], dot_idx: usize) -> Option<String> {
    let mut i = dot_idx as isize - 1;
    let mut last_open: Option<usize> = None;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is_punct(')') || t.is_punct(']') {
            let open = scan::open_of(toks, i as usize)?;
            last_open = Some(open);
            i = open as isize - 1;
            continue;
        }
        if t.is_punct('?') {
            i -= 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            if t.text == "table" {
                let arg = toks.get(last_open? + 1)?;
                return (arg.kind == TokenKind::Str).then(|| arg.text.clone());
            }
            last_open = None;
            if i >= 1 && toks[i as usize - 1].is_punct('.') {
                i -= 2;
                continue;
            }
            if i >= 2 && toks[i as usize - 1].is_punct(':') && toks[i as usize - 2].is_punct(':') {
                i -= 3;
                continue;
            }
            break;
        }
        break;
    }
    None
}

/// Locals bound from a `.table("name")` call with a literal name:
/// `let t = state.db.table("users");` maps `t -> users`. Dynamic names
/// are omitted — without the literal there is no index information.
fn table_locals_named(body: &[Token]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 >= body.len() || body[k].kind != TokenKind::Ident || !body[k + 1].is_punct('=') {
            continue;
        }
        let end = scan::statement_end(body, k + 1).min(body.len());
        let rhs = &body[k + 2..end];
        for j in 0..rhs.len() {
            let is_call = rhs[j].is_ident("table")
                && rhs.get(j + 1).is_some_and(|t| t.is_punct('('))
                && (j == 0 || rhs[j - 1].is_punct('.'));
            if is_call {
                if let Some(name) = rhs.get(j + 2).filter(|t| t.kind == TokenKind::Str) {
                    out.insert(body[k].text.clone(), name.text.clone());
                }
                break;
            }
        }
    }
    out
}
