//! Pass 4 — delta-path scan ban.
//!
//! PR 3's incremental DCM claims (EXPERIMENTS.md E14) hold only if the
//! delta path never enumerates whole driver tables:
//!
//! - in `incremental.rs`, `.table(..).iter()` and `changed_since(0)` are
//!   forbidden; every `full_rebuild_rows(..)` call must carry the
//!   `full-rebuild fallback` marker comment (same line or adjacent line),
//!   keeping explicit the only place a full enumeration is allowed;
//! - in each generator, the delta-fragment functions named by `Section`
//!   literals (`SectionKind::Lines(f)`, `SectionKind::Members(f)`,
//!   `affected: Some(f)`) must stay per-row: no `.table(..).iter()`, no
//!   `Pred::True` selects, and none of the full-scan helpers
//!   (`active_users`, `active_groups`, `group_map`) — `groups_of_user` is
//!   the delta-friendly form. Full builders (the non-delta `generate`
//!   path) may scan; they are not reachable from `delta_refresh`.
//!
//! The pass runs on the call-graph engine's `Scans` summaries: a fragment
//! that reaches a whole-table enumeration through any chain of helpers —
//! in any file — is denied, with the full call chain in the diagnostic.
//! Call sites carrying the `full-rebuild fallback` marker stop the
//! propagation (the engine does not flow `Scans` over marked edges).

use std::collections::HashSet;

use crate::engine::{Effect, Engine, FnId};
use crate::scan;
use crate::{Diagnostic, SourceFile, Workspace};
use syn::{Token, TokenKind};

pub const NAME: &str = "delta-scan";

const GENERATORS_DIR: &str = "crates/dcm/src/generators/";
const INCREMENTAL: &str = "crates/dcm/src/generators/incremental.rs";

/// Whole-table helper functions a delta fragment must never call.
const FULL_SCAN_HELPERS: &[&str] = &["active_users", "active_groups", "group_map"];

pub fn run(ws: &Workspace, eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !sf.rel.starts_with(GENERATORS_DIR) {
            continue;
        }
        if sf.rel == INCREMENTAL {
            check_incremental(sf, eng, fi, &mut out);
        } else {
            check_generator(sf, eng, fi, &mut out);
        }
    }
    out
}

/// True when the `.iter()` at `mc_idx` enumerates a table: its receiver
/// chain passes through `.table(..)` or is a local bound from
/// `state.db.table(..)`.
fn is_table_iter(toks: &[Token], mc_idx: usize, table_locals: &HashSet<String>) -> bool {
    let recv = scan::receiver_idents(toks, mc_idx);
    recv.iter().any(|r| r == "table")
        || recv
            .first()
            .is_some_and(|r| table_locals.contains(r.as_str()))
}

/// Local names bound from `..table(..)`, e.g.
/// `let t = state.db.table("users");`.
fn table_locals(body: &[Token]) -> HashSet<String> {
    let mut out = HashSet::new();
    for i in 0..body.len() {
        if !body[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if k < body.len() && body[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 >= body.len() || body[k].kind != TokenKind::Ident || !body[k + 1].is_punct('=') {
            continue;
        }
        let end = scan::statement_end(body, k + 1);
        let rhs = &body[k + 2..end.min(body.len())];
        let is_table_call = rhs
            .iter()
            .zip(rhs.iter().skip(1))
            .any(|(a, b)| a.is_punct('.') && b.is_ident("table"))
            || rhs.first().is_some_and(|t| t.is_ident("table"));
        if is_table_call {
            out.insert(body[k].text.clone());
        }
    }
    out
}

fn check_incremental(sf: &SourceFile, eng: &Engine<'_>, fi: usize, out: &mut Vec<Diagnostic>) {
    // Marker lines: comments containing "full-rebuild fallback".
    let markers: HashSet<u32> = sf
        .ast
        .comments
        .iter()
        .filter(|c| c.text.contains("full-rebuild fallback"))
        .map(|c| c.line)
        .collect();
    for f in sf.ast.functions() {
        if f.in_test {
            continue;
        }
        let body = &f.func.body;
        let locals = table_locals(body);
        for mc in scan::method_calls(body) {
            if mc.name == "iter" && is_table_iter(body, mc.idx, &locals) {
                out.push(Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    mc.line,
                    format!(
                        "`{}` iterates a whole table — the incremental path must read row \
                         deltas via changed_since",
                        f.func.name
                    ),
                ));
            }
            // `changed_since(0)` replays every row ever written: a full
            // scan in delta clothing.
            if mc.name == "changed_since"
                && body.get(mc.idx + 3).is_some_and(|t| t.text == "0")
                && body.get(mc.idx + 4).is_some_and(|t| t.is_punct(')'))
            {
                out.push(Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    mc.line,
                    format!(
                        "`{}` calls changed_since(0) — that is a full scan; use \
                         full_rebuild_rows with its marker instead",
                        f.func.name
                    ),
                ));
            }
        }
        for fc in scan::free_calls(body) {
            if fc.name == "full_rebuild_rows" {
                let l = fc.line;
                if !(markers.contains(&l)
                    || markers.contains(&(l + 1))
                    || (l > 0 && markers.contains(&(l - 1))))
                {
                    out.push(Diagnostic::new(
                        NAME,
                        sf.rel.clone(),
                        l,
                        format!(
                            "`{}` calls full_rebuild_rows without a `full-rebuild fallback` \
                             marker comment — full enumerations must be explicit",
                            f.func.name
                        ),
                    ));
                }
            }
        }
    }
    // Transitive walk: calls out of incremental.rs whose callee summary
    // scans — unless the call site carries the fallback marker.
    for &id in eng.fns_in_file(fi) {
        if eng.fns[id].in_test {
            continue;
        }
        let fname = &eng.fns[id].func.name;
        for c in eng.calls(id) {
            if c.marked {
                continue;
            }
            for &t in &c.targets {
                // Scans *inside* this file are caught token-exactly above.
                if eng.fns[t].file == fi || !eng.effects(t).has(Effect::Scans) {
                    continue;
                }
                let (chain, prim) = eng.chain_through(id, c.line, t, Effect::Scans);
                out.push(
                    Diagnostic::new(
                        NAME,
                        sf.rel.clone(),
                        c.line,
                        format!(
                            "`{}` calls `{}`, which transitively enumerates a whole table \
                             (`{prim}`) — the incremental path must stay per-row",
                            fname, c.name
                        ),
                    )
                    .with_chain(chain),
                );
                break;
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

fn check_generator(sf: &SourceFile, eng: &Engine<'_>, fi: usize, out: &mut Vec<Diagnostic>) {
    // Fragment functions named by Section literals inside delta plans.
    let mut fragments: Vec<&str> = Vec::new();
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        // SectionKind::Lines(f) / SectionKind::Members(f)
        if toks[i].is_ident("SectionKind")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("Lines") || t.is_ident("Members"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            fragments.push(&toks[i + 5].text);
        }
        // affected: Some(f)
        if toks[i].is_ident("affected")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("Some"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            fragments.push(&toks[i + 4].text);
        }
    }
    fragments.sort_unstable();
    fragments.dedup();

    for name in &fragments {
        let Some(id) = eng.fn_in_file(fi, name) else {
            continue;
        };
        check_fragment(sf, eng, id, name, out);
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

/// One delta fragment: its own body must be scan-free token-exactly, and
/// every call out of it must not transitively reach a whole-table
/// enumeration or one of the full-scan helpers.
fn check_fragment(
    sf: &SourceFile,
    eng: &Engine<'_>,
    id: FnId,
    frag: &str,
    out: &mut Vec<Diagnostic>,
) {
    let body = &eng.fns[id].func.body;
    let locals = table_locals(body);
    for mc in scan::method_calls(body) {
        if mc.name == "iter" && is_table_iter(body, mc.idx, &locals) {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                mc.line,
                format!(
                    "delta fragment `{frag}` iterates a whole driver table — fragments must \
                     stay per-row"
                ),
            ));
        }
    }
    // Pred::True selects are full scans.
    for i in 0..body.len() {
        if scan::path_starts(body, i, &["Pred", "True"]) {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                body[i].line,
                format!("delta fragment `{frag}` selects with Pred::True — a full scan"),
            ));
        }
    }
    for fc in scan::free_calls(body) {
        if FULL_SCAN_HELPERS.contains(&fc.name) {
            out.push(Diagnostic::new(
                NAME,
                sf.rel.clone(),
                fc.line,
                format!(
                    "delta fragment `{frag}` calls full-scan helper `{}` — use the \
                     per-entity forms (e.g. groups_of_user)",
                    fc.name
                ),
            ));
        }
    }
    // Transitive walk: calls whose callee summary scans, at any depth, in
    // any file. (Direct sites in the fragment's own body, and direct
    // calls to the full-scan helpers, are caught token-exactly above —
    // the helpers' bodies also carry `Scans`, so reaching one through an
    // intermediate function lands here with the full chain.)
    for c in eng.calls(id) {
        if c.marked {
            continue;
        }
        for &t in &c.targets {
            if FULL_SCAN_HELPERS.contains(&eng.fns[t].func.name.as_str()) && !c.method {
                continue; // the direct free-call check above already fired
            }
            if !eng.effects(t).has(Effect::Scans) {
                continue;
            }
            let (chain, prim) = eng.chain_through(id, c.line, t, Effect::Scans);
            out.push(
                Diagnostic::new(
                    NAME,
                    sf.rel.clone(),
                    c.line,
                    format!(
                        "delta fragment `{frag}` calls `{}`, which transitively enumerates a \
                         whole table (`{prim}`) — fragments must stay per-row",
                        c.name
                    ),
                )
                .with_chain(chain),
            );
            break;
        }
    }
}
