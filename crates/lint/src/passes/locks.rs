//! Pass 2 — lock-discipline.
//!
//! While a `SharedState` RwLock guard is live in a function body, the code
//! must not (a) acquire a second state guard — an instant self-deadlock
//! under parking_lot's non-reentrant locks — or (b) perform blocking I/O
//! (`std::net`, `std::fs`, blocking channel receives, connect/bind/accept),
//! which would stall every other session on the daemon.
//!
//! The pass runs on the workspace call-graph engine: a call made while the
//! guard is live is denied if the callee *transitively* acquires a state
//! guard or blocks — through any number of hops, in any file. The
//! diagnostic prints the full witness chain down to the primitive site.
//!
//! Guard liveness is scoped conservatively from the token stream:
//!
//! - an acquisition that is immediately `.method()`-chained is a temporary
//!   dropped at the end of its statement;
//! - a bound acquisition (`let g = ...`, `if let Some(g) = ...`) is live to
//!   the end of its innermost enclosing brace block, or to `drop(g)`.

use crate::engine::{Effect, Engine, FnId};
use crate::scan;
use crate::{Diagnostic, Workspace};
use syn::Token;

pub const NAME: &str = "lock-discipline";

/// The measurement harness is exempt: benches hold guards deliberately to
/// time lock contention itself.
fn in_scope(rel: &str) -> bool {
    !rel.starts_with("crates/bench/")
}

pub fn run(ws: &Workspace, eng: &Engine<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        if !in_scope(&sf.rel) {
            continue;
        }
        for &id in eng.fns_in_file(fi) {
            let node = &eng.fns[id];
            if node.in_test || !node.func.has_body {
                continue;
            }
            check_fn(eng, id, &sf.rel, &mut out);
        }
    }
    out
}

/// An acquisition site in a body: the index range of the call and its
/// source line. Shared with the reactor-discipline pass, which applies the
/// same liveness model to reactor waits.
pub(crate) struct Acquisition {
    /// Index of the `.` (method form) or the callee identifier (helper
    /// form).
    pub(crate) start: usize,
    /// Index of the call's closing `)`.
    pub(crate) close: usize,
    pub(crate) line: u32,
    pub(crate) what: String,
}

/// Guard-opening sites in `id`'s body: direct `.read()`/`.write()` on the
/// state, plus calls to guard-returning acquirers (`read_or_busy` /
/// `write_or_busy`) resolved through the call graph.
pub(crate) fn acquisition_sites(eng: &Engine<'_>, id: FnId) -> Vec<Acquisition> {
    let body = &eng.fns[id].func.body;
    let mut out = Vec::new();
    for mc in scan::method_calls(body) {
        if !crate::engine::is_state_acquire(body, mc.idx, mc.name) {
            continue;
        }
        let recv = scan::receiver_idents(body, mc.idx);
        let last = recv.last().map(String::as_str).unwrap_or("");
        out.push(Acquisition {
            start: mc.idx,
            close: scan::close_of(body, mc.idx + 2),
            line: mc.line,
            what: format!("{last}.{}()", mc.name),
        });
    }
    for c in eng.calls(id) {
        if c.method {
            continue;
        }
        let opens_guard = c
            .targets
            .iter()
            .any(|&t| eng.fns[t].returns_guard && eng.effects(t).acquires());
        if opens_guard {
            out.push(Acquisition {
                start: c.idx,
                close: c.close,
                line: c.line,
                what: format!("{}(...)", c.name),
            });
        }
    }
    out.sort_by_key(|a| a.start);
    out
}

fn check_fn(eng: &Engine<'_>, id: FnId, rel: &str, out: &mut Vec<Diagnostic>) {
    let body = &eng.fns[id].func.body;
    let fname = &eng.fns[id].func.name;
    let acqs = acquisition_sites(eng, id);
    if acqs.is_empty() {
        return;
    }
    let blocking = direct_blocking_sites(body);

    for acq in &acqs {
        let scope_end = guard_scope_end(body, acq);
        let scope_start = acq.close + 1;
        if scope_start >= scope_end {
            continue;
        }
        // Second acquisition while live.
        for other in &acqs {
            if other.start > scope_start && other.start < scope_end {
                out.push(Diagnostic::new(
                    NAME,
                    rel.to_string(),
                    other.line,
                    format!(
                        "`{}` in `{}` acquires a state guard while the guard from `{}` (line \
                         {}) is still live — non-reentrant RwLock, this self-deadlocks",
                        other.what, fname, acq.what, acq.line
                    ),
                ));
            }
        }
        // Blocking I/O while live (direct sites).
        for (idx, line, what) in &blocking {
            if *idx > scope_start && *idx < scope_end {
                out.push(Diagnostic::new(
                    NAME,
                    rel.to_string(),
                    *line,
                    format!(
                        "blocking call `{what}` in `{}` while the state guard from `{}` (line \
                         {}) is live — every other session stalls behind it",
                        fname, acq.what, acq.line
                    ),
                ));
            }
        }
        // Transitive walk: any resolved call inside the live scope whose
        // callee summary acquires or blocks, at any depth, in any file.
        for c in eng.calls(id) {
            if c.idx <= scope_start || c.idx >= scope_end {
                continue;
            }
            for &t in &c.targets {
                let eff = eng.effects(t);
                // Guard-returning acquirers are already counted as
                // acquisitions above.
                if eng.fns[t].returns_guard && eff.acquires() {
                    continue;
                }
                let effect = if eff.has(Effect::AcquiresWrite) {
                    Some(Effect::AcquiresWrite)
                } else if eff.has(Effect::AcquiresRead) {
                    Some(Effect::AcquiresRead)
                } else if eff.has(Effect::Blocks) {
                    Some(Effect::Blocks)
                } else if eff.has(Effect::BlocksNet) {
                    Some(Effect::BlocksNet)
                } else {
                    None
                };
                let Some(effect) = effect else { continue };
                let (chain, prim) = eng.chain_through(id, c.line, t, effect);
                out.push(
                    Diagnostic::new(
                        NAME,
                        rel.to_string(),
                        c.line,
                        format!(
                            "`{}` calls `{}` — which transitively {} (`{}`) — while the state \
                             guard from `{}` (line {}) is live",
                            fname,
                            c.name,
                            effect.describe(),
                            prim,
                            acq.what,
                            acq.line
                        ),
                    )
                    .with_chain(chain),
                );
                break; // one diagnostic per call site
            }
        }
    }
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.file == b.file);
}

/// Direct blocking sites in a body (the engine's primitive classes,
/// re-derived here so the diagnostic can point at the exact token).
fn direct_blocking_sites(body: &[Token]) -> Vec<(usize, u32, String)> {
    crate::engine::blocking_prim_sites(body)
}

/// Where the guard from `acq` stops being live.
pub(crate) fn guard_scope_end(body: &[Token], acq: &Acquisition) -> usize {
    // Temporary: the acquisition is immediately chained (`state.read().x`),
    // so the guard drops at the end of the statement.
    if body.get(acq.close + 1).is_some_and(|t| t.is_punct('.')) {
        return scan::statement_end(body, acq.close);
    }
    // Bound (or used as a scrutinee): live to the end of the innermost
    // enclosing block, or to an explicit `drop(name)`.
    let end = scan::block_end(body, acq.start);
    if let Some(name) = scan::let_binding_before(body, acq.start) {
        for i in acq.close + 1..end.min(body.len().saturating_sub(2)) {
            if body[i].is_ident("drop") && body[i + 1].is_punct('(') && body[i + 2].is_ident(&name)
            {
                return i;
            }
        }
    }
    end
}
